"""System assembly: one call builds a complete simulated multidatabase.

A :class:`System` owns the environment, RNG, network, failure injector,
sites, participants, and the marking protocol, and provides:

* :meth:`System.submit` / :meth:`System.run_transaction` — run global
  transactions through a coordinator;
* :meth:`System.run_local` — run an independent local transaction at one
  site (subject only to local strict 2PL: autonomy);
* :meth:`System.global_history` / :meth:`System.global_sg` — collect the
  recorded histories into the theory layer's structures;
* :meth:`System.check_correctness` — the paper's criterion on the run;
* :meth:`System.metrics` / :meth:`System.events` / :meth:`System.spans` /
  :meth:`System.timeline` / :meth:`System.lock_gantt` /
  :meth:`System.marking_audit` — the observability surface (see
  :mod:`repro.obs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.coordinator import Coordinator
from repro.commit.participant import Participant
from repro.core.marks import MarkingDirectory
from repro.core.protocols import (
    MarkingProtocol,
    NoProtocol,
    P1Protocol,
    P2Protocol,
    SagaMode,
    SimpleProtocol,
)
from repro.errors import DeadlockDetected, LockTimeout
from repro.ids import site_id as make_site_id
from repro.net.failures import FailureInjector
from repro.net.network import LatencyModel, Network
from repro.obs.events import Event
from repro.obs.hub import Observability
from repro.obs.metrics import MetricsReport, report_from_logs
from repro.obs.render import (
    render_lock_gantt,
    render_marking_audit,
    render_timeline,
)
from repro.obs.spans import Span
from repro.protocols import acceptor_ids, engine_for
from repro.protocols.acceptor import Acceptor
from repro.sg.cycles import assert_correct
from repro.sg.graph import GlobalSG
from repro.sg.history import GlobalHistory
from repro.sim.engine import Environment
from repro.sim.process import Process
from repro.sim.rng import Rng
from repro.txn.operations import Op
from repro.txn.site import Site
from repro.txn.transaction import GlobalTxnSpec, TxnOutcome


#: marking-protocol factory names accepted by SystemConfig.protocol
PROTOCOLS = {
    "none": NoProtocol,
    "saga": SagaMode,
    "P1": P1Protocol,
    "P2": P2Protocol,
    "SIMPLE": SimpleProtocol,
}

#: transport backends accepted by SystemConfig.backend: the discrete-event
#: simulation, or real per-site daemons over TCP (see :mod:`repro.rt`)
BACKENDS = ("sim", "net")


@dataclass
class SystemConfig:
    """Configuration of one simulated multidatabase."""

    n_sites: int = 3
    scheme: CommitScheme = CommitScheme.O2PC
    #: marking protocol: "none", "saga", "P1", "P2", or "SIMPLE" — or a
    #: ready-built :class:`~repro.core.protocols.MarkingProtocol` instance
    #: (its directory is adopted by the system)
    protocol: str | MarkingProtocol = "none"
    seed: int = 0
    latency: LatencyModel = field(default_factory=lambda: LatencyModel(base=1.0))
    message_loss: float = 0.0
    commit: CommitConfig = field(default_factory=CommitConfig)
    #: initial value stored under every preloaded key
    initial_value: int = 100
    #: keys preloaded per site (``k0`` .. ``k{n-1}`` at each site)
    keys_per_site: int = 20
    #: per-operation processing time at every site
    op_duration: float = 0.0
    #: per-request lock-wait timeout at every site (None = wait forever;
    #: local deadlocks are still resolved by detection, and cross-site ones
    #: by the coordinator's spawn timeout)
    lock_timeout: float | None = None
    #: store marking sets as lockable data items (Section 6.2's deadlock-
    #: prone option) instead of the latch-and-revalidate compromise
    lock_marks: bool = False
    #: ablation: quiescence-based mark clearing (UDUM1 stays active either way)
    quiescence_clearing: bool = True
    #: ablation: P1's eager full-rule evaluation at spawn
    p1_eager_rule: bool = True
    #: record typed events on the system's bus (spans, streaming metrics,
    #: JSONL export); off by default — a disabled bus costs one branch per
    #: would-be event
    observability: bool = False
    #: window size (simulation time) of the streaming metrics' time series
    metrics_window: float = 10.0
    #: transport backend: "sim" (discrete-event, in-process) or "net"
    #: (real per-site daemons over TCP — built by
    #: :func:`repro.rt.system.open_system` / :class:`repro.rt.NetSystem`)
    backend: str = "sim"
    #: cluster file for backend="net" (site addresses + data_dir); None
    #: gives an ephemeral localhost cluster with a temporary data_dir
    sites_file: str | None = None
    #: real seconds per simulation time unit for backend="net" daemons and
    #: client (ignored by the sim backend, which runs as fast as possible)
    time_scale: float = 0.01
    #: override of the coordinator's vote-collection timeout (simulation
    #: time units); None keeps :attr:`CommitConfig.vote_timeout`.  A
    #: top-level knob so experiment sweeps (``repro compare
    #: --vote-timeout``) do not have to rebuild the whole CommitConfig.
    vote_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.metrics_window <= 0:
            raise ValueError(
                f"metrics_window must be positive, got {self.metrics_window}"
            )
        if self.vote_timeout is not None:
            if self.vote_timeout <= 0:
                raise ValueError(
                    f"vote_timeout must be positive, got {self.vote_timeout}"
                )
            self.commit = replace(self.commit, vote_timeout=self.vote_timeout)
        if self.backend not in BACKENDS:
            valid = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {self.backend!r}: expected one of {valid}"
            )
        if isinstance(self.protocol, MarkingProtocol):
            return
        if self.protocol not in PROTOCOLS:
            valid = ", ".join(sorted(PROTOCOLS))
            raise ValueError(
                f"unknown marking protocol {self.protocol!r}: "
                f"expected one of {valid}, or a MarkingProtocol instance"
            )


class System:
    """A complete simulated multidatabase system."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        env: Environment | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        if self.config.backend != "sim":
            raise ValueError(
                f"System is the backend='sim' implementation; for "
                f"backend={self.config.backend!r} use repro.rt.NetSystem "
                f"or repro.rt.system.open_system(config)"
            )
        #: ``env`` lets a caller supply a pre-built environment — the model
        #: checker injects its controlled scheduler this way
        self.env = env or Environment()
        self.rng = Rng(self.config.seed)
        self.network = Network(
            self.env,
            rng=self.rng.fork("network"),
            latency=self.config.latency,
            loss_probability=self.config.message_loss,
        )
        self.failures = FailureInjector(self.env, self.network)
        if isinstance(self.config.protocol, MarkingProtocol):
            # A ready-built protocol: adopt it (and its directory) as-is.
            self.marking: MarkingProtocol = self.config.protocol
            self.directory = self.marking.directory
        else:
            self.directory = MarkingDirectory()
            self.marking = PROTOCOLS[self.config.protocol](
                directory=self.directory
            )
            if isinstance(self.marking, P1Protocol):
                self.marking.eager_rule = self.config.p1_eager_rule
        self.directory.quiescence_enabled = self.config.quiescence_clearing
        self.directory.bus = self.env.bus
        self.obs = Observability(
            self.env.bus, window=self.config.metrics_window
        )
        if self.config.observability:
            self.obs.enable()
        #: the commit-scheme engine (factories from the protocols registry)
        self.engine = engine_for(self.config.scheme)
        #: acceptor processes (Paxos Commit only; empty otherwise).  Sim
        #: acceptor state is durable by convention — crashing an acceptor
        #: endpoint drops its messages but keeps its promises, exactly like
        #: the coordinator's decision log.
        self.acceptors: dict[str, Acceptor] = {}
        self._acceptor_ids: tuple[str, ...] = ()
        if self.engine.uses_acceptors:
            self._acceptor_ids = acceptor_ids(
                self.config.commit.paxos_acceptors
            )
            for acc_id in self._acceptor_ids:
                self.acceptors[acc_id] = Acceptor(
                    self.env, self.network, acc_id
                )
                self.failures.register_site(acc_id)
        self.sites: dict[str, Site] = {}
        self.participants: dict[str, Participant] = {}
        for n in range(1, self.config.n_sites + 1):
            sid = make_site_id(n)
            site = Site(
                self.env, sid, op_duration=self.config.op_duration,
                lock_timeout=self.config.lock_timeout,
            )
            if not isinstance(self.marking, NoProtocol):
                from repro.core.marks import MARKS_KEY

                site.marks_key = MARKS_KEY
            site.load({
                f"k{i}": self.config.initial_value
                for i in range(self.config.keys_per_site)
            })
            self.sites[sid] = site
            self.participants[sid] = self.engine.participant(
                site=site, network=self.network, scheme=self.config.scheme,
                marking=self.marking, lock_marks=self.config.lock_marks,
                commit=self.config.commit, acceptors=self._acceptor_ids,
            )
            self.failures.register_site(sid)
        self.coordinators: dict[str, Coordinator] = {}
        self.outcomes: list[TxnOutcome] = []
        self._local_seq = 0
        # Wire participant crash/recovery to the failure injector: a
        # crashed site loses its volatile state immediately; on recovery it
        # restarts from its log (re-installing in-doubt and locally
        # committed transactions) in a background process.
        self.failures.on_crash(self._on_site_crash)
        self.failures.on_recover(self._on_site_recover)
        self.env.add_deadlock_diagnostic(self._waits_for_snapshot)

    def _waits_for_snapshot(self) -> str:
        """Render every site's lock wait-for graph (deadlock diagnostics)."""
        lines = []
        for sid in sorted(self.sites):
            edges = self.sites[sid].locks.waits_for.edges()
            if edges:
                lines.append(
                    f"  {sid}: "
                    + ", ".join(f"{a} -> {b}" for a, b in edges)
                )
        if not lines:
            return ""
        return "lock wait-for graph at deadlock:\n" + "\n".join(lines)

    def _on_site_crash(self, endpoint_id: str) -> None:
        participant = self.participants.get(endpoint_id)
        if participant is not None:
            participant.crash()

    def _on_site_recover(self, endpoint_id: str) -> None:
        participant = self.participants.get(endpoint_id)
        if participant is not None:
            self.env.process(
                participant.recover(), name=f"recover:{endpoint_id}"
            )

    # -- running global transactions ----------------------------------------------

    def submit(self, spec: GlobalTxnSpec) -> Process:
        """Start a coordinator for ``spec``; returns its process.

        The process's value is the :class:`TxnOutcome`; it is also appended
        to :attr:`outcomes` on completion.
        """
        coordinator = self.engine.coordinator(
            env=self.env,
            network=self.network,
            spec=spec,
            scheme=self.config.scheme,
            marking=self.marking,
            config=self.config.commit,
            failures=self.failures,
            acceptors=self._acceptor_ids,
        )
        self.coordinators[spec.txn_id] = coordinator

        def runner():
            outcome = yield from coordinator.run()
            self.outcomes.append(outcome)
            return outcome

        return self.env.process(runner(), name=f"coord:{spec.txn_id}")

    def run_transaction(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Submit ``spec`` and run the simulation until it terminates."""
        return self.env.run(self.submit(spec))

    def submit_stream(
        self,
        specs: list[GlobalTxnSpec],
        arrival_mean: float = 3.0,
        seed: int = 0,
    ) -> Process:
        """Submit ``specs`` with exponential inter-arrival spacing.

        Staggered arrivals keep the system in a realistic operating regime
        (submitting a whole batch at t=0 manufactures contention storms).
        Returns a process that finishes when every transaction has
        terminated.
        """
        rng = self.rng.fork(f"arrivals-{seed}")

        def driver():
            waiters = []
            for spec in specs:
                yield self.env.timeout(rng.exponential(arrival_mean))
                waiters.append(self.submit(spec))
            if waiters:
                yield self.env.all_of(waiters)

        return self.env.process(driver(), name="submit_stream")

    # -- running local transactions --------------------------------------------------

    def run_local(
        self, site_id: str, txn_id: str, ops: list[Op],
        max_retries: int = 20, retry_delay: float = 1.0,
    ) -> Process:
        """Run an independent local transaction at one site.

        Local transactions bypass the commit protocols and marking checks
        entirely (site autonomy); deadlock victims and lock-wait timeouts
        are retried.  After committing, the transaction is recorded as a
        UDUM1 witness.
        """
        site = self.sites[site_id]

        def runner():
            for _attempt in range(max_retries):
                site.ltm.begin(txn_id)
                try:
                    yield from site.ltm.run_ops(txn_id, ops)
                    site.ltm.commit(txn_id)
                    self.marking.on_executed(txn_id, site_id)
                    return True
                except (DeadlockDetected, LockTimeout):
                    site.ltm.abort_local(txn_id)
                    site.ltm.status.pop(txn_id, None)
                    yield self.env.timeout(retry_delay)
            return False

        return self.env.process(runner(), name=f"local:{txn_id}")

    def next_local_id(self) -> str:
        """Fresh local-transaction id (``L1``, ``L2``, ...)."""
        self._local_seq += 1
        return f"L{self._local_seq}"

    # -- theory-layer views -------------------------------------------------------------

    def global_history(self) -> GlobalHistory:
        """The run's global history (live view of the sites' histories)."""
        return GlobalHistory(
            sites={sid: site.history for sid, site in self.sites.items()}
        )

    def global_sg(self) -> GlobalSG:
        """The run's global serialization graph."""
        return GlobalSG.from_history(self.global_history())

    def effective_regular_nodes(self) -> set[str]:
        """Global transactions that count as regular for the *effective*
        criterion: everything except globally-aborted ones.

        An aborted transaction's exposed updates were all revoked by its
        compensation; together with its ``CT_i`` it belongs to the
        compensation population, so cycles confined to such pairs are
        treated like the CT-only cycles the criterion allows.
        """
        aborted = {o.txn_id for o in self.outcomes if not o.committed}
        from repro.sg.graph import TxnKind

        return self.global_sg().nodes_of_kind(TxnKind.GLOBAL) - aborted

    def check_correctness(self, strict: bool = False) -> None:
        """Assert the paper's correctness criterion on the run so far.

        ``strict=False`` (default) checks the *effective* criterion — no
        regular cycle through a committed transaction — which is the
        guarantee the practical protocol implementation provides.
        ``strict=True`` checks the paper's literal criterion (any regular
        transaction, aborted ones included); the compromise implementation
        of P1 can violate it in multi-abort corner cases (see the
        CLAIM-CORRECT experiment).  Raises
        :class:`~repro.errors.CorrectnessViolation` with the offending
        cycle on failure.
        """
        regular = None if strict else self.effective_regular_nodes()
        assert_correct(self.global_sg(), regular)

    # -- observability surface ----------------------------------------------------------

    def enable_observability(self) -> None:
        """Start recording typed events (idempotent; see :mod:`repro.obs`)."""
        self.obs.enable()

    def events(self) -> list[Event]:
        """Every recorded event, in publish order (empty when disabled)."""
        return self.obs.events()

    def spans(self) -> dict[str, Span]:
        """Per-transaction span trees folded from the recorded events."""
        return self.obs.spans()

    def metrics(self, elapsed: float | None = None) -> MetricsReport:
        """Aggregated metrics of the run so far.

        With observability enabled the report comes from the streaming
        aggregator (O(1) per event, histogram percentiles); otherwise from
        the exact post-hoc scan of the raw logs.  ``elapsed`` overrides the
        wall-clock denominator used for throughput (defaults to the current
        simulation time).
        """
        if not self.obs.enabled:
            return report_from_logs(self, elapsed)
        report = self.obs.report(
            elapsed if elapsed is not None else self.env.now
        )
        # Forced log writes are a storage-layer counter, not a bus event.
        for site in self.sites.values():
            report.forced_log_writes += site.wal.forced_writes
        return report

    def timeline(self, width: int = 50) -> str:
        """Text timeline: one line per terminated global transaction."""
        return render_timeline(self, width)

    def lock_gantt(
        self, site_id: str, width: int = 50, keys: list[str] | None = None
    ) -> str:
        """Text Gantt chart of lock-hold intervals at one site."""
        return render_lock_gantt(self, site_id, width, keys)

    def marking_audit(self) -> str:
        """Chronology of marking transitions and clearings."""
        return render_marking_audit(self)
