"""Parameter sweeps and result tables for the benchmark suite.

A :class:`Sweep` runs a builder function across parameter values and
collects one :class:`ExperimentResult` row per point; :func:`format_table`
renders rows the way EXPERIMENTS.md and the benchmark output present them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentResult:
    """One row of an experiment: a parameter point and its measurements."""

    params: dict[str, Any] = field(default_factory=dict)
    measures: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flat dict view (params first, then measures)."""
        return {**self.params, **self.measures}


@dataclass
class Sweep:
    """Run ``fn(value)`` for every value of one swept parameter."""

    name: str
    values: list[Any]
    fn: Callable[[Any], dict[str, float]]

    def run(self) -> list[ExperimentResult]:
        """Execute the sweep; returns one result per parameter value."""
        results = []
        for value in self.values:
            measures = self.fn(value)
            results.append(
                ExperimentResult(params={self.name: value}, measures=measures)
            )
        return results


def format_table(
    rows: list[ExperimentResult], title: str = "", precision: int = 3
) -> str:
    """Render results as an aligned text table (printed by benchmarks)."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0].as_row().keys())
    table: list[list[str]] = [headers]
    for row in rows:
        flat = row.as_row()
        table.append([_fmt(flat.get(h), precision) for h in headers])
    widths = [
        max(len(line[col]) for line in table) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in table[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def save_results(rows: list[ExperimentResult], path: str) -> None:
    """Persist experiment rows as JSON (one object per row)."""
    import json

    payload = [
        {"params": row.params, "measures": row.measures} for row in rows
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_results(path: str) -> list[ExperimentResult]:
    """Load rows written by :func:`save_results`."""
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return [
        ExperimentResult(params=entry["params"], measures=entry["measures"])
        for entry in payload
    ]


def to_markdown(
    rows: list[ExperimentResult], title: str = "", precision: int = 3
) -> str:
    """Render results as a GitHub-flavored markdown table."""
    if not rows:
        return f"**{title}**\n\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].as_row().keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        flat = row.as_row()
        lines.append(
            "| " + " | ".join(_fmt(flat.get(h), precision) for h in headers)
            + " |"
        )
    return "\n".join(lines)
