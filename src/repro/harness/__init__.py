"""Experiment harness: system assembly, metrics, experiment running.

:class:`~repro.harness.system.System` wires a full multidatabase out of the
substrates (simulation kernel, network, sites, participants, marking
protocol) and exposes one-call transaction submission plus the
observability surface (:meth:`System.metrics`, :meth:`System.timeline`,
:meth:`System.events`; see :mod:`repro.obs`).
:mod:`repro.harness.experiment` provides parameter sweeps and table
formatting for the benchmark suite and EXPERIMENTS.md.

``SystemConfig(backend="net")`` selects the networked runtime
(:mod:`repro.rt`) instead of the simulation; build it with
:func:`repro.rt.system.open_system` (the :class:`System` class itself is
the ``backend="sim"`` implementation).
"""

from repro.harness.bench import compare_to_baseline, run_suite
from repro.harness.experiment import ExperimentResult, Sweep, format_table
from repro.harness.system import BACKENDS, PROTOCOLS, System, SystemConfig
from repro.obs.metrics import MetricsReport

__all__ = [
    "BACKENDS",
    "ExperimentResult",
    "MetricsReport",
    "PROTOCOLS",
    "Sweep",
    "System",
    "SystemConfig",
    "compare_to_baseline",
    "format_table",
    "run_suite",
]
