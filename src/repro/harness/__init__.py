"""Experiment harness: system assembly, metrics, experiment running.

:class:`~repro.harness.system.System` wires a full multidatabase out of the
substrates (simulation kernel, network, sites, participants, marking
protocol) and exposes one-call transaction submission plus the
observability surface (:meth:`System.metrics`, :meth:`System.timeline`,
:meth:`System.events`; see :mod:`repro.obs`).
:mod:`repro.harness.experiment` provides parameter sweeps and table
formatting for the benchmark suite and EXPERIMENTS.md.  The old
free-function entry points (``collect_metrics``, ``transaction_timeline``,
``lock_gantt``, ``marking_audit``) remain as deprecation shims.
"""

from repro.harness.bench import compare_to_baseline, run_suite
from repro.harness.experiment import ExperimentResult, Sweep, format_table
from repro.harness.metrics import MetricsReport, collect_metrics
from repro.harness.system import System, SystemConfig
from repro.harness.trace import lock_gantt, marking_audit, transaction_timeline

__all__ = [
    "ExperimentResult",
    "MetricsReport",
    "Sweep",
    "System",
    "SystemConfig",
    "collect_metrics",
    "compare_to_baseline",
    "format_table",
    "run_suite",
    "lock_gantt",
    "marking_audit",
    "transaction_timeline",
]
