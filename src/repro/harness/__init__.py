"""Experiment harness: system assembly, metrics, experiment running.

:class:`~repro.harness.system.System` wires a full multidatabase out of the
substrates (simulation kernel, network, sites, participants, marking
protocol) and exposes one-call transaction submission.
:mod:`repro.harness.metrics` aggregates the raw logs (lock holds, waits,
message counters, outcomes) into the quantities the paper's claims are
about.  :mod:`repro.harness.experiment` provides parameter sweeps and table
formatting for the benchmark suite and EXPERIMENTS.md.
"""

from repro.harness.experiment import ExperimentResult, Sweep, format_table
from repro.harness.metrics import MetricsReport, collect_metrics
from repro.harness.system import System, SystemConfig
from repro.harness.trace import lock_gantt, marking_audit, transaction_timeline

__all__ = [
    "ExperimentResult",
    "MetricsReport",
    "Sweep",
    "System",
    "SystemConfig",
    "collect_metrics",
    "format_table",
    "lock_gantt",
    "marking_audit",
    "transaction_timeline",
]
