"""Pinned performance workloads behind ``repro bench``.

Three workloads, chosen to cover the repo's hot paths end to end:

* ``check`` — the model checker's smoke-style DFS (conflict scenario, P1,
  crash injection).  Metric: schedules explored per wall-clock second.
* ``throughput`` — a 2-site conflict-heavy O2PC workload through the full
  simulator (locks, network, commit protocol, compensation).  Metric:
  committed+aborted transactions per wall-clock second.
* ``sg`` — serialization-graph builds over seeded random histories at
  10³–10⁵ operations: the incremental :class:`~repro.sg.index.ConflictIndex`
  view versus the O(n²) pairwise scan it replaced (the scan is capped at
  10⁴ ops — beyond that it is minutes of wall time, which is the point).

A fourth workload lives behind ``repro bench --scale``: ``scale`` runs
64 sharded sites, 10⁵ transactions, concurrent coordinators, and
Zipf-skewed hotspots, reporting throughput, the abort/compensation
census, and lock-hold p50/p99 (``run_scale`` → ``BENCH_scale.json``).

``run_suite`` returns JSON-ready payloads for ``BENCH_check.json`` and
``BENCH_sg.json``.  Regression gating compares only throughput-style
metrics (``*_per_s``, ``speedup_vs_scan``) against a committed baseline:
wall-time percentiles are recorded for trend-reading but are too host-
dependent to gate on.  The CI job fails when any gated metric drops more
than the tolerance (default 25%) below the baseline.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.sg.graph import GlobalSG
from repro.sg.history import GlobalHistory
from repro.sim.rng import Rng

#: metrics compared against the baseline (higher is better); everything
#: else in the payloads is informational
GATED_METRICS = ("schedules_per_s", "txns_per_s", "speedup_vs_scan")

SCHEMA_VERSION = 1


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (small-sample friendly)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


# -- workload: model checker ---------------------------------------------------


def bench_check(
    seed: int = 0,
    max_schedules: int = 300,
    jobs: int = 1,
    repeats: int = 3,
) -> dict[str, float]:
    """Schedules/s of the smoke-style DFS (conflict, P1, crash budget 2)."""
    from repro.check.explorer import CheckConfig, ModelChecker

    walls: list[float] = []
    explored = 0
    for _ in range(repeats):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", seed=seed,
            depth=14, crashes=2, max_schedules=max_schedules, jobs=jobs,
        )).run()
        explored = report.explored
        walls.append(report.elapsed)
    best = min(walls)
    return {
        "schedules": float(explored),
        "jobs": float(jobs),
        "schedules_per_s": explored / best if best else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: simulator throughput --------------------------------------------


def bench_throughput(
    seed: int = 0, transactions: int = 150, repeats: int = 3
) -> dict[str, float]:
    """Wall-clock txns/s of a 2-site conflict-heavy O2PC workload."""
    from repro.commit.base import CommitScheme
    from repro.harness.system import System, SystemConfig
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    walls: list[float] = []
    for _ in range(repeats):
        system = System(SystemConfig(
            n_sites=2, scheme=CommitScheme.O2PC, protocol="P1",
            keys_per_site=8, seed=seed,
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=transactions, abort_probability=0.1,
            read_fraction=0.4, arrival_mean=1.0, zipf_theta=0.8,
        ), seed=seed)
        wall, _ = _timed(gen.run)
        walls.append(wall)
    best = min(walls)
    return {
        "transactions": float(transactions),
        "txns_per_s": transactions / best if best else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: 64-site sharded scale -------------------------------------------


def bench_scale(
    seed: int = 0,
    sites: int = 64,
    transactions: int = 100_000,
    keys_per_site: int = 32,
    repeats: int = 1,
) -> dict[str, float]:
    """Wall-clock txns/s of a many-site, Zipf-skewed O2PC workload.

    The scale shape: ``sites`` sites, one coordinator per transaction with
    many in flight concurrently (mean inter-arrival 0.2 vs. a multi-unit
    commit latency), and Zipf-skewed key popularity so hot keys contend
    across shards.  The marking protocol is pinned to ``none``: at this
    concurrency P1's validation rejects most transactions, which would
    benchmark the marking protocol rather than the commit hot path (the
    ``check`` workload covers P1).

    Beyond throughput the payload records the lock-hold tail (p50/p99 of
    every grant→release interval) and the abort/compensation rates — the
    paper's cost side of early lock release at scale.
    """
    from repro.commit.base import CommitScheme
    from repro.harness.system import System, SystemConfig
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    walls: list[float] = []
    last_system: Any = None
    for _ in range(repeats):
        system = System(SystemConfig(
            n_sites=sites, scheme=CommitScheme.O2PC, protocol="none",
            keys_per_site=keys_per_site, seed=seed,
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=transactions, min_sites=2, max_sites=3,
            abort_probability=0.05, read_fraction=0.5,
            arrival_mean=0.2, zipf_theta=0.9,
        ), seed=seed)
        wall, _ = _timed(gen.run)
        walls.append(wall)
        last_system = system
    best = min(walls)
    report = last_system.metrics()
    holds = sorted(
        h.duration
        for site in last_system.sites.values()
        for h in site.locks.hold_log
    )
    terminated = report.committed + report.aborted
    return {
        "sites": float(sites),
        "transactions": float(transactions),
        "txns_per_s": transactions / best if best else 0.0,
        "committed": float(report.committed),
        "abort_rate": report.abort_rate,
        "compensations": float(report.compensations),
        "compensation_rate": (
            report.compensations / terminated if terminated else 0.0
        ),
        "lock_hold_p50": _percentile(holds, 50) if holds else 0.0,
        "lock_hold_p99": _percentile(holds, 99) if holds else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: serialization-graph builds --------------------------------------


def _random_history(
    n_ops: int, seed: int = 0, write_fraction: float = 0.3
) -> GlobalHistory:
    """A seeded single-site history with bounded per-key conflict density.

    Keys and transactions scale with ``n_ops`` so the expected number of
    transactions touching one key stays roughly constant — the regime the
    checker's histories live in, and one where the incremental index does
    real per-operation work.
    """
    rng = Rng(seed).fork(f"bench-sg-{n_ops}")
    n_keys = max(8, n_ops // 50)
    n_txns = max(4, n_ops // 10)
    history = GlobalHistory()
    site = history.site("S1")
    for _ in range(n_ops):
        txn = f"T{rng.randint(0, n_txns - 1)}"
        key = f"k{rng.randint(0, n_keys - 1)}"
        if txn in site.committed or txn in site.aborted:
            continue
        if rng.chance(write_fraction):
            site.write(txn, key)
        else:
            site.read(txn, key)
    for txn_id in sorted(site.transactions()):
        site.commit(txn_id)
    return history


def bench_sg(
    sizes: tuple[int, ...] = (1_000, 10_000, 100_000),
    scan_cap: int = 10_000,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Incremental SG build vs the pairwise scan, per history size."""
    results: dict[str, dict[str, float]] = {}
    for size in sizes:
        record_wall, history = _timed(lambda s=size: _random_history(s, seed))
        index_wall, fast = _timed(
            lambda h=history: GlobalSG.from_history(h)
        )
        metrics = {
            "ops": float(size),
            "edges": float(len(fast.union_edges())),
            "record_s": record_wall,
            "index_build_s": index_wall,
        }
        if size <= scan_cap:
            scan_wall, slow = _timed(
                lambda h=history: GlobalSG.from_history_scan(h)
            )
            if slow.union_edges() != fast.union_edges():
                raise AssertionError(
                    f"index/scan divergence at {size} ops — bench aborted"
                )
            metrics["scan_build_s"] = scan_wall
            metrics["speedup_vs_scan"] = (
                scan_wall / index_wall if index_wall else float("inf")
            )
        results[f"ops_{size}"] = metrics
    return results


# -- suite orchestration -------------------------------------------------------


def run_suite(
    smoke: bool = False, seed: int = 0, jobs: int = 1
) -> dict[str, dict[str, Any]]:
    """Run every workload; returns ``{file name: JSON payload}``.

    ``smoke`` shrinks the pinned sizes for CI wall-time; the file names and
    metric names are identical, so baselines stay comparable as long as
    they were recorded at the same size (the payload carries the knobs).
    """
    if smoke:
        check = bench_check(seed=seed, max_schedules=300, jobs=jobs,
                            repeats=3)
        thru = bench_throughput(seed=seed, transactions=100, repeats=3)
        sg = bench_sg(sizes=(1_000, 10_000), scan_cap=10_000, seed=seed)
    else:
        check = bench_check(seed=seed, max_schedules=800, jobs=jobs,
                            repeats=3)
        thru = bench_throughput(seed=seed, transactions=250, repeats=3)
        sg = bench_sg(sizes=(1_000, 10_000, 100_000), scan_cap=10_000,
                      seed=seed)
    header = {"schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed}
    return {
        "BENCH_check.json": {
            **header,
            "results": {"check": check, "throughput": thru},
        },
        "BENCH_sg.json": {**header, "results": sg},
    }


def run_scale(smoke: bool = False, seed: int = 0) -> dict[str, dict[str, Any]]:
    """The scale workload alone (``repro bench --scale``).

    ``smoke`` keeps the 64-site shape but shrinks the transaction count to
    CI wall-time; the committed full-size artifact lives in
    ``benchmarks/BENCH_scale.json``.
    """
    if smoke:
        scale = bench_scale(seed=seed, transactions=1_500, repeats=2)
    else:
        scale = bench_scale(seed=seed, transactions=100_000, repeats=1)
    header = {"schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed}
    return {"BENCH_scale.json": {**header, "results": {"scale": scale}}}


def to_json(payload: dict[str, Any]) -> str:
    """Stable JSON encoding for artifacts and baselines."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def compare_to_baseline(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Regression lines for gated metrics; empty means within tolerance.

    Only metrics present in *both* payloads are compared, so adding a
    workload never fails the gate until its baseline is recorded.
    """
    regressions: list[str] = []
    base_results = baseline.get("results", {})
    for name, metrics in current.get("results", {}).items():
        base_metrics = base_results.get(name, {})
        for metric in GATED_METRICS:
            if metric not in metrics or metric not in base_metrics:
                continue
            now, then = metrics[metric], base_metrics[metric]
            floor = then * (1.0 - tolerance)
            if now < floor:
                regressions.append(
                    f"{name}.{metric}: {now:.1f} < {floor:.1f} "
                    f"(baseline {then:.1f}, tolerance {tolerance:.0%})"
                )
    return regressions
