"""Pinned performance workloads behind ``repro bench``.

Three workloads, chosen to cover the repo's hot paths end to end:

* ``check`` — the model checker's smoke-style DFS (conflict scenario, P1,
  crash injection).  Metric: schedules explored per wall-clock second.
* ``throughput`` — a 2-site conflict-heavy O2PC workload through the full
  simulator (locks, network, commit protocol, compensation).  Metric:
  committed+aborted transactions per wall-clock second.
* ``sg`` — serialization-graph builds over seeded random histories at
  10³–10⁵ operations: the incremental :class:`~repro.sg.index.ConflictIndex`
  view versus the O(n²) pairwise scan it replaced (the scan is capped at
  10⁴ ops — beyond that it is minutes of wall time, which is the point).

A fourth workload lives behind ``repro bench --scale``: ``scale`` runs
64 sharded sites, 10⁵ transactions, concurrent coordinators, and
Zipf-skewed hotspots, reporting throughput, the abort/compensation
census, and lock-hold p50/p99 (``run_scale`` → ``BENCH_scale.json``).

A fifth lives behind ``repro bench --net``: ``net`` boots a localhost
cluster of real ``repro serve`` daemons and measures serial vs 16-way
pipelined coordinator throughput over actual sockets — commit-latency
percentiles, messages per transaction, and fsyncs per committed
transaction (``run_net`` → ``BENCH_net.json``).

``run_suite`` returns JSON-ready payloads for ``BENCH_check.json`` and
``BENCH_sg.json``.  Regression gating compares only throughput-style
metrics (``*_per_s``, ``speedup_vs_scan``) against a committed baseline:
wall-time percentiles are recorded for trend-reading but are too host-
dependent to gate on.  The CI job fails when any gated metric drops more
than the tolerance (default 25%) below the baseline.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from repro.sg.graph import GlobalSG
from repro.sg.history import GlobalHistory
from repro.sim.rng import Rng

#: metrics compared against the baseline (higher is better); everything
#: else in the payloads is informational
GATED_METRICS = (
    "schedules_per_s", "txns_per_s", "speedup_vs_scan", "speedup_vs_serial",
)

SCHEMA_VERSION = 1


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (small-sample friendly)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


# -- workload: model checker ---------------------------------------------------


def bench_check(
    seed: int = 0,
    max_schedules: int = 300,
    jobs: int = 1,
    repeats: int = 3,
) -> dict[str, float]:
    """Schedules/s of the smoke-style DFS (conflict, P1, crash budget 2)."""
    from repro.check.explorer import CheckConfig, ModelChecker

    walls: list[float] = []
    explored = 0
    for _ in range(repeats):
        report = ModelChecker(CheckConfig(
            scenario="conflict", protocol="P1", seed=seed,
            depth=14, crashes=2, max_schedules=max_schedules, jobs=jobs,
        )).run()
        explored = report.explored
        walls.append(report.elapsed)
    best = min(walls)
    return {
        "schedules": float(explored),
        "jobs": float(jobs),
        "schedules_per_s": explored / best if best else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: simulator throughput --------------------------------------------


def bench_throughput(
    seed: int = 0, transactions: int = 150, repeats: int = 3
) -> dict[str, float]:
    """Wall-clock txns/s of a 2-site conflict-heavy O2PC workload."""
    from repro.commit.base import CommitScheme
    from repro.harness.system import System, SystemConfig
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    walls: list[float] = []
    for _ in range(repeats):
        system = System(SystemConfig(
            n_sites=2, scheme=CommitScheme.O2PC, protocol="P1",
            keys_per_site=8, seed=seed,
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=transactions, abort_probability=0.1,
            read_fraction=0.4, arrival_mean=1.0, zipf_theta=0.8,
        ), seed=seed)
        wall, _ = _timed(gen.run)
        walls.append(wall)
    best = min(walls)
    return {
        "transactions": float(transactions),
        "txns_per_s": transactions / best if best else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: 64-site sharded scale -------------------------------------------


def bench_scale(
    seed: int = 0,
    sites: int = 64,
    transactions: int = 100_000,
    keys_per_site: int = 32,
    repeats: int = 1,
) -> dict[str, float]:
    """Wall-clock txns/s of a many-site, Zipf-skewed O2PC workload.

    The scale shape: ``sites`` sites, one coordinator per transaction with
    many in flight concurrently (mean inter-arrival 0.2 vs. a multi-unit
    commit latency), and Zipf-skewed key popularity so hot keys contend
    across shards.  The marking protocol is pinned to ``none``: at this
    concurrency P1's validation rejects most transactions, which would
    benchmark the marking protocol rather than the commit hot path (the
    ``check`` workload covers P1).

    Beyond throughput the payload records the lock-hold tail (p50/p99 of
    every grant→release interval) and the abort/compensation rates — the
    paper's cost side of early lock release at scale.
    """
    from repro.commit.base import CommitScheme
    from repro.harness.system import System, SystemConfig
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    walls: list[float] = []
    last_system: Any = None
    for _ in range(repeats):
        system = System(SystemConfig(
            n_sites=sites, scheme=CommitScheme.O2PC, protocol="none",
            keys_per_site=keys_per_site, seed=seed,
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=transactions, min_sites=2, max_sites=3,
            abort_probability=0.05, read_fraction=0.5,
            arrival_mean=0.2, zipf_theta=0.9,
        ), seed=seed)
        wall, _ = _timed(gen.run)
        walls.append(wall)
        last_system = system
    best = min(walls)
    report = last_system.metrics()
    holds = sorted(
        h.duration
        for site in last_system.sites.values()
        for h in site.locks.hold_log
    )
    terminated = report.committed + report.aborted
    return {
        "sites": float(sites),
        "transactions": float(transactions),
        "txns_per_s": transactions / best if best else 0.0,
        "committed": float(report.committed),
        "abort_rate": report.abort_rate,
        "compensations": float(report.compensations),
        "compensation_rate": (
            report.compensations / terminated if terminated else 0.0
        ),
        "lock_hold_p50": _percentile(holds, 50) if holds else 0.0,
        "lock_hold_p99": _percentile(holds, 99) if holds else 0.0,
        "p50_wall_s": _percentile(walls, 50),
        "p95_wall_s": _percentile(walls, 95),
    }


# -- workload: networked runtime -----------------------------------------------


def _net_transfer_specs(
    site_ids: list[str],
    n: int,
    keys_per_site: int,
    seed: int,
    prefix: str,
    theta: float = 0.8,
) -> list[Any]:
    """Zipf-contended cross-site transfers for the net bench.

    The source account is uniform (so no key drains pathologically) but
    the destination site *and* key are Zipf-skewed: concurrent sessions
    pile onto the same hot keys, which is exactly the load where O2PC's
    early lock release and the daemon's group commit have to earn their
    keep.  ``withdraw``/``deposit`` are pure additive ops, so every
    transfer conserves the cluster-wide balance regardless of ordering.
    """
    from repro.txn.operations import SemanticOp
    from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec

    rng = Rng(seed).fork(f"bench-net-{prefix}")
    specs: list[Any] = []
    for i in range(n):
        src = rng.randint(0, len(site_ids) - 1)
        dst = rng.zipf_index(len(site_ids), theta)
        if dst == src:
            dst = (dst + 1) % len(site_ids)
        src_key = f"k{rng.randint(0, keys_per_site - 1)}"
        dst_key = f"k{rng.zipf_index(keys_per_site, theta)}"
        amount = rng.randint(1, 5)
        specs.append(GlobalTxnSpec(
            txn_id=f"{prefix}{i}",
            subtxns=[
                SubtxnSpec(site_ids[src], [
                    SemanticOp("withdraw", src_key, {"amount": amount}),
                ]),
                SubtxnSpec(site_ids[dst], [
                    SemanticOp("deposit", dst_key, {"amount": amount}),
                ]),
            ],
        ))
    return specs


def _net_leg(
    system: Any, specs: list[Any], sessions: int, time_scale: float,
) -> dict[str, float]:
    """Run one client leg against a live cluster; returns its metrics.

    A fresh :class:`~repro.rt.client.NetClient` per leg keeps the
    message/latency counters and connection state isolated; daemon-side
    fsync and force counters are measured as before/after status deltas so
    the legs share one cluster without polluting each other.
    """
    from repro.rt.client import NetClient

    site_ids = system.cluster.site_ids
    before = {s: system.site_status(s) for s in site_ids}
    client = NetClient(
        system.cluster, scheme=system.config.scheme, time_scale=time_scale,
    )
    wall, outcomes = _timed(
        lambda: client.run_transactions(specs, sessions=sessions)
    )
    after = {s: system.site_status(s) for s in site_ids}
    committed = sum(1 for o in outcomes if o.committed)
    fsyncs = {
        s: after[s]["fsyncs"] - before[s]["fsyncs"] for s in site_ids
    }
    forces = {
        s: after[s]["forced_writes"] - before[s]["forced_writes"]
        for s in site_ids
    }
    messages = client.transport.total_sent() + sum(
        client.transport.delivered.values()
    )
    n = len(specs)
    return {
        "transactions": float(n),
        "sessions": float(sessions),
        "committed": float(committed),
        "txns_per_s": n / wall if wall else 0.0,
        "p50_latency_s": _percentile(client.latencies, 50),
        "p99_latency_s": _percentile(client.latencies, 99),
        "messages_per_txn": messages / n if n else 0.0,
        "fsyncs_per_txn": (
            sum(fsyncs.values()) / committed if committed else 0.0
        ),
        "site_fsyncs_per_txn": (
            max(fsyncs.values()) / committed if committed else 0.0
        ),
        "forces_per_fsync": (
            sum(forces.values()) / sum(fsyncs.values())
            if sum(fsyncs.values()) else 0.0
        ),
    }


def bench_net(
    seed: int = 0,
    sites: int = 3,
    serial_transactions: int = 40,
    pipelined_transactions: int = 200,
    sessions: int = 16,
    keys_per_site: int = 20,
    time_scale: float = 0.004,
) -> dict[str, dict[str, float]]:
    """Serial vs pipelined throughput over real daemons and sockets.

    One localhost cluster serves both legs.  The serial leg is the
    PR-7-era shape — one coordinator at a time, each paying its round
    trips and the 0.5-unit decision-log delay in full.  The pipelined leg
    multiplexes ``sessions`` coordinators on one client loop, overlapping
    those stalls; frame coalescing and WAL group commit then collapse the
    resulting same-instant traffic into fewer syscalls and fsyncs.
    ``speedup_vs_serial`` (pipelined / serial txns-per-s) is the gated
    headline; ``site_fsyncs_per_txn`` is the group-commit proof (< 1
    fsync per committed transaction at the busiest daemon).
    """
    from repro.commit.base import CommitScheme
    from repro.harness.system import SystemConfig
    from repro.rt.system import NetSystem

    config = SystemConfig(
        n_sites=sites, scheme=CommitScheme.O2PC, protocol="none",
        keys_per_site=keys_per_site, seed=seed, backend="net",
        time_scale=time_scale,
    )
    with NetSystem(config) as system:
        site_ids = system.cluster.site_ids
        serial = _net_leg(
            system,
            _net_transfer_specs(
                site_ids, serial_transactions, keys_per_site, seed, "NS",
            ),
            sessions=1, time_scale=time_scale,
        )
        pipelined = _net_leg(
            system,
            _net_transfer_specs(
                site_ids, pipelined_transactions, keys_per_site, seed, "NP",
            ),
            sessions=sessions, time_scale=time_scale,
        )
    pipelined["speedup_vs_serial"] = (
        pipelined["txns_per_s"] / serial["txns_per_s"]
        if serial["txns_per_s"] else 0.0
    )
    return {"net_serial": serial, "net_pipelined": pipelined}


# -- workload: serialization-graph builds --------------------------------------


def _random_history(
    n_ops: int, seed: int = 0, write_fraction: float = 0.3
) -> GlobalHistory:
    """A seeded single-site history with bounded per-key conflict density.

    Keys and transactions scale with ``n_ops`` so the expected number of
    transactions touching one key stays roughly constant — the regime the
    checker's histories live in, and one where the incremental index does
    real per-operation work.
    """
    rng = Rng(seed).fork(f"bench-sg-{n_ops}")
    n_keys = max(8, n_ops // 50)
    n_txns = max(4, n_ops // 10)
    history = GlobalHistory()
    site = history.site("S1")
    for _ in range(n_ops):
        txn = f"T{rng.randint(0, n_txns - 1)}"
        key = f"k{rng.randint(0, n_keys - 1)}"
        if txn in site.committed or txn in site.aborted:
            continue
        if rng.chance(write_fraction):
            site.write(txn, key)
        else:
            site.read(txn, key)
    for txn_id in sorted(site.transactions()):
        site.commit(txn_id)
    return history


def bench_sg(
    sizes: tuple[int, ...] = (1_000, 10_000, 100_000),
    scan_cap: int = 10_000,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Incremental SG build vs the pairwise scan, per history size."""
    results: dict[str, dict[str, float]] = {}
    for size in sizes:
        record_wall, history = _timed(lambda s=size: _random_history(s, seed))
        index_wall, fast = _timed(
            lambda h=history: GlobalSG.from_history(h)
        )
        metrics = {
            "ops": float(size),
            "edges": float(len(fast.union_edges())),
            "record_s": record_wall,
            "index_build_s": index_wall,
        }
        if size <= scan_cap:
            scan_wall, slow = _timed(
                lambda h=history: GlobalSG.from_history_scan(h)
            )
            if slow.union_edges() != fast.union_edges():
                raise AssertionError(
                    f"index/scan divergence at {size} ops — bench aborted"
                )
            metrics["scan_build_s"] = scan_wall
            metrics["speedup_vs_scan"] = (
                scan_wall / index_wall if index_wall else float("inf")
            )
        results[f"ops_{size}"] = metrics
    return results


# -- suite orchestration -------------------------------------------------------


def run_suite(
    smoke: bool = False, seed: int = 0, jobs: int = 1
) -> dict[str, dict[str, Any]]:
    """Run every workload; returns ``{file name: JSON payload}``.

    ``smoke`` shrinks the pinned sizes for CI wall-time; the file names and
    metric names are identical, so baselines stay comparable as long as
    they were recorded at the same size (the payload carries the knobs).
    """
    if smoke:
        check = bench_check(seed=seed, max_schedules=300, jobs=jobs,
                            repeats=3)
        thru = bench_throughput(seed=seed, transactions=100, repeats=3)
        sg = bench_sg(sizes=(1_000, 10_000), scan_cap=10_000, seed=seed)
    else:
        check = bench_check(seed=seed, max_schedules=800, jobs=jobs,
                            repeats=3)
        thru = bench_throughput(seed=seed, transactions=250, repeats=3)
        sg = bench_sg(sizes=(1_000, 10_000, 100_000), scan_cap=10_000,
                      seed=seed)
    header = {"schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed}
    return {
        "BENCH_check.json": {
            **header,
            "results": {"check": check, "throughput": thru},
        },
        "BENCH_sg.json": {**header, "results": sg},
    }


def run_scale(smoke: bool = False, seed: int = 0) -> dict[str, dict[str, Any]]:
    """The scale workload alone (``repro bench --scale``).

    ``smoke`` keeps the 64-site shape but shrinks the transaction count to
    CI wall-time; the committed full-size artifact lives in
    ``benchmarks/BENCH_scale.json``.
    """
    if smoke:
        scale = bench_scale(seed=seed, transactions=1_500, repeats=2)
    else:
        scale = bench_scale(seed=seed, transactions=100_000, repeats=1)
    header = {"schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed}
    return {"BENCH_scale.json": {**header, "results": {"scale": scale}}}


def run_net(smoke: bool = False, seed: int = 0) -> dict[str, dict[str, Any]]:
    """The networked-runtime workload alone (``repro bench --net``).

    ``smoke`` shrinks both legs to CI wall-time while keeping the 16-way
    session window, so ``speedup_vs_serial`` stays comparable against the
    committed ``benchmarks/baselines/BENCH_net.json``.
    """
    if smoke:
        net = bench_net(
            seed=seed, serial_transactions=30, pipelined_transactions=150,
        )
    else:
        net = bench_net(
            seed=seed, serial_transactions=60, pipelined_transactions=400,
        )
    header = {"schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed}
    return {"BENCH_net.json": {**header, "results": net}}


def to_json(payload: dict[str, Any]) -> str:
    """Stable JSON encoding for artifacts and baselines."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def compare_to_baseline(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Regression lines for gated metrics; empty means within tolerance.

    Only metrics present in *both* payloads are compared, so adding a
    workload never fails the gate until its baseline is recorded.
    """
    regressions: list[str] = []
    base_results = baseline.get("results", {})
    for name, metrics in current.get("results", {}).items():
        base_metrics = base_results.get(name, {})
        for metric in GATED_METRICS:
            if metric not in metrics or metric not in base_metrics:
                continue
            now, then = metrics[metric], base_metrics[metric]
            floor = then * (1.0 - tolerance)
            if now < floor:
                regressions.append(
                    f"{name}.{metric}: {now:.1f} < {floor:.1f} "
                    f"(baseline {then:.1f}, tolerance {tolerance:.0%})"
                )
    return regressions
