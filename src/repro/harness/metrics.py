"""Metric aggregation over a finished (or running) :class:`System`.

The quantities the paper's claims speak about:

* **lock-hold time** — how long locks are held (O2PC's whole point is to
  shrink this by one decision round, and by the entire outage when the
  coordinator fails);
* **lock-wait time** — time requests spend blocked (data contention);
* **throughput / latency** — committed transactions per time unit;
* **message counts per transaction** — O2PC must add none;
* **compensation counts** — the overhead side of the optimistic bet;
* **deadlocks, rejections** — concurrency-control overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.system import System


def mean(values: list[float]) -> float:
    """Arithmetic mean; 0.0 for the empty list."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: list[float], p: float) -> float:
    """The ``p``-th percentile (nearest-rank); 0.0 for the empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class MetricsReport:
    """Aggregated metrics of one run."""

    committed: int = 0
    aborted: int = 0
    mean_latency: float = 0.0
    p99_latency: float = 0.0
    throughput: float = 0.0
    mean_lock_hold: float = 0.0
    max_lock_hold: float = 0.0
    mean_lock_wait: float = 0.0
    total_lock_wait: float = 0.0
    messages_total: int = 0
    messages_by_type: dict[str, int] = field(default_factory=dict)
    messages_per_txn: float = 0.0
    compensations: int = 0
    compensation_retries: int = 0
    deadlocks: int = 0
    rejections: int = 0
    forced_log_writes: int = 0

    @property
    def abort_rate(self) -> float:
        """Fraction of terminated transactions that aborted."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


def collect_metrics(
    system: "System", elapsed: float | None = None
) -> MetricsReport:
    """Aggregate a system's raw logs into a :class:`MetricsReport`."""
    report = MetricsReport()
    outcomes = system.outcomes
    report.committed = sum(1 for o in outcomes if o.committed)
    report.aborted = sum(1 for o in outcomes if not o.committed)
    latencies = [o.latency for o in outcomes]
    report.mean_latency = mean(latencies)
    report.p99_latency = percentile(latencies, 99)
    elapsed = elapsed if elapsed is not None else system.env.now
    if elapsed > 0:
        report.throughput = report.committed / elapsed

    holds: list[float] = []
    waits: list[float] = []
    for site in system.sites.values():
        holds.extend(h.duration for h in site.locks.hold_log)
        waits.extend(w for _, _, w in site.locks.wait_log)
        report.deadlocks += len(site.locks.detector.detected)
        report.forced_log_writes += site.wal.forced_writes
    report.mean_lock_hold = mean(holds)
    report.max_lock_hold = max(holds) if holds else 0.0
    report.mean_lock_wait = mean(waits)
    report.total_lock_wait = sum(waits)

    report.messages_total = system.network.total_sent()
    report.messages_by_type = system.network.counts_by_type()
    if outcomes:
        report.messages_per_txn = report.messages_total / len(outcomes)

    for participant in system.participants.values():
        report.compensations += participant.compensator.stats.completed
        report.compensation_retries += participant.compensator.stats.retries
    report.rejections = system.marking.rejections
    return report
