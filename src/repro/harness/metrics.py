"""Deprecated shim: the metrics layer moved to :mod:`repro.obs.metrics`.

Kept so existing imports (``from repro.harness.metrics import
collect_metrics``) keep working.  New code should call
:meth:`System.metrics() <repro.harness.system.System.metrics>` — streaming
when observability is enabled, the exact log-scraping path otherwise — or
use :mod:`repro.obs.metrics` directly.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.obs.metrics import (  # noqa: F401 - re-exports for old callers
    MetricsReport,
    mean,
    percentile,
    report_from_logs,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.system import System

__all__ = ["MetricsReport", "collect_metrics", "mean", "percentile"]


def collect_metrics(
    system: "System", elapsed: float | None = None
) -> MetricsReport:
    """Deprecated alias: use :meth:`System.metrics`."""
    warnings.warn(
        "collect_metrics() is deprecated; use System.metrics() "
        "(or repro.obs.metrics.report_from_logs)",
        DeprecationWarning,
        stacklevel=2,
    )
    return report_from_logs(system, elapsed)
