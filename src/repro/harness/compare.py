"""Head-to-head commit-scheme comparison behind ``repro compare``.

Every registered :class:`~repro.commit.base.CommitScheme` runs the same
two legs on the shared substrate (identical sites, workload generator,
and seeds — the engine is the *only* independent variable):

* **contention** — a seeded multi-site workload under ``protocol="none"``,
  measuring wall-clock throughput, messages per transaction, abort and
  compensation rates, and the lock-hold tail (p50/p99 of every
  grant→release interval).  This is where the schemes' lock-release
  trades show up: O2PC and Short-Commit release at the vote, 2PC and
  Paxos Commit hold through the decision.
* **crash drill** — the checker's ``crashcoord`` shape: a two-site
  transfer whose coordinator dies after the votes and stays down far
  beyond every timeout (one acceptor down too).  ``blocking_time`` is how
  long the participants sat on their YES votes before a decision was
  applied; ``decided_in_outage`` is 1.0 when the decision landed while
  the coordinator was still dead — Paxos Commit's termination protocol
  does, the 2PC family waits for recovery.

``run_compare`` returns the ``BENCH_compare.json`` payload in the
``repro bench`` shape: one result block per scheme (``compare_<SCHEME>``,
or ``compare_<SCHEME>@vt<v>`` under a ``--vote-timeout`` sweep), so the
existing baseline gate picks up each block's ``txns_per_s`` with no new
machinery.
"""

from __future__ import annotations

from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.harness.bench import SCHEMA_VERSION, _percentile, _timed
from repro.harness.system import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.protocols import ENGINES
from repro.txn.operations import WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

#: commit timeouts compressed exactly like the checker's (a Paxos
#: watchdog waiting the library-default 60 units would dominate the run)
_COMPARE_COMMIT = CommitConfig(
    spawn_timeout=30.0,
    spawn_retry_delay=2.0,
    max_spawn_retries=10,
    vote_timeout=30.0,
    ack_timeout=15.0,
    decision_retries=5,
    decision_log_delay=0.5,
    sequential_spawn=True,
    paxos_acceptors=3,
    paxos_decision_timeout=10.0,
    short_dependency_timeout=25.0,
)

#: the crash drill's outage window (same shape as the checker scenario)
_DRILL_CRASH_AT = 6.2
_DRILL_OUTAGE = 400.0


def _contention_leg(
    scheme: CommitScheme,
    seed: int,
    transactions: int,
    vote_timeout: float | None,
) -> dict[str, float]:
    system = System(SystemConfig(
        n_sites=3, scheme=scheme, protocol="none", keys_per_site=8,
        seed=seed, commit=_COMPARE_COMMIT, vote_timeout=vote_timeout,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=transactions, abort_probability=0.15,
        read_fraction=0.4, arrival_mean=2.0, zipf_theta=0.7,
    ), seed=seed)
    wall, elapsed = _timed(gen.run)
    report = system.metrics(elapsed)
    holds = sorted(
        h.duration
        for site in system.sites.values()
        for h in site.locks.hold_log
    )
    terminated = report.committed + report.aborted
    return {
        "transactions": float(transactions),
        "txns_per_s": transactions / wall if wall else 0.0,
        "committed": float(report.committed),
        "abort_rate": report.abort_rate,
        "compensation_rate": (
            report.compensations / terminated if terminated else 0.0
        ),
        "messages_per_txn": report.messages_per_txn,
        "lock_hold_p50": _percentile(holds, 50) if holds else 0.0,
        "lock_hold_p99": _percentile(holds, 99) if holds else 0.0,
    }


def _crash_drill(
    scheme: CommitScheme, seed: int, vote_timeout: float | None,
) -> dict[str, float]:
    system = System(SystemConfig(
        n_sites=2, scheme=scheme, protocol="none", seed=seed,
        commit=_COMPARE_COMMIT, vote_timeout=vote_timeout,
    ))
    system.failures.schedule(CrashPlan("acc.3", at=0.5, duration=_DRILL_OUTAGE))
    system.failures.schedule(CrashPlan(
        "coord.T1", at=_DRILL_CRASH_AT, duration=_DRILL_OUTAGE,
    ))
    system.submit(GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 1)]),
        SubtxnSpec("S2", [WriteOp("k1", 1)]),
    ]))
    system.env.run()
    decided_at = [
        state.decided_at
        for participant in system.participants.values()
        for state in participant.subtxns.values()
        if state.decided_at is not None
    ]
    last = max(decided_at) if decided_at else float("inf")
    outage_end = _DRILL_CRASH_AT + _DRILL_OUTAGE
    return {
        "blocking_time": (
            max(0.0, last - _DRILL_CRASH_AT)
            if decided_at else _DRILL_OUTAGE
        ),
        "decided_in_outage": 1.0 if last < outage_end else 0.0,
    }


def compare_schemes(
    seed: int = 0,
    transactions: int = 40,
    vote_timeouts: tuple[float, ...] = (),
) -> dict[str, dict[str, float]]:
    """Both legs for every registered scheme; one result block each.

    An empty ``vote_timeouts`` runs each scheme once at the library
    default; otherwise every scheme runs once per timeout, with the block
    key carrying the swept value (``compare_PAXOS@vt5``).
    """
    results: dict[str, dict[str, float]] = {}
    sweeps: tuple[float | None, ...] = tuple(vote_timeouts) or (None,)
    for scheme in sorted(ENGINES, key=lambda s: s.name):
        for vt in sweeps:
            key = f"compare_{scheme.name}"
            if vt is not None:
                key += f"@vt{vt:g}"
            metrics = _contention_leg(scheme, seed, transactions, vt)
            metrics.update(_crash_drill(scheme, seed, vt))
            if vt is not None:
                metrics["vote_timeout"] = vt
            results[key] = metrics
    return results


def run_compare(
    smoke: bool = False,
    seed: int = 0,
    vote_timeouts: tuple[float, ...] = (),
) -> dict[str, dict[str, Any]]:
    """The ``BENCH_compare.json`` payload (``repro compare``)."""
    transactions = 20 if smoke else 40
    results = compare_schemes(
        seed=seed, transactions=transactions, vote_timeouts=vote_timeouts,
    )
    return {"BENCH_compare.json": {
        "schema": SCHEMA_VERSION, "smoke": smoke, "seed": seed,
        "results": results,
    }}
