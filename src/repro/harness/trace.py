"""Deprecated shim: the text renderers moved to :mod:`repro.obs.render`.

Kept so existing imports (``from repro.harness.trace import
transaction_timeline``) keep working.  New code should call the
:class:`~repro.harness.system.System` methods — :meth:`System.timeline`,
:meth:`System.lock_gantt`, :meth:`System.marking_audit`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.obs.render import (  # noqa: F401 - re-export (tests use _bar)
    _bar,
    render_lock_gantt,
    render_marking_audit,
    render_timeline,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.system import System

__all__ = ["lock_gantt", "marking_audit", "transaction_timeline"]


def _warn(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def transaction_timeline(system: "System", width: int = 50) -> str:
    """Deprecated alias: use :meth:`System.timeline`."""
    _warn("transaction_timeline", "System.timeline()")
    return render_timeline(system, width)


def lock_gantt(
    system: "System", site_id: str, width: int = 50,
    keys: list[str] | None = None,
) -> str:
    """Deprecated alias: use :meth:`System.lock_gantt`."""
    _warn("lock_gantt", "System.lock_gantt(site_id)")
    return render_lock_gantt(system, site_id, width, keys)


def marking_audit(system: "System") -> str:
    """Deprecated alias: use :meth:`System.marking_audit`."""
    _warn("marking_audit", "System.marking_audit()")
    return render_marking_audit(system)
