"""The simulated network connecting sites.

Each registered endpoint gets an inbox (:class:`~repro.sim.store.Store`).
``send`` stamps the message, applies the latency model, may drop it (loss
probability or recipient down), and schedules delivery.  All delivered and
dropped messages are counted per type — the ``CLAIM-MSG`` benchmark reads
these counters to verify O2PC adds no messages over standard 2PC.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import UnknownSiteError
from repro.net.message import Message, MsgType
from repro.obs.events import MessageDelivered, MessageDropped, MessageSent
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.rng import Rng
from repro.sim.store import Store


@dataclass
class LatencyModel:
    """Per-message latency: ``base`` plus uniform jitter in [0, jitter]."""

    base: float = 1.0
    jitter: float = 0.0

    def draw(self, rng: Rng) -> float:
        """Sample one message latency."""
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


@dataclass
class ExponentialLatency(LatencyModel):
    """Heavy-tailed latency: ``base`` plus an exponential tail.

    A WAN-ish model: most messages arrive near ``base``, a few straggle.
    ``jitter`` is reused as the tail's mean, so the model plugs in anywhere
    a :class:`LatencyModel` is accepted.
    """

    def draw(self, rng: Rng) -> float:
        """Sample one message latency with an exponential tail."""
        if self.jitter <= 0:
            return self.base
        return self.base + rng.exponential(self.jitter)


class Network:
    """Point-to-point message network with latency, loss, and failure hooks."""

    def __init__(
        self,
        env: Environment,
        rng: Rng | None = None,
        latency: LatencyModel | None = None,
        loss_probability: float = 0.0,
    ) -> None:
        self.env = env
        self.rng = rng or Rng(0)
        self.latency = latency or LatencyModel()
        self.loss_probability = loss_probability
        self._inboxes: dict[str, Store] = {}
        #: per-link latency overrides keyed by (sender, recipient)
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        #: endpoints currently considered crashed (set by FailureInjector)
        self._down: set[str] = set()
        #: severed directed links (messages on them are dropped)
        self._severed: set[tuple[str, str]] = set()
        #: open delivery batch: (arrival_time, schedule watermark,
        #: messages, arrival event) — see ``send``
        self._batch: tuple[float, int, list[Message], Event] | None = None
        # -- counters read by the metrics layer --
        self.sent: Counter[MsgType] = Counter()
        self.delivered: Counter[MsgType] = Counter()
        self.dropped: Counter[MsgType] = Counter()

    # -- registration -------------------------------------------------------

    def register(self, endpoint_id: str) -> Store:
        """Create (or return) the inbox for ``endpoint_id``."""
        if endpoint_id not in self._inboxes:
            self._inboxes[endpoint_id] = Store(self.env, name=f"inbox:{endpoint_id}")
        return self._inboxes[endpoint_id]

    def inbox(self, endpoint_id: str) -> Store:
        """The inbox of a registered endpoint."""
        try:
            return self._inboxes[endpoint_id]
        except KeyError:
            raise UnknownSiteError(f"endpoint {endpoint_id!r} not registered") from None

    @property
    def endpoints(self) -> list[str]:
        """All registered endpoint ids."""
        return list(self._inboxes)

    def set_link_latency(
        self, sender: str, recipient: str, latency: LatencyModel
    ) -> None:
        """Override the latency model for one directed link."""
        self._link_latency[(sender, recipient)] = latency

    # -- failure hooks (driven by FailureInjector) ----------------------------

    def mark_down(self, endpoint_id: str) -> None:
        """Mark an endpoint crashed; in-queue messages for it are dropped."""
        self._down.add(endpoint_id)
        if endpoint_id in self._inboxes:
            for msg in self._inboxes[endpoint_id].clear():
                if isinstance(msg, Message):
                    self._drop(msg, "recipient_down")

    def mark_up(self, endpoint_id: str) -> None:
        """Mark a crashed endpoint recovered."""
        self._down.discard(endpoint_id)

    def is_down(self, endpoint_id: str) -> bool:
        """True if the endpoint is currently crashed."""
        return endpoint_id in self._down

    # -- partitions -----------------------------------------------------------

    def sever(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Cut the link between two endpoints: messages on it are dropped.

        Link failures are the other half of the paper's failure model ("it
        is impossible to have a non-blocking commit protocol that is immune
        to both site and link failures").
        """
        self._severed.add((a, b))
        if bidirectional:
            self._severed.add((b, a))

    def heal(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Restore a severed link."""
        self._severed.discard((a, b))
        if bidirectional:
            self._severed.discard((b, a))

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Sever every link between two groups of endpoints."""
        for a in group_a:
            for b in group_b:
                self.sever(a, b)

    def heal_partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Heal every link between two groups of endpoints."""
        for a in group_a:
            for b in group_b:
                self.heal(a, b)

    def is_severed(self, a: str, b: str) -> bool:
        """True if the directed link ``a -> b`` is currently cut."""
        return (a, b) in self._severed

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send ``message``; delivery is scheduled after a latency draw.

        Messages sent *by* a down endpoint, *to* a down endpoint, over a
        severed link (both checked again at delivery time, so a message can
        also race a crash or a link cut), or hit by the loss probability
        are counted as dropped.
        """
        if message.recipient not in self._inboxes:
            raise UnknownSiteError(
                f"recipient {message.recipient!r} not registered"
            )
        message.send_time = self.env.now
        self.sent[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageSent(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
            ))

        if self.is_down(message.sender):
            self._drop(message, "sender_down")
            return
        if self.is_severed(message.sender, message.recipient):
            self._drop(message, "severed")
            return
        if self.loss_probability and self.rng.chance(self.loss_probability):
            self._drop(message, "loss")
            return

        model = self._link_latency.get(
            (message.sender, message.recipient), self.latency
        )
        delay = model.draw(self.rng)
        env = self.env
        if not env.annotate_deliveries:
            # Batched delivery: broadcasts under a constant-latency model
            # (the default) produce back-to-back sends that share an arrival
            # time.  Piggyback on the open batch's single arrival timeout
            # when (a) the arrival times match, (b) nothing has been
            # scheduled since that timeout (``schedule_count`` is the
            # kernel's monotonic schedule counter, so equality proves no
            # event's seq would order between the per-message arrivals this
            # batch replaces), and (c) the batch has not fired yet.
            # Per-message down/severed re-checks still run at delivery.
            arrival_time = env.now + delay
            batch = self._batch
            if (
                batch is not None
                and batch[0] == arrival_time
                and batch[1] == env.schedule_count
                and not batch[3].processed
            ):
                batch[2].append(message)
                return
            arrival = env.timeout(delay)
            messages = [message]
            self._batch = (
                arrival_time, env.schedule_count, messages, arrival
            )
            arrival.callbacks.append(
                lambda _evt, batch=messages: self._deliver_batch(batch)
            )
            return
        # Under a controlled scheduler each delivery is its own bare
        # annotated timeout (never batched): the annotation identifies it
        # as a reorderable occurrence, which is what the model checker's
        # controlled scheduler branches on.
        arrival = self.env.timeout(delay)
        arrival.annotation = (
            "net.deliver",
            message.recipient,
            f"{message.msg_type.value}:{message.sender}"
            f"->{message.recipient}:{message.txn_id}",
        )
        arrival.callbacks.append(
            lambda _evt, m=message: self._finish_delivery(m)
        )

    def _deliver_batch(self, messages: list[Message]) -> None:
        for message in messages:
            self._finish_delivery(message)

    def _finish_delivery(self, message: Message) -> None:
        if self.is_down(message.recipient):
            self._drop(message, "recipient_down")
            return
        if self.is_severed(message.sender, message.recipient):
            # The link was cut while the message was in flight: it is lost
            # exactly like one racing a recipient crash.
            self._drop(message, "severed_in_flight")
            return
        message.deliver_time = self.env.now
        self._inboxes[message.recipient].put(message)
        self.delivered[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDelivered(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                latency=self.env.now - message.send_time,
            ))

    def _drop(self, message: Message, reason: str) -> None:
        """Count (and report) one dropped message."""
        self.dropped[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDropped(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                reason=reason,
            ))

    def receive(self, endpoint_id: str) -> Event:
        """Event yielding the next message for ``endpoint_id``."""
        return self.inbox(endpoint_id).get()

    # -- accounting ------------------------------------------------------------

    def total_sent(self) -> int:
        """Total messages handed to the network."""
        return sum(self.sent.values())

    def counts_by_type(self) -> dict[str, int]:
        """Sent-message counts keyed by message-type name."""
        return {t.value: n for t, n in sorted(self.sent.items(), key=lambda kv: kv[0].value)}
