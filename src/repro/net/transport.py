"""The transport abstraction both backends implement.

The protocol core (:class:`~repro.commit.coordinator.Coordinator`,
:class:`~repro.commit.participant.Participant`) never talks to a concrete
network class — it talks to *a transport*: something that registers
endpoints, sends typed :class:`~repro.net.message.Message` objects, and
hands out receive events backed by per-endpoint FIFO inboxes.  Two
implementations exist:

* :class:`~repro.net.network.Network` — the simulated backend: latency
  models, seeded loss, link severing, crash-aware drops, all on the
  discrete-event clock (``SystemConfig(backend="sim")``);
* :class:`~repro.rt.transport.TcpTransport` — the production backend: real
  asyncio TCP sockets with length-prefixed frames, one daemon per site
  (``SystemConfig(backend="net")``, ``repro serve`` / ``repro client``).

Failure-semantics contract (shared conformance suite in
``tests/net/test_transport_conformance.py``): a message that cannot reach
its recipient is silently *dropped and counted*, never raised to the
sender.  In the simulation that covers loss draws, crashed endpoints, and
links severed while the message is in flight; over TCP the same bucket
covers refused connections and connections reset mid-write.  Senders learn
about lost messages the only way a distributed system can: by timeout.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.net.message import Message
from repro.sim.events import Event
from repro.sim.store import Store


@runtime_checkable
class Transport(Protocol):
    """What the protocol core requires of a message transport.

    Implementations own per-endpoint inboxes (:class:`~repro.sim.store.Store`
    channels on the local simulation environment) and the delivery path
    between them.  All methods are non-blocking; waiting happens by yielding
    the event returned from :meth:`receive` inside a simulation process.
    """

    def register(self, endpoint_id: str) -> Store:
        """Create (or return) the local inbox for ``endpoint_id``."""
        ...

    def inbox(self, endpoint_id: str) -> Store:
        """The inbox of a registered endpoint (raises if unknown)."""
        ...

    def send(self, message: Message) -> None:
        """Hand a message to the transport; delivery is asynchronous.

        Undeliverable messages are counted as dropped, never raised.
        """
        ...

    def receive(self, endpoint_id: str) -> Event:
        """Event that triggers with the next message for ``endpoint_id``."""
        ...
