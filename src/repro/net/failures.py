"""Failure injection: site crashes and recoveries on a schedule.

The paper's motivating failure is a *coordinator crash after participants
vote* — under standard 2PC this leaves participants blocked in the prepared
state holding locks until the coordinator recovers (Section 1).  The
``CLAIM-BLOCK`` benchmark drives exactly that schedule.

A :class:`FailureInjector` owns the up/down state of every site, notifies the
:class:`~repro.net.network.Network` (so in-flight messages are dropped), and
fires registered crash/recovery callbacks so site processes can abort local
work and run recovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.net.network import Network
from repro.sim.engine import Environment
from repro.sim.rng import Rng


class SiteStatus(enum.Enum):
    """Liveness of a site."""

    UP = "UP"
    DOWN = "DOWN"


@dataclass
class CrashPlan:
    """One scheduled outage of a site: down at ``at``, up at ``at + duration``.

    ``duration`` of ``None`` means the site never recovers within the run —
    the "unbounded delay" case of the paper's introduction.
    """

    site_id: str
    at: float
    duration: float | None = None


@dataclass
class RandomCrashConfig:
    """Knobs of a seeded random crash schedule (see :func:`random_crash_plans`)."""

    #: how many crashes to draw
    n_crashes: int = 3
    #: crash times are drawn uniformly in this interval
    window: tuple[float, float] = (0.0, 100.0)
    #: outage durations are drawn uniformly in [min_outage, max_outage]
    min_outage: float = 5.0
    max_outage: float = 20.0
    #: probability that a crash never recovers within the run (the paper's
    #: "unbounded delay" case)
    permanent_probability: float = 0.0


def random_crash_plans(
    rng: Rng,
    sites: Sequence[str],
    config: RandomCrashConfig | None = None,
) -> list[CrashPlan]:
    """Draw a crash schedule deterministically from ``rng``.

    The same seed always yields the same plans (the draws consume the RNG
    in a fixed order), so a randomly sampled failure scenario is exactly
    reproducible — the property the model checker's bounded mode and the
    benchmarks rely on.  Plans are returned sorted by crash time.
    """
    config = config or RandomCrashConfig()
    if not sites:
        raise ValueError("no sites to crash")
    lo, hi = config.window
    plans: list[CrashPlan] = []
    for _ in range(config.n_crashes):
        site = rng.choice(list(sites))
        at = rng.uniform(lo, hi)
        duration: float | None
        duration = rng.uniform(config.min_outage, config.max_outage)
        if config.permanent_probability and rng.chance(
            config.permanent_probability
        ):
            duration = None
        plans.append(CrashPlan(site_id=site, at=at, duration=duration))
    plans.sort(key=lambda p: (p.at, p.site_id))
    return plans


@dataclass
class _Outage:
    """Record of an observed outage (for metrics)."""

    site_id: str
    start: float
    end: float | None = None


class FailureInjector:
    """Central up/down registry plus scheduled crash execution."""

    def __init__(self, env: Environment, network: Network) -> None:
        self.env = env
        self.network = network
        self._status: dict[str, SiteStatus] = {}
        self._crash_callbacks: list[Callable[[str], None]] = []
        self._recover_callbacks: list[Callable[[str], None]] = []
        self.outages: list[_Outage] = []
        self._open_outage: dict[str, _Outage] = {}

    # -- registration ---------------------------------------------------------

    def register_site(self, site_id: str) -> None:
        """Track a site; it starts UP."""
        self._status.setdefault(site_id, SiteStatus.UP)

    def on_crash(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the site id at crash time."""
        self._crash_callbacks.append(callback)

    def on_recover(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the site id at recovery time."""
        self._recover_callbacks.append(callback)

    # -- state ---------------------------------------------------------------

    def status(self, site_id: str) -> SiteStatus:
        """Current liveness of ``site_id`` (unregistered sites count as UP)."""
        return self._status.get(site_id, SiteStatus.UP)

    def is_up(self, site_id: str) -> bool:
        """True when the site is currently up."""
        return self.status(site_id) is SiteStatus.UP

    # -- direct control --------------------------------------------------------

    def crash(self, site_id: str) -> None:
        """Crash ``site_id`` now (idempotent)."""
        if self._status.get(site_id) is SiteStatus.DOWN:
            return
        self._status[site_id] = SiteStatus.DOWN
        self.network.mark_down(site_id)
        outage = _Outage(site_id=site_id, start=self.env.now)
        self.outages.append(outage)
        self._open_outage[site_id] = outage
        for callback in self._crash_callbacks:
            callback(site_id)

    def recover(self, site_id: str) -> None:
        """Recover ``site_id`` now (idempotent)."""
        if self._status.get(site_id) is not SiteStatus.DOWN:
            return
        self._status[site_id] = SiteStatus.UP
        self.network.mark_up(site_id)
        outage = self._open_outage.pop(site_id, None)
        if outage is not None:
            outage.end = self.env.now
        for callback in self._recover_callbacks:
            callback(site_id)

    # -- scheduling --------------------------------------------------------------

    def schedule(self, plan: CrashPlan) -> None:
        """Install a crash plan executed by a background process."""
        self.register_site(plan.site_id)
        self.env.process(self._execute(plan), name=f"crashplan:{plan.site_id}")

    def schedule_random(
        self,
        rng: Rng,
        sites: Sequence[str],
        config: RandomCrashConfig | None = None,
    ) -> list[CrashPlan]:
        """Draw and install a seeded random crash schedule; returns the plans.

        Deterministic for a given RNG seed — a convenience wrapper over
        :func:`random_crash_plans` + :meth:`schedule`.
        """
        plans = random_crash_plans(rng, sites, config)
        for plan in plans:
            self.schedule(plan)
        return plans

    def _execute(self, plan: CrashPlan):
        if plan.at > self.env.now:
            yield self.env.timeout(plan.at - self.env.now)
        self.crash(plan.site_id)
        if plan.duration is not None:
            yield self.env.timeout(plan.duration)
            self.recover(plan.site_id)

    # -- metrics -------------------------------------------------------------------

    def total_downtime(self, site_id: str, now: float | None = None) -> float:
        """Accumulated downtime of ``site_id`` up to ``now``."""
        now = self.env.now if now is None else now
        total = 0.0
        for outage in self.outages:
            if outage.site_id != site_id:
                continue
            end = outage.end if outage.end is not None else now
            total += max(0.0, end - outage.start)
        return total
