"""Message-passing substrate between sites.

Provides typed :class:`~repro.net.message.Message` objects, a
:class:`~repro.net.network.Network` with per-link latency and loss models, and
:class:`~repro.net.failures.FailureInjector` for crash/recovery schedules.
"""

from repro.net.failures import FailureInjector, SiteStatus
from repro.net.message import Message, MsgType
from repro.net.network import ExponentialLatency, LatencyModel, Network

__all__ = [
    "ExponentialLatency",
    "FailureInjector",
    "LatencyModel",
    "Message",
    "MsgType",
    "Network",
    "SiteStatus",
]
