"""Message-passing substrate between sites.

Provides typed :class:`~repro.net.message.Message` objects, a
:class:`~repro.net.network.Network` with per-link latency and loss models,
:class:`~repro.net.failures.FailureInjector` for crash/recovery schedules,
and the :class:`~repro.net.transport.Transport` protocol that both the
simulated network and the asyncio runtime (:mod:`repro.rt`) implement.
"""

from repro.net.failures import FailureInjector, SiteStatus
from repro.net.message import Message, MsgType
from repro.net.network import ExponentialLatency, LatencyModel, Network
from repro.net.transport import Transport

__all__ = [
    "ExponentialLatency",
    "FailureInjector",
    "LatencyModel",
    "Message",
    "MsgType",
    "Network",
    "SiteStatus",
    "Transport",
]
