"""Message types exchanged between sites.

The message vocabulary follows the paper exactly: the 2PC rounds are
``VOTE_REQ`` (PREPARE), ``VOTE``, and ``DECISION`` plus the customary ``ACK``.
Transaction processing uses ``SUBTXN_REQ``/``SUBTXN_ACK`` to submit a
subtransaction and acknowledge its operations — the coordinator starts 2PC
only after all operation acknowledgements (Section 2, distributed 2PL).

O2PC introduces **no new message types** — that is one of the paper's claims,
and the benchmark ``CLAIM-MSG`` counts these very objects to verify it.
Short-Commit makes the same claim and also adds nothing.  Paxos Commit
(Gray & Lamport) replaces the VOTE round with one Paxos consensus instance
per participant: ``PAXOS_ACCEPT``/``PAXOS_ACCEPTED`` are phases 2a/2b (a
participant's own vote is its ballot-0 2a message), and
``PAXOS_PREPARE``/``PAXOS_PROMISE`` are phases 1a/1b of the termination
protocol a recovery leader runs when the coordinator goes silent.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class MsgType(enum.Enum):
    """Wire message types (2PC vocabulary plus subtransaction submission)."""

    #: coordinator → participant: request to execute a subtransaction
    SUBTXN_REQ = "SUBTXN_REQ"
    #: participant → coordinator: all operations executed (or rejected)
    SUBTXN_ACK = "SUBTXN_ACK"
    #: coordinator → participant: first 2PC round (PREPARE)
    VOTE_REQ = "VOTE_REQ"
    #: participant → coordinator: YES/NO vote
    VOTE = "VOTE"
    #: coordinator → participant: final commit/abort decision
    DECISION = "DECISION"
    #: participant → coordinator: decision acknowledged
    ACK = "ACK"
    #: leader → acceptor: Paxos phase 1a (termination-protocol prepare)
    PAXOS_PREPARE = "PAXOS_PREPARE"
    #: acceptor → leader: Paxos phase 1b (promise + accepted values)
    PAXOS_PROMISE = "PAXOS_PROMISE"
    #: proposer → acceptor: Paxos phase 2a (ballot 0 carries the
    #: participant's own vote; higher ballots come from recovery leaders)
    PAXOS_ACCEPT = "PAXOS_ACCEPT"
    #: acceptor → leader: Paxos phase 2b (value accepted at a ballot)
    PAXOS_ACCEPTED = "PAXOS_ACCEPTED"


class Vote(enum.Enum):
    """A participant's vote in the 2PC first phase."""

    YES = "YES"
    NO = "NO"


class Decision(enum.Enum):
    """The coordinator's final decision."""

    COMMIT = "COMMIT"
    ABORT = "ABORT"


_seq = itertools.count(1)


@dataclass(slots=True)
class Message:
    """A single message on the wire.

    ``payload`` carries protocol-specific data (votes, decisions, operation
    lists).  ``send_time``/``deliver_time`` are stamped by the network and
    used by the metrics layer to account latency.
    """

    msg_type: MsgType
    sender: str
    recipient: str
    txn_id: str
    payload: dict[str, Any] = field(default_factory=dict)
    send_time: float = -1.0
    deliver_time: float = -1.0
    seq: int = field(default_factory=lambda: next(_seq))

    def reply(
        self, msg_type: MsgType, payload: dict[str, Any] | None = None
    ) -> "Message":
        """Build a reply addressed back to this message's sender."""
        return Message(
            msg_type=msg_type,
            sender=self.recipient,
            recipient=self.sender,
            txn_id=self.txn_id,
            payload=payload or {},
        )

    def __repr__(self) -> str:
        return (
            f"<Msg #{self.seq} {self.msg_type.value} {self.sender}->"
            f"{self.recipient} txn={self.txn_id} {self.payload}>"
        )
