"""Exception hierarchy for the O2PC reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause.  The hierarchy is
organized by subsystem: simulation kernel, storage, locking, transactions,
commit protocols, and the correctness (serialization-graph) layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for simulation-kernel errors."""


class SimulationDeadlock(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.engine.Environment.run` when ``run`` was asked
    to advance but no events remain and at least one process is suspended.
    """


class ProcessInterrupted(SimulationError):
    """Thrown *into* a process generator when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause



# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class SiteDownError(NetworkError):
    """An operation was attempted on a crashed site."""

    def __init__(self, site_id: str) -> None:
        super().__init__(f"site {site_id!r} is down")
        self.site_id = site_id


class UnknownSiteError(NetworkError):
    """A message was addressed to a site id not registered on the network."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine errors."""


class KeyNotFound(StorageError):
    """Read of a key that does not exist and has no default."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} not found")
        self.key = key


class WALError(StorageError):
    """Write-ahead-log invariant violation (bad LSN order, truncated record)."""


class RecoveryError(StorageError):
    """Recovery could not restore a consistent state from the log."""


# ---------------------------------------------------------------------------
# Locking
# ---------------------------------------------------------------------------


class LockError(ReproError):
    """Base class for lock-manager errors."""


class LockNotHeld(LockError):
    """A transaction tried to release/convert a lock it does not hold."""


class DeadlockDetected(LockError):
    """The waits-for graph contains a cycle; the victim must abort.

    ``victim`` names the transaction chosen to abort, ``cycle`` is the list of
    transaction ids forming the cycle in the waits-for graph.
    """

    def __init__(self, victim: str, cycle: list[str]) -> None:
        super().__init__(f"deadlock: victim={victim} cycle={'->'.join(cycle)}")
        self.victim = victim
        self.cycle = cycle


class LockTimeout(LockError):
    """A lock request waited longer than the configured timeout."""


class TwoPhaseViolation(LockError):
    """A transaction attempted to acquire a lock after releasing one (2PL)."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-layer errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted; carries the reason."""

    def __init__(self, txn_id: str, reason: str = "") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class InvalidTransactionState(TransactionError):
    """An operation is illegal in the transaction's current state."""


class SubtransactionRejected(TransactionError):
    """Rule R1 (the ``compatible`` check) rejected spawning a subtransaction.

    ``retriable`` distinguishes rejections that may succeed later from
    incompatibilities that can only be resolved by aborting the global
    transaction (Section 6.2 of the paper).
    """

    def __init__(self, txn_id: str, site_id: str, *, retriable: bool) -> None:
        kind = "retriable" if retriable else "fatal"
        super().__init__(
            f"subtransaction of {txn_id} rejected at {site_id} ({kind})"
        )
        self.txn_id = txn_id
        self.site_id = site_id
        self.retriable = retriable


# ---------------------------------------------------------------------------
# Compensation
# ---------------------------------------------------------------------------


class CompensationError(ReproError):
    """Base class for compensation-layer errors."""


class NotCompensatable(CompensationError):
    """No compensation action is registered for an operation (real action)."""

    def __init__(self, op_name: str, message: str | None = None) -> None:
        super().__init__(
            message or f"operation {op_name!r} is not compensatable"
        )
        self.op_name = op_name


class UnknownAction(NotCompensatable):
    """An operation named an action that is not registered at all.

    An unknown name is a *specification* bug, distinct from a registered
    real action (``inverse=None``) that is legitimately non-compensatable.
    Kept as a :class:`NotCompensatable` subclass so existing callers that
    catch the broader error keep working.
    """

    def __init__(self, op_name: str) -> None:
        super().__init__(
            op_name, f"unknown action {op_name!r}: not in the repertoire"
        )


class PersistenceViolation(CompensationError):
    """A compensating transaction failed permanently.

    Persistence of compensation (Section 3.2) requires that an initiated
    compensation eventually commits; a permanent failure is a bug in the host
    system configuration, not a recoverable condition.
    """


# ---------------------------------------------------------------------------
# Commit protocols
# ---------------------------------------------------------------------------


class CommitProtocolError(ReproError):
    """Base class for commit-protocol errors."""


class ProtocolViolation(CommitProtocolError):
    """A participant or coordinator observed an out-of-protocol message."""


class UnknownScheme(CommitProtocolError):
    """A :class:`~repro.commit.base.CommitScheme` has no registered engine.

    Every enum member must be registered in :mod:`repro.protocols`;
    ``repro lint`` enforces this statically, and :func:`engine_for` raises
    this at runtime for schemes that slipped past it.
    """


# ---------------------------------------------------------------------------
# Model checker
# ---------------------------------------------------------------------------


class CheckError(ReproError):
    """Base class for model-checker errors."""


class StepBudgetExceeded(CheckError):
    """A controlled run exceeded its per-run step budget.

    Either the budget is too small for the scenario or the schedule drove
    the protocol into a livelock — both are worth surfacing, neither should
    hang the exploration.
    """


class ScheduleDivergence(CheckError):
    """A replayed choice vector no longer matches the run's choice points.

    Replay determinism is the checker's foundation: the same seed and
    prefix must reproduce the same candidate sets.  Divergence means
    nondeterminism leaked into the simulation (wall clock, unseeded RNG,
    iteration over an unordered container).
    """


# ---------------------------------------------------------------------------
# Static analysis (repro lint)
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """A static analyzer could not run at all (distinct from a finding).

    Raised when an analyzer's *inputs* are broken — a source file that does
    not parse, or a dispatch declaration that cannot be located — rather
    than when the analyzed code violates a rule.  Findings are data;
    ``AnalysisError`` is a crash.
    """


# ---------------------------------------------------------------------------
# Serialization-graph / correctness layer
# ---------------------------------------------------------------------------


class HistoryError(ReproError):
    """Malformed history (unknown transaction, out-of-order operations)."""


class CorrectnessViolation(ReproError):
    """A checker found a violation of the paper's correctness criterion.

    Carries the offending cycle (list of node labels) when applicable.
    """

    def __init__(self, message: str, cycle: list[str] | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle or []
