"""Structured observability: typed events, spans, streaming metrics.

The measurement foundation of the reproduction.  The paper's claims are all
*temporal* — lock-hold shrinkage, blocking windows, compensation latency —
so every protocol layer emits typed, timestamped events through one
:class:`~repro.obs.events.EventBus` owned by the simulation
:class:`~repro.sim.engine.Environment`:

* :mod:`repro.obs.events` — the event taxonomy (dataclasses with a stable
  schema) and the bus itself (disabled by default: emission sites guard on
  ``bus.enabled``, so an un-observed run pays one attribute check);
* :mod:`repro.obs.spans` — folds the event stream into per-transaction span
  trees (spawn → vote → decision → compensation) with durations and a
  critical-path view;
* :mod:`repro.obs.metrics` — streaming metrics computed incrementally from
  the bus: windowed time-series counters plus fixed-bucket histograms whose
  ``percentile`` replaces the sort-based reference on hot paths;
* :mod:`repro.obs.export` — deterministic JSONL serialization of the stream
  (same seed → byte-identical output);
* :mod:`repro.obs.render` — the human-readable timeline/gantt renderers
  (formerly ``repro.harness.trace``);
* :mod:`repro.obs.hub` — the :class:`Observability` facade a
  :class:`~repro.harness.system.System` owns, backing its ``metrics()``,
  ``timeline()``, ``events()``, and ``spans()`` methods.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, span model, JSONL
schema, and example queries.
"""

from repro.obs.events import Event, EventBus, EventLog
from repro.obs.export import event_to_dict, to_jsonl
from repro.obs.hub import Observability
from repro.obs.metrics import (
    Histogram,
    MetricsReport,
    StreamingMetrics,
    WindowedSeries,
    mean,
    percentile,
    report_from_logs,
)
from repro.obs.spans import Span, build_spans, render_span_tree

__all__ = [
    "Event",
    "EventBus",
    "EventLog",
    "Histogram",
    "MetricsReport",
    "Observability",
    "Span",
    "StreamingMetrics",
    "WindowedSeries",
    "build_spans",
    "event_to_dict",
    "mean",
    "percentile",
    "render_span_tree",
    "report_from_logs",
    "to_jsonl",
]
