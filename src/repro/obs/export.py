"""Deterministic JSONL export of the event stream.

One JSON object per line, in publish (``seq``) order.  Keys are sorted and
separators fixed, and every field is a primitive (the taxonomy guarantees
it), so a run with a fixed seed serializes to byte-identical output —
``repro trace --seed 7`` twice diffs clean.

Schema: every line carries ``kind``, ``ts``, ``seq``, plus the event
class's own fields (tuples serialize as JSON arrays).  See
``docs/OBSERVABILITY.md`` for the per-kind field tables.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Iterable

from repro.obs.events import Event


def event_to_dict(event: Event) -> dict[str, object]:
    """Flatten one event into a JSON-ready dict (``kind`` first)."""
    record: dict[str, object] = {"kind": event.kind}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, tuple):
            value = list(value)
        record[field.name] = value
    return record


def to_jsonl(events: Iterable[Event]) -> str:
    """Serialize events to a JSONL string (one object per line)."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True,
                   separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[Event], handle: IO[str]) -> int:
    """Write events as JSONL to an open text handle; returns line count."""
    count = 0
    for event in events:
        handle.write(json.dumps(event_to_dict(event), sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
        count += 1
    return count
