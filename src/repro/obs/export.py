"""Deterministic JSONL export of the event stream.

One JSON object per line, in publish (``seq``) order.  Keys are sorted and
separators fixed, and every field is a primitive (the taxonomy guarantees
it), so a run with a fixed seed serializes to byte-identical output —
``repro trace --seed 7`` twice diffs clean.

Schema: every line carries ``kind``, ``ts``, ``seq``, plus the event
class's own fields (tuples serialize as JSON arrays).  See
``docs/OBSERVABILITY.md`` for the per-kind field tables.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Iterable

from repro.obs.events import Event


def event_to_dict(event: Event) -> dict[str, object]:
    """Flatten one event into a JSON-ready dict (``kind`` first)."""
    record: dict[str, object] = {"kind": event.kind}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, tuple):
            value = list(value)
        record[field.name] = value
    return record


def _kind_registry() -> dict[str, type[Event]]:
    """Map each event ``kind`` to its dataclass (computed once)."""
    global _REGISTRY
    if _REGISTRY is None:
        registry: dict[str, type[Event]] = {}
        stack: list[type[Event]] = list(Event.__subclasses__())
        while stack:
            cls = stack.pop()
            registry[cls.kind] = cls
            stack.extend(cls.__subclasses__())
        _REGISTRY = registry
    return _REGISTRY


_REGISTRY: dict[str, type[Event]] | None = None


def event_from_dict(record: dict[str, object]) -> Event:
    """Inverse of :func:`event_to_dict`: rebuild the typed event.

    Used by the net backend's metrics path, which reads back the JSONL
    streams the daemons wrote.  JSON arrays return to tuples (the
    taxonomy's only container type) and the bus-stamped ``ts``/``seq``
    are restored verbatim.
    """
    kind = record.get("kind")
    cls = _kind_registry().get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs = {}
    for field in dataclasses.fields(cls):
        if not field.init:
            continue
        value = record[field.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[field.name] = value
    event = cls(**kwargs)
    event.ts = record.get("ts", 0.0)  # type: ignore[assignment]
    event.seq = record.get("seq", -1)  # type: ignore[assignment]
    return event


def read_jsonl(handle: IO[str]) -> Iterable[Event]:
    """Yield events from an open JSONL handle (skips blank lines)."""
    for line in handle:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def to_jsonl(events: Iterable[Event]) -> str:
    """Serialize events to a JSONL string (one object per line)."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True,
                   separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[Event], handle: IO[str]) -> int:
    """Write events as JSONL to an open text handle; returns line count."""
    count = 0
    for event in events:
        handle.write(json.dumps(event_to_dict(event), sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
        count += 1
    return count
