"""Metrics: streaming aggregation from the bus, plus the log-scraping path.

Two ways to produce a :class:`MetricsReport`:

* :func:`report_from_logs` — the original post-hoc aggregation over a
  system's raw logs (lock hold/wait logs, network counters, outcomes).
  Exact, but re-scans every log on each call;
* :class:`StreamingMetrics` — a bus subscriber that folds the event stream
  into the same quantities incrementally: counters, windowed time series,
  and fixed-bucket :class:`Histogram`\\ s whose ``percentile`` is O(buckets)
  instead of the sort-based reference's O(n log n).

Histogram percentiles are approximate (one geometric bucket of relative
error, ~9% at the default resolution); counts, sums, means, and extremes
are exact.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import events as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.system import System


def mean(values: list[float]) -> float:
    """Arithmetic mean; 0.0 for the empty list."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: list[float], p: float) -> float:
    """The ``p``-th percentile (nearest-rank); 0.0 for the empty list.

    The sort-based reference implementation: exact, O(n log n).  Hot paths
    use :meth:`Histogram.percentile` instead.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


class Histogram:
    """Fixed-bucket geometric histogram for non-negative durations.

    Buckets are geometric with ``buckets_per_decade`` per power of ten,
    spanning [``min_value``, ``max_value``); values at or below zero land
    in a dedicated zero bucket, values beyond the span clamp to the edge
    buckets.  ``add`` is O(1); ``percentile`` is O(buckets) and returns the
    geometric midpoint of the selected bucket — at the default resolution
    of 16 buckets per decade the relative error is bounded by
    ``10**(1/32) - 1`` ≈ 7.5%.  Count, sum, mean, min, and max are exact.
    """

    __slots__ = (
        "min_value", "ratio", "_log_ratio", "counts", "zero_count",
        "count", "total", "max", "min",
    )

    def __init__(
        self,
        min_value: float = 1e-3,
        max_value: float = 1e7,
        buckets_per_decade: int = 16,
    ) -> None:
        self.min_value = min_value
        self.ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._log_ratio = math.log(self.ratio)
        n_buckets = int(
            math.ceil(math.log(max_value / min_value) / self._log_ratio)
        )
        self.counts = [0] * n_buckets
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = math.inf

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        if value <= 0.0:
            self.zero_count += 1
            return
        index = int(math.log(value / self.min_value) / self._log_ratio)
        index = max(0, min(len(self.counts) - 1, index))
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        """Exact mean of the observations; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (nearest-rank over buckets)."""
        if not self.count:
            return 0.0
        rank = max(1, min(self.count, math.ceil(p / 100.0 * self.count)))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                lo = self.min_value * self.ratio ** index
                estimate = lo * math.sqrt(self.ratio)
                # Clamp to the exact extremes: the top and bottom buckets
                # would otherwise report midpoints outside the data.
                return max(min(estimate, self.max), self.min)
        return self.max  # pragma: no cover - rank <= count always lands

    def __len__(self) -> int:
        return self.count


class WindowedSeries:
    """A counter bucketed into fixed windows of simulation time.

    ``add(ts, amount)`` accumulates into window ``int(ts // window)``;
    :meth:`rows` returns ``(window_start, value)`` pairs in time order with
    empty windows skipped.  Timestamps arrive monotonically from the bus,
    so insertion order is time order.
    """

    __slots__ = ("window", "_buckets")

    def __init__(self, window: float = 10.0) -> None:
        self.window = window
        self._buckets: dict[int, float] = {}

    def add(self, ts: float, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the window containing ``ts``."""
        index = int(ts // self.window)
        self._buckets[index] = self._buckets.get(index, 0.0) + amount

    def value_at(self, ts: float) -> float:
        """Accumulated value of the window containing ``ts``."""
        return self._buckets.get(int(ts // self.window), 0.0)

    def rows(self) -> list[tuple[float, float]]:
        """``(window_start, value)`` pairs, time-ordered, gaps skipped."""
        return [
            (index * self.window, value)
            for index, value in sorted(self._buckets.items())
        ]

    @property
    def total(self) -> float:
        """Sum across all windows."""
        return sum(self._buckets.values())


@dataclass
class MetricsReport:
    """Aggregated metrics of one run."""

    committed: int = 0
    aborted: int = 0
    mean_latency: float = 0.0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    throughput: float = 0.0
    mean_lock_hold: float = 0.0
    max_lock_hold: float = 0.0
    mean_lock_wait: float = 0.0
    total_lock_wait: float = 0.0
    messages_total: int = 0
    messages_by_type: dict[str, int] = field(default_factory=dict)
    messages_per_txn: float = 0.0
    compensations: int = 0
    compensation_retries: int = 0
    deadlocks: int = 0
    rejections: int = 0
    forced_log_writes: int = 0

    @property
    def abort_rate(self) -> float:
        """Fraction of terminated transactions that aborted."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


class StreamingMetrics:
    """Bus subscriber folding the event stream into metrics incrementally.

    Nothing is re-scanned: every event updates O(1) state.  ``report()``
    materializes a :class:`MetricsReport` from the current counters and
    histograms at any point of the run (the ``repro metrics --watch``
    command samples it between simulation windows).
    """

    def __init__(self, window: float = 10.0) -> None:
        self.committed = 0
        self.aborted = 0
        self.latency = Histogram()
        self.lock_hold = Histogram()
        self.lock_wait = Histogram()
        self.messages: Counter[str] = Counter()
        self.compensations = 0
        self.compensation_retries = 0
        self.deadlocks = 0
        self.rejections = 0
        #: windowed time series sampled by the watch view
        self.commit_series = WindowedSeries(window)
        self.abort_series = WindowedSeries(window)
        self.message_series = WindowedSeries(window)
        self._handlers = {
            ev.TxnTerminated: self._on_txn_end,
            ev.LockGranted: self._on_lock_grant,
            ev.LockReleased: self._on_lock_release,
            ev.MessageSent: self._on_message,
            ev.CompensationFinished: self._on_compensation,
            ev.DeadlockObserved: self._on_deadlock,
            ev.MarkingRejected: self._on_rejection,
        }

    # -- subscriber entry point ---------------------------------------------

    def __call__(self, event: ev.Event) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    # -- per-event folds ----------------------------------------------------

    def _on_txn_end(self, event: ev.TxnTerminated) -> None:
        if event.committed:
            self.committed += 1
            self.commit_series.add(event.ts)
        else:
            self.aborted += 1
            self.abort_series.add(event.ts)
        self.latency.add(event.latency)

    def _on_lock_grant(self, event: ev.LockGranted) -> None:
        self.lock_wait.add(event.waited)

    def _on_lock_release(self, event: ev.LockReleased) -> None:
        self.lock_hold.add(event.held)

    def _on_message(self, event: ev.MessageSent) -> None:
        self.messages[event.msg_type] += 1
        self.message_series.add(event.ts)

    def _on_compensation(self, event: ev.CompensationFinished) -> None:
        self.compensations += 1
        self.compensation_retries += event.retries

    def _on_deadlock(self, event: ev.DeadlockObserved) -> None:
        self.deadlocks += 1

    def _on_rejection(self, event: ev.MarkingRejected) -> None:
        self.rejections += 1

    # -- materialization ----------------------------------------------------

    def report(self, elapsed: float | None = None) -> MetricsReport:
        """Snapshot the current counters into a :class:`MetricsReport`."""
        report = MetricsReport()
        report.committed = self.committed
        report.aborted = self.aborted
        report.mean_latency = self.latency.mean
        report.p50_latency = self.latency.percentile(50)
        report.p99_latency = self.latency.percentile(99)
        if elapsed and elapsed > 0:
            report.throughput = self.committed / elapsed
        report.mean_lock_hold = self.lock_hold.mean
        report.max_lock_hold = self.lock_hold.max
        report.mean_lock_wait = self.lock_wait.mean
        report.total_lock_wait = self.lock_wait.total
        report.messages_total = sum(self.messages.values())
        report.messages_by_type = {
            name: count for name, count in sorted(self.messages.items())
        }
        terminated = self.committed + self.aborted
        if terminated:
            report.messages_per_txn = report.messages_total / terminated
        report.compensations = self.compensations
        report.compensation_retries = self.compensation_retries
        report.deadlocks = self.deadlocks
        report.rejections = self.rejections
        return report


def report_from_logs(
    system: "System", elapsed: float | None = None
) -> MetricsReport:
    """Aggregate a system's raw logs into a :class:`MetricsReport`.

    The post-hoc path: exact (sort-based percentiles), but re-scans the
    lock logs on every call.  :meth:`System.metrics` uses it when the
    event bus is disabled.
    """
    report = MetricsReport()
    outcomes = system.outcomes
    report.committed = sum(1 for o in outcomes if o.committed)
    report.aborted = sum(1 for o in outcomes if not o.committed)
    latencies = [o.latency for o in outcomes]
    report.mean_latency = mean(latencies)
    report.p50_latency = percentile(latencies, 50)
    report.p99_latency = percentile(latencies, 99)
    elapsed = elapsed if elapsed is not None else system.env.now
    if elapsed > 0:
        report.throughput = report.committed / elapsed

    holds: list[float] = []
    waits: list[float] = []
    for site in system.sites.values():
        holds.extend(h.duration for h in site.locks.hold_log)
        waits.extend(w for _, _, w in site.locks.wait_log)
        report.deadlocks += len(site.locks.detector.detected)
        report.forced_log_writes += site.wal.forced_writes
    report.mean_lock_hold = mean(holds)
    report.max_lock_hold = max(holds) if holds else 0.0
    report.mean_lock_wait = mean(waits)
    report.total_lock_wait = sum(waits)

    report.messages_total = system.network.total_sent()
    report.messages_by_type = system.network.counts_by_type()
    if outcomes:
        report.messages_per_txn = report.messages_total / len(outcomes)

    for participant in system.participants.values():
        report.compensations += participant.compensator.stats.completed
        report.compensation_retries += participant.compensator.stats.retries
    report.rejections = system.marking.rejections
    return report
