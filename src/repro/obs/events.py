"""The event taxonomy and the bus.

Every event is a plain dataclass carrying primitive fields only (strings,
numbers, booleans, tuples of strings) so the stream serializes to JSONL
without custom encoders and the schema stays stable.  ``ts`` (simulation
time) and ``seq`` (a global, gap-free sequence number) are stamped by the
bus at publish time; within one run ``seq`` is a total order consistent
with the simulation's own deterministic event ordering, so two runs with
the same seed produce identical streams.

The bus is **disabled by default** and emission sites guard with::

    bus = self.env.bus
    if bus.enabled:
        bus.publish(LockGranted(...))

so an un-observed run pays one attribute load and one branch per would-be
event — nothing is constructed, nothing is stored.

Event kinds (the ``kind`` class attribute, mirrored into JSONL):

========================  =====================================================
``txn.submit``            coordinator started a global transaction
``txn.phase``             coordinator entered a protocol phase (spawn/vote/
                          decision)
``txn.vote``              coordinator recorded one site's vote
``txn.decision``          coordinator force-logged the global decision
``txn.end``               global transaction terminated
``subtxn.start``          participant began executing a subtransaction
``subtxn.exec``           subtransaction executed (holds all its locks)
``subtxn.reject``         rule R1 rejected the spawn
``subtxn.fail``           execution failed (deadlock / lock timeout / abort)
``subtxn.local_commit``   O2PC local commit at vote time (early release)
``subtxn.prepare``        2PL prepare at vote time (locks kept)
``subtxn.decision``       participant applied the global decision
``comp.start``            compensating subtransaction started
``comp.end``              compensating subtransaction committed
``site.crash``            site lost its volatile state
``site.recover``          site restarted from its log
``lock.request``          lock requested (``immediate`` = granted at once)
``lock.grant``            lock granted (``waited`` = block time)
``lock.release``          lock released (``held`` = hold time)
``lock.timeout``          blocked request abandoned by the lock-wait timeout
``lock.deadlock``         deadlock detected; ``victim`` chosen
``net.send``              message handed to the network
``net.deliver``           message delivered to the recipient inbox
``net.drop``              message dropped (``reason`` says why)
``mark.r1``               a marking protocol's R1 check rejected a spawn
``mark.undone``           a site became undone wrt a transaction (rule R2)
``mark.clear``            marks cleared (rule R3/UDUM1, or quiescence)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar


@dataclass(slots=True)
class Event:
    """Base event: ``ts`` and ``seq`` are stamped by the bus on publish."""

    ts: float = field(init=False, default=0.0)
    seq: int = field(init=False, default=-1)
    kind: ClassVar[str] = "event"


# -- transaction / coordinator ---------------------------------------------------


@dataclass(slots=True)
class TxnSubmitted(Event):
    kind: ClassVar[str] = "txn.submit"
    txn_id: str
    sites: tuple[str, ...]


@dataclass(slots=True)
class PhaseEntered(Event):
    kind: ClassVar[str] = "txn.phase"
    txn_id: str
    #: "spawn", "vote", or "decision"
    phase: str


@dataclass(slots=True)
class VoteRecorded(Event):
    kind: ClassVar[str] = "txn.vote"
    txn_id: str
    site_id: str
    vote: str


@dataclass(slots=True)
class DecisionReached(Event):
    kind: ClassVar[str] = "txn.decision"
    txn_id: str
    decision: str


@dataclass(slots=True)
class TxnTerminated(Event):
    kind: ClassVar[str] = "txn.end"
    txn_id: str
    committed: bool
    latency: float
    compensated_sites: tuple[str, ...]


# -- participant -----------------------------------------------------------------


@dataclass(slots=True)
class SubtxnStarted(Event):
    kind: ClassVar[str] = "subtxn.start"
    txn_id: str
    site_id: str


@dataclass(slots=True)
class SubtxnExecuted(Event):
    kind: ClassVar[str] = "subtxn.exec"
    txn_id: str
    site_id: str


@dataclass(slots=True)
class SubtxnRejected(Event):
    kind: ClassVar[str] = "subtxn.reject"
    txn_id: str
    site_id: str
    retriable: bool
    reason: str


@dataclass(slots=True)
class SubtxnFailed(Event):
    kind: ClassVar[str] = "subtxn.fail"
    txn_id: str
    site_id: str
    reason: str


@dataclass(slots=True)
class LocallyCommitted(Event):
    kind: ClassVar[str] = "subtxn.local_commit"
    txn_id: str
    site_id: str


@dataclass(slots=True)
class Prepared(Event):
    kind: ClassVar[str] = "subtxn.prepare"
    txn_id: str
    site_id: str


@dataclass(slots=True)
class DecisionApplied(Event):
    kind: ClassVar[str] = "subtxn.decision"
    txn_id: str
    site_id: str
    decision: str
    compensated: bool


# -- compensation ----------------------------------------------------------------


@dataclass(slots=True)
class CompensationStarted(Event):
    kind: ClassVar[str] = "comp.start"
    txn_id: str
    ct_id: str
    site_id: str


@dataclass(slots=True)
class CompensationFinished(Event):
    kind: ClassVar[str] = "comp.end"
    txn_id: str
    ct_id: str
    site_id: str
    retries: int


# -- site failures / recovery ----------------------------------------------------


@dataclass(slots=True)
class SiteCrashed(Event):
    kind: ClassVar[str] = "site.crash"
    site_id: str


@dataclass(slots=True)
class SiteRecovered(Event):
    kind: ClassVar[str] = "site.recover"
    site_id: str
    in_doubt: tuple[str, ...]
    locally_committed: tuple[str, ...]


# -- locking ---------------------------------------------------------------------


@dataclass(slots=True)
class LockRequested(Event):
    kind: ClassVar[str] = "lock.request"
    site_id: str
    txn_id: str
    key: str
    mode: str
    immediate: bool


@dataclass(slots=True)
class LockGranted(Event):
    kind: ClassVar[str] = "lock.grant"
    site_id: str
    txn_id: str
    key: str
    mode: str
    waited: float


@dataclass(slots=True)
class LockReleased(Event):
    kind: ClassVar[str] = "lock.release"
    site_id: str
    txn_id: str
    key: str
    mode: str
    held: float


@dataclass(slots=True)
class LockTimedOut(Event):
    kind: ClassVar[str] = "lock.timeout"
    site_id: str
    txn_id: str
    key: str
    waited: float


@dataclass(slots=True)
class DeadlockObserved(Event):
    kind: ClassVar[str] = "lock.deadlock"
    site_id: str
    victim: str
    cycle: tuple[str, ...]


# -- network ---------------------------------------------------------------------


@dataclass(slots=True)
class MessageSent(Event):
    kind: ClassVar[str] = "net.send"
    msg_type: str
    sender: str
    recipient: str
    txn_id: str


@dataclass(slots=True)
class MessageDelivered(Event):
    kind: ClassVar[str] = "net.deliver"
    msg_type: str
    sender: str
    recipient: str
    txn_id: str
    latency: float


@dataclass(slots=True)
class MessageDropped(Event):
    kind: ClassVar[str] = "net.drop"
    msg_type: str
    sender: str
    recipient: str
    txn_id: str
    #: "sender_down" | "severed" | "loss" | "recipient_down" |
    #: "severed_in_flight"
    reason: str


# -- marking protocol ------------------------------------------------------------


@dataclass(slots=True)
class MarkingRejected(Event):
    kind: ClassVar[str] = "mark.r1"
    protocol: str
    txn_id: str
    site_id: str
    retriable: bool
    reason: str


@dataclass(slots=True)
class MarkApplied(Event):
    kind: ClassVar[str] = "mark.undone"
    txn_id: str
    site_id: str


@dataclass(slots=True)
class MarkCleared(Event):
    kind: ClassVar[str] = "mark.clear"
    txn_id: str
    #: "UDUM1" (rule R3) or "quiescence"
    rule: str
    enabler: str


# -- the bus ---------------------------------------------------------------------


class EventBus:
    """Synchronous publish/subscribe bus stamped from a simulation clock.

    Disabled by default; while disabled, emission sites skip event
    construction entirely.  Subscribers are called in subscription order,
    synchronously, inside ``publish`` — they must not mutate simulation
    state.
    """

    __slots__ = ("_clock", "_subscribers", "_seq", "enabled")

    def __init__(self, clock: Any = None) -> None:
        #: anything with a ``now`` attribute (the Environment)
        self._clock = clock
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0
        #: emission guard checked by every instrumented layer
        self.enabled = False

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked with every published event."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def enable(self) -> None:
        """Turn emission on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn emission off (subscribers stay registered)."""
        self.enabled = False

    def publish(self, event: Event) -> Event:
        """Stamp ``ts``/``seq`` and fan ``event`` out to subscribers."""
        event.ts = self._clock.now if self._clock is not None else 0.0
        event.seq = self._seq
        self._seq += 1
        for callback in self._subscribers:
            callback(event)
        return event


class EventLog:
    """A subscriber that retains every event, in publish order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[Event]:
        """Events whose ``kind`` matches (exact string)."""
        return [e for e in self.events if e.kind == kind]

    def for_txn(self, txn_id: str) -> list[Event]:
        """Events carrying a ``txn_id`` field equal to ``txn_id``."""
        return [
            e for e in self.events
            if getattr(e, "txn_id", None) == txn_id
        ]
