"""The :class:`Observability` facade a :class:`System` owns.

Bundles the bus with its two standing subscribers — the retained
:class:`~repro.obs.events.EventLog` and the incremental
:class:`~repro.obs.metrics.StreamingMetrics` — behind enable/disable, and
exposes the derived views (events, spans, JSONL, report).  Disabled by
default: :meth:`enable` attaches the subscribers and flips the bus's
emission guard on.
"""

from __future__ import annotations

from repro.obs.events import Event, EventBus, EventLog
from repro.obs.export import to_jsonl
from repro.obs.metrics import MetricsReport, StreamingMetrics
from repro.obs.spans import Span, build_spans


class Observability:
    """Event recording and streaming metrics over one bus."""

    def __init__(self, bus: EventBus, window: float = 10.0) -> None:
        self.bus = bus
        self.log = EventLog()
        self.stream = StreamingMetrics(window=window)

    @property
    def enabled(self) -> bool:
        """True while the bus is emitting into this hub."""
        return self.bus.enabled

    def enable(self) -> None:
        """Attach the recorder and streaming metrics; start emission."""
        self.bus.subscribe(self.log)
        self.bus.subscribe(self.stream)
        self.bus.enable()

    def disable(self) -> None:
        """Stop emission (recorded events are kept)."""
        self.bus.disable()

    # -- derived views -------------------------------------------------------

    def events(self) -> list[Event]:
        """Every recorded event, in publish order."""
        return list(self.log.events)

    def spans(self) -> dict[str, Span]:
        """Per-transaction span trees folded from the recorded events."""
        return build_spans(self.log.events)

    def jsonl(self) -> str:
        """The recorded stream as deterministic JSONL."""
        return to_jsonl(self.log.events)

    def report(self, elapsed: float | None = None) -> MetricsReport:
        """Streaming-metrics snapshot as a :class:`MetricsReport`."""
        return self.stream.report(elapsed)
