"""Text timelines: render what a run did, for humans.

Renderers over a finished (or running) :class:`~repro.harness.system.System`
— the implementations behind :meth:`System.timeline`,
:meth:`System.lock_gantt`, and :meth:`System.marking_audit` (the
``repro.harness.trace`` module keeps the old function names as deprecation
shims):

* :func:`render_timeline` — one line per global transaction: submit →
  decision → termination, with outcome and compensation annotations;
* :func:`render_lock_gantt` — per site, one line per (transaction, key)
  hold interval, drawn as a bar over a discretized time axis.  The
  O2PC-vs-2PL story is visible at a glance: O2PC bars end at the vote, 2PL
  bars extend through the decision round (or an entire coordinator outage);
* :func:`render_marking_audit` — chronology of marking transitions and
  UDUM/quiescence clearings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.system import System


def _bar(start: float, end: float, t0: float, t1: float, width: int) -> str:
    """Render one [start, end] interval on a [t0, t1] axis of ``width``."""
    span = max(t1 - t0, 1e-9)
    left = int((start - t0) / span * width)
    right = max(left + 1, int((end - t0) / span * width))
    left = max(0, min(width - 1, left))
    right = max(1, min(width, right))
    return " " * left + "#" * (right - left) + " " * (width - right)


def render_timeline(system: "System", width: int = 50) -> str:
    """One line per terminated global transaction."""
    outcomes = sorted(system.outcomes, key=lambda o: o.start_time)
    if not outcomes:
        return "(no transactions)"
    t0 = min(o.start_time for o in outcomes)
    t1 = max(o.end_time for o in outcomes)
    lines = [
        f"transactions  t={t0:.1f} .. {t1:.1f}  "
        f"(axis width {width} chars)"
    ]
    for outcome in outcomes:
        verdict = "COMMIT" if outcome.committed else "ABORT "
        extras = []
        if outcome.no_votes:
            extras.append(f"NO@{','.join(outcome.no_votes)}")
        if outcome.compensated_sites:
            extras.append(f"CT@{','.join(outcome.compensated_sites)}")
        if outcome.rejections:
            extras.append(f"rej x{outcome.rejections}")
        bar = _bar(outcome.start_time, outcome.end_time, t0, t1, width)
        lines.append(
            f"{outcome.txn_id:>5} |{bar}| {verdict} "
            f"{' '.join(extras)}".rstrip()
        )
    return "\n".join(lines)


def render_lock_gantt(
    system: "System", site_id: str, width: int = 50,
    keys: list[str] | None = None,
) -> str:
    """Per-(transaction, key) lock-hold bars at one site."""
    site = system.sites[site_id]
    holds = [
        h for h in site.locks.hold_log
        if keys is None or h.key in keys
    ]
    if not holds:
        return f"{site_id}: (no lock holds)"
    t0 = min(h.granted_at for h in holds)
    t1 = max(h.released_at for h in holds)
    lines = [f"locks at {site_id}  t={t0:.1f} .. {t1:.1f}"]
    for hold in sorted(holds, key=lambda h: (h.granted_at, h.key)):
        bar = _bar(hold.granted_at, hold.released_at, t0, t1, width)
        lines.append(
            f"{hold.txn_id:>5} {hold.mode.value} {hold.key:<6} |{bar}| "
            f"{hold.duration:.1f}"
        )
    return "\n".join(lines)


def render_marking_audit(system: "System") -> str:
    """Chronology of marking transitions and clearings across all sites."""
    directory = system.marking.directory
    lines = ["marking transitions (site: txn old --event--> new)"]
    for site_id in sorted(directory.machines):
        for txn, old, event, new in directory.machines[site_id].transitions:
            lines.append(
                f"  {site_id}: {txn} {old.value} --{event.value}--> {new.value}"
            )
    if directory.udum_log:
        lines.append("UDUM clearings (txn <- enabling witness)")
        lines.extend(f"  {t} <- {w}" for t, w in directory.udum_log)
    if directory.quiescence_log:
        lines.append("quiescence clearings (txn <- last blocker)")
        lines.extend(f"  {t} <- {w}" for t, w in directory.quiescence_log)
    return "\n".join(lines)
