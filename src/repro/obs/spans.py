"""Span trees: fold the event stream into per-transaction timelines.

A :class:`Span` is a named ``[start, end]`` interval with children.  For
every global transaction the builder produces::

    txn:T1                          (submit -> termination)
      phase:spawn                   (spawn phase)
        subtxn@S1                   (per-site execution)
        subtxn@S2
      phase:vote                    (VOTE_REQ -> decision)
        vote@S1                     (point span: vote recorded)
        vote@S2
      phase:decision                (decision -> last ACK)
        comp@S1                     (compensation, aborts only)

``Span.duration`` and :meth:`Span.critical_path` give the temporal view
the paper's claims are about: the lock-hold window is the subtxn span
under O2PC versus subtxn-through-decision under 2PL; the compensation
latency is the comp span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import events as ev


@dataclass
class Span:
    """One named interval in a transaction's timeline."""

    name: str
    #: "txn", "phase", "subtxn", "vote", "comp"
    kind: str
    txn_id: str
    start: float
    end: float
    site_id: str | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start

    def critical_path(self) -> list["Span"]:
        """The chain of spans that determines this span's end time.

        Walks from this span into the child ending last (ties broken by
        start time, later first), recursively — the path a latency
        optimization must shorten to shorten the whole transaction.
        """
        path = [self]
        if self.children:
            last = max(self.children, key=lambda s: (s.end, s.start))
            path.extend(last.critical_path())
        return path

    def find(self, kind: str) -> list["Span"]:
        """All descendant spans (including self) of ``kind``."""
        found = [self] if self.kind == kind else []
        for child in self.children:
            found.extend(child.find(kind))
        return found

    def render(self, indent: int = 0) -> str:
        """One-line-per-span textual tree."""
        site = f"@{self.site_id}" if self.site_id else ""
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        line = (
            f"{'  ' * indent}{self.name}{site} "
            f"[{self.start:.1f} .. {self.end:.1f}] "
            f"dur={self.duration:.1f}"
        )
        if extras:
            line += f" {extras}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def render_span_tree(span: Span) -> str:
    """Textual rendering of one span tree."""
    return span.render()


class _TxnSpans:
    """Builder state for one global transaction."""

    def __init__(self, root: Span) -> None:
        self.root = root
        self.phases: list[Span] = []
        self.open_subtxns: dict[str, Span] = {}
        self.open_comps: dict[str, Span] = {}

    @property
    def current_phase(self) -> Span | None:
        return self.phases[-1] if self.phases else None

    def enter_phase(self, name: str, ts: float) -> None:
        if self.phases:
            self.phases[-1].end = max(self.phases[-1].end, ts)
        span = Span(
            name=f"phase:{name}", kind="phase", txn_id=self.root.txn_id,
            start=ts, end=ts,
        )
        self.phases.append(span)
        self.root.children.append(span)

    def attach(self, span: Span) -> None:
        parent = self.current_phase or self.root
        parent.children.append(span)

    def close(self, ts: float) -> None:
        for span in self.open_subtxns.values():
            span.end = max(span.end, ts)
            span.attrs.setdefault("outcome", "unfinished")
        for span in self.open_comps.values():
            span.end = max(span.end, ts)
            span.attrs.setdefault("outcome", "unfinished")
        if self.phases:
            self.phases[-1].end = max(self.phases[-1].end, ts)
        self.root.end = max(self.root.end, ts)


def build_spans(events: Iterable[ev.Event]) -> dict[str, Span]:
    """Fold an event stream into one span tree per global transaction.

    Tolerant of partial streams: spans whose end events never arrived are
    closed at their last observed timestamp and tagged
    ``outcome=unfinished``.
    """
    builders: dict[str, _TxnSpans] = {}

    def builder_for(txn_id: str, ts: float) -> _TxnSpans:
        if txn_id not in builders:
            root = Span(
                name=f"txn:{txn_id}", kind="txn", txn_id=txn_id,
                start=ts, end=ts,
            )
            builders[txn_id] = _TxnSpans(root)
        return builders[txn_id]

    for event in events:
        if isinstance(event, ev.TxnSubmitted):
            builder = builder_for(event.txn_id, event.ts)
            builder.root.attrs["sites"] = list(event.sites)
        elif isinstance(event, ev.PhaseEntered):
            builder_for(event.txn_id, event.ts).enter_phase(
                event.phase, event.ts
            )
        elif isinstance(event, ev.SubtxnStarted):
            builder = builder_for(event.txn_id, event.ts)
            span = Span(
                name="subtxn", kind="subtxn", txn_id=event.txn_id,
                site_id=event.site_id, start=event.ts, end=event.ts,
            )
            builder.open_subtxns[event.site_id] = span
            builder.attach(span)
        elif isinstance(event, (ev.SubtxnExecuted, ev.SubtxnFailed)):
            builder = builder_for(event.txn_id, event.ts)
            span = builder.open_subtxns.pop(event.site_id, None)
            if span is not None:
                span.end = event.ts
                span.attrs["outcome"] = (
                    "executed" if isinstance(event, ev.SubtxnExecuted)
                    else f"failed:{event.reason}"
                )
        elif isinstance(event, ev.SubtxnRejected):
            builder = builder_for(event.txn_id, event.ts)
            builder.attach(Span(
                name="reject", kind="subtxn", txn_id=event.txn_id,
                site_id=event.site_id, start=event.ts, end=event.ts,
                attrs={"outcome": "rejected", "reason": event.reason},
            ))
        elif isinstance(event, ev.VoteRecorded):
            builder = builder_for(event.txn_id, event.ts)
            builder.attach(Span(
                name="vote", kind="vote", txn_id=event.txn_id,
                site_id=event.site_id, start=event.ts, end=event.ts,
                attrs={"vote": event.vote},
            ))
        elif isinstance(event, ev.DecisionReached):
            builder = builder_for(event.txn_id, event.ts)
            builder.root.attrs["decision"] = event.decision
        elif isinstance(event, ev.CompensationStarted):
            builder = builder_for(event.txn_id, event.ts)
            span = Span(
                name="comp", kind="comp", txn_id=event.txn_id,
                site_id=event.site_id, start=event.ts, end=event.ts,
                attrs={"ct_id": event.ct_id},
            )
            builder.open_comps[event.site_id] = span
            builder.attach(span)
        elif isinstance(event, ev.CompensationFinished):
            builder = builder_for(event.txn_id, event.ts)
            span = builder.open_comps.pop(event.site_id, None)
            if span is not None:
                span.end = event.ts
                span.attrs["outcome"] = "compensated"
                span.attrs["retries"] = event.retries
        elif isinstance(event, ev.TxnTerminated):
            builder = builder_for(event.txn_id, event.ts)
            builder.root.attrs["committed"] = event.committed
            builder.close(event.ts)

    return {txn_id: b.root for txn_id, b in sorted(builders.items())}
