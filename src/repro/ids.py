"""Identifier types for transactions, sites, and compensating transactions.

The paper's notation is kept: a global transaction ``T_i`` decomposes into
local subtransactions ``T_ij`` (one per site ``S_j``), and has a compensating
transaction ``CT_i`` composed of compensating subtransactions ``CT_ij``.

Identifiers are plain strings with structured helpers, so they remain cheap to
hash, sort, and print, and histories stay human-readable in test output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


# Prefixes used to build printable ids.
GLOBAL_PREFIX = "T"
LOCAL_PREFIX = "L"
COMPENSATION_PREFIX = "CT"
SITE_PREFIX = "S"


def global_txn_id(n: int) -> str:
    """Return the id of the *n*-th global transaction, e.g. ``T3``."""
    return f"{GLOBAL_PREFIX}{n}"


def local_txn_id(n: int) -> str:
    """Return the id of the *n*-th independent local transaction, e.g. ``L7``."""
    return f"{LOCAL_PREFIX}{n}"


def site_id(n: int) -> str:
    """Return the id of the *n*-th site, e.g. ``S2``."""
    return f"{SITE_PREFIX}{n}"


def compensation_id(txn_id: str) -> str:
    """Return the id of the compensating transaction for ``txn_id``.

    >>> compensation_id("T3")
    'CT3'
    """
    return f"{COMPENSATION_PREFIX}{txn_id[len(GLOBAL_PREFIX):]}" if txn_id.startswith(
        GLOBAL_PREFIX
    ) else f"{COMPENSATION_PREFIX}({txn_id})"


def is_compensation_id(txn_id: str) -> bool:
    """True if ``txn_id`` names a compensating transaction (``CT...``)."""
    return txn_id.startswith(COMPENSATION_PREFIX)


def compensated_txn_id(ct_id: str) -> str:
    """Inverse of :func:`compensation_id`: the forward transaction's id.

    >>> compensated_txn_id("CT3")
    'T3'
    """
    if not is_compensation_id(ct_id):
        raise ValueError(f"{ct_id!r} is not a compensating-transaction id")
    body = ct_id[len(COMPENSATION_PREFIX):]
    if body.startswith("(") and body.endswith(")"):
        return body[1:-1]
    return f"{GLOBAL_PREFIX}{body}"


def subtransaction_id(txn_id: str, site: str) -> str:
    """Return the id of ``txn_id``'s subtransaction at ``site``.

    >>> subtransaction_id("T1", "S2")
    'T1@S2'
    """
    return f"{txn_id}@{site}"


def split_subtransaction_id(sub_id: str) -> tuple[str, str]:
    """Split a subtransaction id into (transaction id, site id)."""
    txn, _, site = sub_id.rpartition("@")
    if not txn or not site:
        raise ValueError(f"{sub_id!r} is not a subtransaction id")
    return txn, site


@dataclass
class IdGenerator:
    """Monotonic id factory for one simulation run.

    Keeping generation centralized makes runs deterministic and ids dense,
    which in turn keeps histories and serialization graphs readable.
    """

    _global: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))
    _local: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))
    _site: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))

    def next_global(self) -> str:
        """Return a fresh global-transaction id."""
        return global_txn_id(next(self._global))

    def next_local(self) -> str:
        """Return a fresh local-transaction id."""
        return local_txn_id(next(self._local))

    def next_site(self) -> str:
        """Return a fresh site id."""
        return site_id(next(self._site))
