"""Building and running compensating subtransactions.

When an O2PC participant receives an ABORT decision for a transaction it
locally committed, it invokes the compensating subtransaction ``CT_ij``
(Section 2).  This executor:

* builds the compensation's operations — semantic inverses recorded during
  forward execution (restricted model) when available, otherwise before-image
  restoring writes from the WAL (generic model).  Either way ``CT_i`` writes
  at least every item ``T_i`` wrote, satisfying Theorem 2's precondition;
* runs the compensation **as a local transaction** under local strict 2PL
  (Section 3.2) — it acquires its own locks, because the forward
  transaction's locks were released at vote time and other transactions may
  have touched the data since;
* enforces *persistence of compensation*: a compensation chosen as a
  deadlock victim (or otherwise transiently failed) is retried until it
  commits.  It cannot be aborted permanently — initiating it parallels the
  irreversible decision to abort the forward transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DeadlockDetected, PersistenceViolation
from repro.ids import compensation_id
from repro.obs.events import CompensationFinished, CompensationStarted
from repro.txn.operations import Op, WriteOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (Site imports us)
    from repro.txn.site import Site


@dataclass
class CompensationStats:
    """Counters for the metrics layer."""

    started: int = 0
    completed: int = 0
    retries: int = 0
    #: simulation times: (ct_id, start, end)
    log: list[tuple[str, float, float]] = field(default_factory=list)


class CompensationExecutor:
    """Builds and persistently executes compensating subtransactions."""

    #: retries beyond this count indicate a livelock in the host setup —
    #: persistence of compensation is violated rather than looping forever.
    MAX_RETRIES = 1000

    def __init__(
        self, site: "Site", retry_delay: float = 1.0,
        lock_marks: bool = False,
    ) -> None:
        self.site = site
        self.retry_delay = retry_delay
        #: when the marking set is a lockable database item, rule R2's
        #: update of ``sitemarks.k`` is the compensation's last write —
        #: the access pattern behind the Section 6.2 deadlock remark
        self.lock_marks = lock_marks
        self.stats = CompensationStats()

    # -- building --------------------------------------------------------------

    def build_ops(self, txn_id: str) -> list[Op]:
        """Operations of ``CT_ij`` for the locally-committed ``txn_id``.

        Uses the transaction's recorded *undo program* — one step per
        forward update, in reverse order: the semantic inverse where one is
        registered, a before-image write otherwise.  This is correct even
        when semantic and generic updates interleave on the same key
        (undoing only the newest semantic step would leave the key wrong).
        After a crash the volatile program is gone; the WAL's before-images
        are the (generic-model) fallback — oldest update first per key, so
        each key is restored to its true pre-transaction value.
        """
        ltm = self.site.ltm
        program = ltm.undo_program(txn_id)
        ops: list[Op]
        if program:
            ops = list(program)
        else:
            # Oldest update first: its before-image is the key's true
            # pre-transaction value (a newest-first dedup would restore an
            # intermediate value for multiply-updated keys).
            ops = []
            seen: set[str] = set()
            for key, before in reversed(ltm.forward_before_images(txn_id)):
                if key in seen:
                    continue
                seen.add(key)
                ops.append(WriteOp(key=key, value=before))
        if self.lock_marks:
            from repro.core.marks import MARKS_KEY

            # Rule R2 as the last operation of CT_ik.
            ops.append(WriteOp(key=MARKS_KEY, value=txn_id))
        return ops

    # -- running ----------------------------------------------------------------

    def run(self, txn_id: str):
        """Run ``CT_ij`` to completion (generator; run inside a process).

        Returns the compensation id.  Retries on deadlock victimization
        (persistence of compensation); raises
        :class:`~repro.errors.PersistenceViolation` only after an
        implausible number of attempts, to surface configuration bugs.
        """
        ct_id = compensation_id(txn_id)
        ops = self.build_ops(txn_id)
        ltm = self.site.ltm
        self.stats.started += 1
        started_at = self.site.env.now
        bus = self.site.env.bus
        if bus.enabled:
            bus.publish(CompensationStarted(
                txn_id=txn_id, ct_id=ct_id, site_id=self.site.site_id,
            ))

        attempts = 0
        while True:
            attempts += 1
            if attempts > self.MAX_RETRIES:
                raise PersistenceViolation(
                    f"{ct_id} failed {self.MAX_RETRIES} times at "
                    f"{self.site.site_id}"
                )
            try:
                ltm.begin(ct_id)
                yield from ltm.run_ops(ct_id, ops)
                ltm.commit(ct_id)
                break
            except DeadlockDetected:
                # The compensation lost a deadlock: undo this attempt and
                # retry after a back-off.  (abort_local expunges the failed
                # attempt from the history, so only the successful run
                # appears in the SG.)
                ltm.abort_local(ct_id)
                ltm.status.pop(ct_id, None)
                self.stats.retries += 1
                yield self.site.env.timeout(self.retry_delay)

        ltm.mark_compensated(txn_id)
        self.stats.completed += 1
        self.stats.log.append((ct_id, started_at, self.site.env.now))
        if bus.enabled:
            bus.publish(CompensationFinished(
                txn_id=txn_id, ct_id=ct_id, site_id=self.site.site_id,
                retries=attempts - 1,
            ))
        return ct_id
