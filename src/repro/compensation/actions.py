"""Semantic-operation registry for the restricted model.

In the restricted model each subtransaction performs a semantically coherent
task drawn from a well-defined repertoire (Section 3.1), which makes
compensation a matter of supplying the counter-task in advance — "e.g., a
DELETE as compensation for an INSERT subtransaction" (Section 3.2).

A :class:`SemanticAction` bundles the forward application function with the
inverse constructor.  The inverse receives the forward call's parameters and
the before-value, and returns the parameters of the compensating call — so
inverses can be *semantic* (withdraw the amount that was deposited) rather
than state restorations.

Operations registered with ``inverse=None`` are **real actions** in the
paper's sense (firing a missile, dispensing cash): not compensatable.
Attempting to build their inverse raises
:class:`~repro.errors.NotCompensatable`; O2PC participants must treat
subtransactions containing them as lock-holding (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NotCompensatable, UnknownAction
from repro.txn.operations import SemanticOp

#: forward application: (current value, **params) -> new value
ApplyFn = Callable[..., Any]
#: inverse constructor: (params, before value) -> (inverse name, inverse params)
InverseFn = Callable[[dict[str, Any], Any], tuple[str, dict[str, Any]]]


@dataclass(frozen=True)
class SemanticAction:
    """One entry in a site's operation repertoire.

    Beyond the executable ``apply``/``inverse`` pair, an action carries
    *declarative* metadata that the static analyzer (``repro lint``)
    consumes without executing anything:

    * ``inverse_name`` — the repertoire name the ``inverse`` constructor
      produces.  The analyzer checks the declared name is registered, that
      inverse chains stay inside the registry, and (when a workload
      supplies concrete params) that the constructor really produces it.
    * ``commutes_with`` — names of repertoire actions this action commutes
      with on the same data item (include the action itself when it
      self-commutes).  The analyzer takes the symmetric closure and uses
      the matrix to warn about workloads that can violate the A1–A4
      stratification preconditions (Section 5).
    """

    name: str
    apply: ApplyFn
    #: None marks a real (non-compensatable) action
    inverse: InverseFn | None = None
    #: declared name of the action ``inverse`` constructs (None iff real)
    inverse_name: str | None = None
    #: declared commutativity on the same key (symmetric closure is taken)
    commutes_with: frozenset[str] = frozenset()

    @property
    def compensatable(self) -> bool:
        """True when a semantic inverse is registered."""
        return self.inverse is not None


class ActionRegistry:
    """Name → :class:`SemanticAction` mapping (one per site, shareable)."""

    def __init__(self) -> None:
        self._actions: dict[str, SemanticAction] = {}

    def register(self, action: SemanticAction) -> None:
        """Register an action; re-registration replaces."""
        self._actions[action.name] = action

    def get(self, name: str) -> SemanticAction:
        """Look up an action by name.

        Raises :class:`~repro.errors.UnknownAction` (a
        :class:`NotCompensatable` subclass) for unregistered names — an
        unknown name is a specification bug, not a real action.
        """
        try:
            return self._actions[name]
        except KeyError:
            raise UnknownAction(name) from None

    def known(self, name: str) -> bool:
        """True if ``name`` is registered."""
        return name in self._actions

    def names(self) -> list[str]:
        """All registered action names, sorted (deterministic iteration)."""
        return sorted(self._actions)

    def actions(self) -> list[SemanticAction]:
        """All registered actions in name order (deterministic iteration)."""
        return [self._actions[name] for name in self.names()]

    def apply(self, op: SemanticOp, current: Any) -> Any:
        """Apply ``op`` to the current value, returning the new value."""
        return self.get(op.name).apply(current, **op.params)

    def invert(self, op: SemanticOp, before: Any) -> SemanticOp:
        """Build the compensating operation for a forward ``op``.

        Raises :class:`NotCompensatable` for real actions.
        """
        action = self.get(op.name)
        if action.inverse is None:
            raise NotCompensatable(op.name)
        inv_name, inv_params = action.inverse(dict(op.params), before)
        return SemanticOp(name=inv_name, key=op.key, params=inv_params)

    def is_compensatable(self, op: SemanticOp) -> bool:
        """True when ``op``'s action has a registered inverse."""
        return self.known(op.name) and self.get(op.name).compensatable


#: the standard repertoire's additive group: each of these adds or subtracts
#: a delta, so any pair (including an action with itself) commutes on a key
ADDITIVE_ACTIONS = frozenset({
    "cancel", "decrement", "deposit", "dispense", "increment", "reserve",
    "withdraw",
})


def standard_registry() -> ActionRegistry:
    """The built-in repertoire used by examples, tests, and workloads.

    ===========  ================================  =====================
    operation    effect                            compensation
    ===========  ================================  =====================
    deposit      value += amount                   withdraw(amount)
    withdraw     value -= amount                   deposit(amount)
    increment    value += 1                        decrement()
    decrement    value -= 1                        increment()
    insert       create item with given value      delete()
    delete       remove item                       insert(old value)
    set          value = new                       set(old value)
    reserve      reserved += count                 cancel(count)
    cancel       reserved -= count                 reserve(count)
    dispense     value -= amount (cash leaves      — real action, not
                 the machine)                        compensatable
    ===========  ================================  =====================
    """
    registry = ActionRegistry()

    registry.register(SemanticAction(
        name="deposit",
        apply=lambda current, amount: (current or 0) + amount,
        inverse=lambda params, before: ("withdraw", {"amount": params["amount"]}),
        inverse_name="withdraw",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="withdraw",
        apply=lambda current, amount: (current or 0) - amount,
        inverse=lambda params, before: ("deposit", {"amount": params["amount"]}),
        inverse_name="deposit",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="increment",
        apply=lambda current: (current or 0) + 1,
        inverse=lambda params, before: ("decrement", {}),
        inverse_name="decrement",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="decrement",
        apply=lambda current: (current or 0) - 1,
        inverse=lambda params, before: ("increment", {}),
        inverse_name="increment",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="insert",
        apply=lambda current, value: value,
        inverse=lambda params, before: ("delete", {}),
        inverse_name="delete",
    ))
    registry.register(SemanticAction(
        name="delete",
        apply=lambda current: None,
        inverse=lambda params, before: ("insert", {"value": before}),
        inverse_name="insert",
    ))
    registry.register(SemanticAction(
        name="set",
        apply=lambda current, value: value,
        inverse=lambda params, before: ("set", {"value": before}),
        inverse_name="set",
    ))
    registry.register(SemanticAction(
        name="reserve",
        apply=lambda current, count=1: (current or 0) + count,
        inverse=lambda params, before: (
            "cancel", {"count": params.get("count", 1)}
        ),
        inverse_name="cancel",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="cancel",
        apply=lambda current, count=1: (current or 0) - count,
        inverse=lambda params, before: (
            "reserve", {"count": params.get("count", 1)}
        ),
        inverse_name="reserve",
        commutes_with=ADDITIVE_ACTIONS,
    ))
    registry.register(SemanticAction(
        name="dispense",
        apply=lambda current, amount: (current or 0) - amount,
        inverse=None,  # cash left the machine: a real action
        commutes_with=ADDITIVE_ACTIONS,
    ))
    return registry
