"""Compensating transactions (Sections 3.2 and 4).

* :mod:`repro.compensation.actions` — the semantic-operation registry for the
  restricted model: each operation knows how to apply itself and how to build
  its inverse (``deposit`` ↔ ``withdraw``, ``insert`` ↔ ``delete`` ...).
* :mod:`repro.compensation.executor` — builds and runs compensating
  subtransactions: semantic inverses in the restricted model, before-image
  restoration in the generic model; executed as ordinary local transactions
  under local strict 2PL, with *persistence of compensation* (retry until
  commit — an initiated compensation must complete).
"""

from repro.compensation.actions import (
    ADDITIVE_ACTIONS,
    ActionRegistry,
    SemanticAction,
    standard_registry,
)
from repro.compensation.executor import CompensationExecutor

__all__ = [
    "ADDITIVE_ACTIONS",
    "ActionRegistry",
    "CompensationExecutor",
    "SemanticAction",
    "standard_registry",
]
