"""Cluster configuration: the site-list file shared by daemons and clients.

A cluster file is plain JSON:

.. code-block:: json

    {
        "sites": {
            "S1": {"host": "127.0.0.1", "port": 7101},
            "S2": {"host": "127.0.0.1", "port": 7102}
        },
        "data_dir": "/var/lib/repro"
    }

Every daemon and every client reads the *same* file, so site identity and
addressing have a single source of truth (the pattern of the exemplar
socketed-TM systems: one config, N processes).  ``data_dir`` holds one WAL
file per site (``<data_dir>/<site_id>.wal``) — the durable state that
``repro serve`` restart recovery replays.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SiteSpec:
    """Network address of one site daemon."""

    site_id: str
    host: str = "127.0.0.1"
    port: int = 0

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) pair for socket calls."""
        return (self.host, self.port)


@dataclass
class ClusterConfig:
    """The full cluster: site addresses plus the durable-state directory."""

    sites: dict[str, SiteSpec] = field(default_factory=dict)
    data_dir: str = "."

    def site(self, site_id: str) -> SiteSpec:
        """The spec of one site (raises KeyError with the known ids)."""
        try:
            return self.sites[site_id]
        except KeyError:
            known = ", ".join(sorted(self.sites)) or "(none)"
            raise KeyError(
                f"site {site_id!r} not in cluster config (sites: {known})"
            ) from None

    def wal_path(self, site_id: str) -> str:
        """Path of one site's durable write-ahead log file."""
        return os.path.join(self.data_dir, f"{site_id}.wal")

    def acceptor_path(self, acceptor_id: str) -> str:
        """Path of one co-hosted acceptor's durable state file."""
        return os.path.join(self.data_dir, f"{acceptor_id}.json")

    def events_path(self, site_id: str) -> str:
        """Path of one site's observability event stream (JSONL)."""
        return os.path.join(self.data_dir, f"{site_id}.events.jsonl")

    def route_site(self, endpoint_id: str) -> str | None:
        """The site daemon hosting ``endpoint_id``, or None.

        Sites host themselves.  Paxos acceptors are co-hosted one per
        daemon: ``acc.<n>`` lives with the n-th site (sorted order), so a
        cluster of N daemons is its own 2F+1 = N acceptor ensemble.
        """
        if endpoint_id in self.sites:
            return endpoint_id
        if endpoint_id.startswith("acc."):
            try:
                n = int(endpoint_id[4:])
            except ValueError:
                return None
            ids = self.site_ids
            if 1 <= n <= len(ids):
                return ids[n - 1]
        return None

    def acceptor_hosted_by(self, site_id: str) -> str | None:
        """The acceptor id co-hosted at ``site_id`` (inverse of
        :meth:`route_site`)."""
        ids = self.site_ids
        if site_id in self.sites:
            return f"acc.{ids.index(site_id) + 1}"
        return None

    @property
    def site_ids(self) -> list[str]:
        """All configured site ids, sorted."""
        return sorted(self.sites)

    def to_json(self) -> dict[str, object]:
        """JSON form (inverse of :func:`cluster_from_json`)."""
        return {
            "sites": {
                spec.site_id: {"host": spec.host, "port": spec.port}
                for spec in self.sites.values()
            },
            "data_dir": self.data_dir,
        }

    def save(self, path: str) -> None:
        """Write the cluster file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def cluster_from_json(data: dict[str, object]) -> ClusterConfig:
    """Build a :class:`ClusterConfig` from parsed JSON."""
    sites_raw = data.get("sites")
    if not isinstance(sites_raw, dict) or not sites_raw:
        raise ValueError("cluster config needs a non-empty 'sites' object")
    sites: dict[str, SiteSpec] = {}
    for site_id, spec in sites_raw.items():
        if not isinstance(spec, dict) or "port" not in spec:
            raise ValueError(f"site {site_id!r} needs at least a 'port'")
        sites[site_id] = SiteSpec(
            site_id=site_id,
            host=str(spec.get("host", "127.0.0.1")),
            port=int(spec["port"]),
        )
    return ClusterConfig(
        sites=sites, data_dir=str(data.get("data_dir", ".")),
    )


def load_cluster(path: str) -> ClusterConfig:
    """Read and validate a cluster file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: cluster config must be a JSON object")
    return cluster_from_json(data)


def local_cluster(
    site_ids: list[str], data_dir: str, host: str = "127.0.0.1",
) -> ClusterConfig:
    """A localhost cluster with OS-assigned free ports (test helper)."""
    import socket

    sites: dict[str, SiteSpec] = {}
    probes = []
    try:
        for site_id in site_ids:
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.bind((host, 0))
            probes.append(probe)
            sites[site_id] = SiteSpec(
                site_id=site_id, host=host, port=probe.getsockname()[1],
            )
    finally:
        for probe in probes:
            probe.close()
    return ClusterConfig(sites=sites, data_dir=data_dir)
