"""The networked runtime: real per-site daemons over asyncio TCP.

This package is the production transport backend
(``SystemConfig(backend="net")``): it runs the *same*
:class:`~repro.commit.coordinator.Coordinator` and
:class:`~repro.commit.participant.Participant` state machines as the
simulation, but over real sockets, real time, and a file-backed
write-ahead log that survives ``kill -9``.

Pieces:

* :mod:`repro.rt.wire` — length-prefixed JSON framing of
  :class:`~repro.net.message.Message` objects (operations, vote policies,
  and payloads round-trip);
* :mod:`repro.rt.config` — the site-list cluster configuration file;
* :mod:`repro.rt.pump` — drives a discrete-event
  :class:`~repro.sim.engine.Environment` against the asyncio wall clock,
  so generator-based protocol code runs unmodified;
* :mod:`repro.rt.transport` — :class:`TcpTransport`, the asyncio
  implementation of the :class:`~repro.net.transport.Transport` protocol;
* :mod:`repro.rt.daemon` — :class:`SiteDaemon`, one site's Participant as
  a network service with WAL-backed restart recovery;
* :mod:`repro.rt.client` — :class:`NetClient`, a coordinator driver;
* :mod:`repro.rt.system` — :class:`NetSystem`, the ``backend="net"``
  implementation of the System API.

See ``docs/RUNTIME.md`` for the daemon lifecycle and the recovery
walk-through.
"""

from repro.rt.client import NetClient
from repro.rt.config import ClusterConfig, SiteSpec, load_cluster
from repro.rt.daemon import SiteDaemon
from repro.rt.system import NetSystem
from repro.rt.transport import TcpTransport

__all__ = [
    "ClusterConfig",
    "NetClient",
    "NetSystem",
    "SiteDaemon",
    "SiteSpec",
    "TcpTransport",
    "load_cluster",
]
