"""NetClient: drive global transactions against a live cluster.

The client is the coordinator's host: it runs the unmodified
:class:`~repro.commit.coordinator.Coordinator` state machine on a local
pumped environment, registering the coordinator endpoint
(``coord.<txn>``) on its :class:`~repro.rt.transport.TcpTransport`.
Daemons learn the return route from the first frame and send
SUBTXN_ACK/VOTE/ACK replies back over the same connection.

``failures=None`` is deliberate: over real sockets nobody hands the
coordinator an oracle of site liveness — a dead participant is exactly a
missed timeout, which is the paper's failure model and what the protocol
already handles.

Each :meth:`run_transaction` call runs one event loop (dial, execute,
hang up), which is the natural shape for the ``repro client`` CLI.
:meth:`run_pipelined` is the throughput shape: a bounded window of
concurrent coordinator sessions multiplexed on one pump and one set of
per-site connections.  Demultiplexing is free — every coordinator
registers its own ``coord.<txn>`` endpoint, so inbound frames route by
transaction id — and the unmodified engines run as concurrent
simulation processes exactly like the sim's concurrent-coordinator
bench.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.core.marks import MarkingDirectory
from repro.core.protocols import MarkingProtocol
from repro.harness.system import PROTOCOLS
from repro.net.message import Message, MsgType
from repro.protocols import acceptor_ids, engine_for
from repro.rt.config import ClusterConfig
from repro.rt.pump import RealtimePump
from repro.rt.transport import TcpTransport
from repro.rt.wire import read_frame, write_frame
from repro.sim.engine import Environment
from repro.txn.transaction import GlobalTxnSpec, TxnOutcome


class NetClient:
    """Coordinator driver for the networked backend."""

    #: message types the client accepts from the wire — must mirror the
    #: union of every coordinator-side engine's ``_COLLECTS`` (checked by
    #: ``repro lint``'s dispatch rule, same contract as
    #: ``SiteDaemon._INBOUND``)
    _INBOUND = (
        MsgType.SUBTXN_ACK, MsgType.VOTE, MsgType.ACK,
        # Paxos Commit: promises/accepteds flow to the coordinator when it
        # acts as recovery leader, and accepteds carry the votes.
        MsgType.PAXOS_PROMISE, MsgType.PAXOS_ACCEPTED,
    )

    def __init__(
        self,
        cluster: ClusterConfig,
        scheme: CommitScheme = CommitScheme.O2PC,
        protocol: str | MarkingProtocol = "none",
        commit: CommitConfig | None = None,
        time_scale: float = 0.01,
    ) -> None:
        self.cluster = cluster
        self.scheme = scheme
        self.commit = commit or CommitConfig()
        self.time_scale = time_scale
        self.env = Environment()
        self.pump = RealtimePump(self.env, time_scale=time_scale)
        self.transport = TcpTransport(self.env, cluster, self.pump)
        if isinstance(protocol, MarkingProtocol):
            self.marking: MarkingProtocol = protocol
        else:
            self.marking = PROTOCOLS[protocol](directory=MarkingDirectory())
        self.engine = engine_for(scheme)
        self.acceptors: tuple[str, ...] = (
            acceptor_ids(len(cluster.site_ids))
            if self.engine.uses_acceptors else ()
        )
        self.outcomes: list[TxnOutcome] = []
        #: wall-clock seconds per submitted transaction (completion order)
        self.latencies: list[float] = []
        #: decisions some site never acknowledged: txn -> (decision,
        #: pending sites).  A daemon that was down for the decision round
        #: restarts *in doubt* and blocks until someone re-sends — that
        #: someone is :meth:`resend_pending`.
        self.pending_decisions: dict[str, tuple[str, list[str]]] = {}

    # -- running transactions ------------------------------------------------

    async def submit(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Run one global transaction (the pump must already be running)."""
        started = time.perf_counter()
        coordinator = self.engine.coordinator(
            env=self.env,
            network=self.transport,
            spec=spec,
            scheme=self.scheme,
            marking=self.marking,
            config=self.commit,
            failures=None,
            acceptors=self.acceptors,
        )
        proc = self.env.process(
            coordinator.run(), name=f"coordinator:{spec.txn_id}"
        )
        outcome: TxnOutcome = await self.pump.wait_for(proc)
        self.outcomes.append(outcome)
        self.latencies.append(time.perf_counter() - started)
        if coordinator.decision_log:
            pending = [
                s for s in coordinator.decision_sites
                if s not in coordinator.decision_acks
            ]
            if pending:
                self.pending_decisions[spec.txn_id] = (
                    coordinator.decision_log[-1], pending,
                )
        # The coordinator endpoint is done; late frames for it drop as
        # unknown_endpoint instead of piling into a dead inbox.
        self.transport.unregister(coordinator.endpoint)
        return outcome

    async def _with_pump(self, body: Any) -> Any:
        """Run ``body()`` with the pump running; tear both down after."""
        pump_task = asyncio.get_running_loop().create_task(self.pump.run())
        try:
            return await body()
        finally:
            self.pump.stop()
            try:
                await pump_task
            except asyncio.CancelledError:
                pass
            await self.transport.close()

    async def run_session(
        self, specs: list[GlobalTxnSpec]
    ) -> list[TxnOutcome]:
        """Run transactions sequentially under one pump/loop."""

        async def body() -> list[TxnOutcome]:
            return [await self.submit(spec) for spec in specs]

        return await self._with_pump(body)

    async def run_pipelined(
        self, specs: list[GlobalTxnSpec], sessions: int = 16,
    ) -> list[TxnOutcome]:
        """Run transactions through a bounded window of concurrent sessions.

        Up to ``sessions`` coordinators are in flight at once, all
        multiplexed on this client's pump and per-site connections; the
        window keeps a burst of specs from opening thousands of
        simultaneous coordinator processes.  Outcomes return in ``specs``
        order (:attr:`outcomes` keeps completion order).
        """
        if sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {sessions}")
        window = asyncio.Semaphore(sessions)
        results: list[TxnOutcome | None] = [None] * len(specs)

        async def one(index: int, spec: GlobalTxnSpec) -> None:
            async with window:
                results[index] = await self.submit(spec)

        async def body() -> list[TxnOutcome]:
            await asyncio.gather(
                *(one(i, spec) for i, spec in enumerate(specs))
            )
            return [outcome for outcome in results if outcome is not None]

        return await self._with_pump(body)

    def run_transaction(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Blocking convenience wrapper: one transaction, one event loop."""
        return asyncio.run(self.run_session([spec]))[0]

    def run_transactions(
        self, specs: list[GlobalTxnSpec], sessions: int = 1,
    ) -> list[TxnOutcome]:
        """Blocking wrapper: serial (``sessions=1``) or pipelined batch."""
        if sessions <= 1:
            return asyncio.run(self.run_session(specs))
        return asyncio.run(self.run_pipelined(specs, sessions=sessions))

    # -- decision retransmission ---------------------------------------------

    def _resend_one(
        self, txn_id: str, decision: str, pending: list[str],
    ) -> Any:
        """Re-send one logged decision; returns the still-unacked sites."""
        endpoint = f"coord.{txn_id}"
        inbox = self.transport.register(endpoint)
        for site_id in pending:
            self.transport.send(Message(
                msg_type=MsgType.DECISION,
                sender=endpoint,
                recipient=site_id,
                txn_id=txn_id,
                payload={"decision": decision},
            ))
        acked: set[str] = set()
        deadline = self.env.now + self.commit.ack_timeout
        while len(acked) < len(pending):
            remaining = deadline - self.env.now
            if remaining <= 0:
                break
            get = inbox.get()
            if get.triggered:
                msg = yield get
            else:
                timeout = self.env.timeout(remaining)
                yield self.env.any_of([get, timeout])
                if not get.triggered:
                    inbox.cancel_get(get)
                    break
                msg = get.value
            if msg.msg_type is MsgType.ACK and msg.sender in pending:
                acked.add(msg.sender)
        return sorted(set(pending) - acked)

    async def resend_session(self) -> dict[str, list[str]]:
        """Re-send every pending decision (the pump must be running).

        The client half of the 2PC termination protocol over real sockets:
        a daemon that was down for the decision round restarted *in doubt*
        and blocks (holding its write locks) until the decision reaches it.
        Returns {txn: sites still unacked}; fully acknowledged transactions
        leave :attr:`pending_decisions`.
        """
        results: dict[str, list[str]] = {}
        for txn_id in sorted(self.pending_decisions):
            decision, pending = self.pending_decisions[txn_id]
            proc = self.env.process(
                self._resend_one(txn_id, decision, list(pending)),
                name=f"resend:{txn_id}",
            )
            still: list[str] = await self.pump.wait_for(proc)
            if still:
                self.pending_decisions[txn_id] = (decision, still)
            else:
                del self.pending_decisions[txn_id]
            results[txn_id] = still
        return results

    def resend_pending(self) -> dict[str, list[str]]:
        """Blocking wrapper for :meth:`resend_session` (own event loop)."""
        return asyncio.run(self._with_pump(self.resend_session))


# -- admin helpers (status / shutdown frames) ---------------------------------

async def _admin_roundtrip(
    cluster: ClusterConfig, site_id: str, cmd: str, **extra: Any,
) -> dict[str, Any] | None:
    spec = cluster.site(site_id)
    reader, writer = await asyncio.open_connection(*spec.address)
    try:
        await write_frame(writer, {"kind": "admin", "cmd": cmd, **extra})
        reply = await read_frame(reader)
    finally:
        writer.close()
    if reply is None:
        return None
    return reply.get("reply")


def site_status(
    cluster: ClusterConfig, site_id: str,
) -> dict[str, Any] | None:
    """Fetch one daemon's status snapshot (``repro client --status``)."""
    return asyncio.run(_admin_roundtrip(cluster, site_id, "status"))


def site_read(
    cluster: ClusterConfig, site_id: str, key: str,
) -> Any:
    """Read one key's committed value from a live daemon's store."""
    reply = asyncio.run(_admin_roundtrip(cluster, site_id, "read", key=key))
    return None if reply is None else reply.get("value")


def site_shutdown(
    cluster: ClusterConfig, site_id: str,
) -> dict[str, Any] | None:
    """Ask one daemon to shut down cleanly."""
    return asyncio.run(_admin_roundtrip(cluster, site_id, "shutdown"))
