"""NetClient: drive global transactions against a live cluster.

The client is the coordinator's host: it runs the unmodified
:class:`~repro.commit.coordinator.Coordinator` state machine on a local
pumped environment, registering the coordinator endpoint
(``coord.<txn>``) on its :class:`~repro.rt.transport.TcpTransport`.
Daemons learn the return route from the first frame and send
SUBTXN_ACK/VOTE/ACK replies back over the same connection.

``failures=None`` is deliberate: over real sockets nobody hands the
coordinator an oracle of site liveness — a dead participant is exactly a
missed timeout, which is the paper's failure model and what the protocol
already handles.

Each :meth:`run_transaction` call runs one event loop (dial, execute,
hang up), which is the natural shape for the ``repro client`` CLI; the
async surface (:meth:`submit`) is there for tests that multiplex.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.coordinator import Coordinator
from repro.core.marks import MarkingDirectory
from repro.core.protocols import MarkingProtocol
from repro.harness.system import PROTOCOLS
from repro.net.message import MsgType
from repro.rt.config import ClusterConfig
from repro.rt.pump import RealtimePump
from repro.rt.transport import TcpTransport
from repro.rt.wire import read_frame, write_frame
from repro.sim.engine import Environment
from repro.txn.transaction import GlobalTxnSpec, TxnOutcome


class NetClient:
    """Coordinator driver for the networked backend."""

    #: message types the client accepts from the wire — must mirror
    #: ``Coordinator._COLLECTS`` (checked by ``repro lint``'s dispatch
    #: rule, same contract as ``SiteDaemon._INBOUND``)
    _INBOUND = (MsgType.SUBTXN_ACK, MsgType.VOTE, MsgType.ACK)

    def __init__(
        self,
        cluster: ClusterConfig,
        scheme: CommitScheme = CommitScheme.O2PC,
        protocol: str | MarkingProtocol = "none",
        commit: CommitConfig | None = None,
        time_scale: float = 0.01,
    ) -> None:
        self.cluster = cluster
        self.scheme = scheme
        self.commit = commit or CommitConfig()
        self.time_scale = time_scale
        self.env = Environment()
        self.pump = RealtimePump(self.env, time_scale=time_scale)
        self.transport = TcpTransport(self.env, cluster, self.pump)
        if isinstance(protocol, MarkingProtocol):
            self.marking: MarkingProtocol = protocol
        else:
            self.marking = PROTOCOLS[protocol](directory=MarkingDirectory())
        self.outcomes: list[TxnOutcome] = []

    # -- running transactions ------------------------------------------------

    async def submit(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Run one global transaction (the pump must already be running)."""
        coordinator = Coordinator(
            env=self.env,
            network=self.transport,
            spec=spec,
            scheme=self.scheme,
            marking=self.marking,
            config=self.commit,
            failures=None,
        )
        proc = self.env.process(
            coordinator.run(), name=f"coordinator:{spec.txn_id}"
        )
        outcome: TxnOutcome = await self.pump.wait_for(proc)
        self.outcomes.append(outcome)
        return outcome

    async def run_session(
        self, specs: list[GlobalTxnSpec]
    ) -> list[TxnOutcome]:
        """Run transactions sequentially under one pump/loop."""
        pump_task = asyncio.get_running_loop().create_task(self.pump.run())
        try:
            return [await self.submit(spec) for spec in specs]
        finally:
            self.pump.stop()
            try:
                await pump_task
            except asyncio.CancelledError:
                pass
            await self.transport.close()

    def run_transaction(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Blocking convenience wrapper: one transaction, one event loop."""
        return asyncio.run(self.run_session([spec]))[0]


# -- admin helpers (status / shutdown frames) ---------------------------------

async def _admin_roundtrip(
    cluster: ClusterConfig, site_id: str, cmd: str, **extra: Any,
) -> dict[str, Any] | None:
    spec = cluster.site(site_id)
    reader, writer = await asyncio.open_connection(*spec.address)
    try:
        await write_frame(writer, {"kind": "admin", "cmd": cmd, **extra})
        reply = await read_frame(reader)
    finally:
        writer.close()
    if reply is None:
        return None
    return reply.get("reply")


def site_status(
    cluster: ClusterConfig, site_id: str,
) -> dict[str, Any] | None:
    """Fetch one daemon's status snapshot (``repro client --status``)."""
    return asyncio.run(_admin_roundtrip(cluster, site_id, "status"))


def site_read(
    cluster: ClusterConfig, site_id: str, key: str,
) -> Any:
    """Read one key's committed value from a live daemon's store."""
    reply = asyncio.run(_admin_roundtrip(cluster, site_id, "read", key=key))
    return None if reply is None else reply.get("value")


def site_shutdown(
    cluster: ClusterConfig, site_id: str,
) -> dict[str, Any] | None:
    """Ask one daemon to shut down cleanly."""
    return asyncio.run(_admin_roundtrip(cluster, site_id, "shutdown"))
