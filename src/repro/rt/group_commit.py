"""WAL group commit: coalesce concurrent force points into shared fsyncs.

The durability contract of a 2PC participant is per-record: a force
point's log record (PREPARE before a YES vote, COMMIT/ABORT before the
ACK) must be on stable storage before any message that *reveals* it
leaves the site.  PR 6 satisfied that with one ``fsync`` per force
point; under pipelined load the disk head, not the protocol, becomes
the bottleneck — Gray & Lamport cost commit protocols in stable writes
for exactly this reason.

This module implements the classical fix.  The daemon's WAL runs in
``group_commit`` mode (forced appends are buffered, not fsynced), and
every outbound protocol frame passes :meth:`GroupCommitFlusher.barrier`
before it reaches the socket — the transport's durability gate.  The
first waiter becomes the *group leader*: it optionally holds the flush
open for a short adaptive window so force points from other
concurrently-committing transactions land in the same group, then
issues ONE fsync covering every record appended so far and wakes all
waiters.  A record is therefore still acknowledged only after its
covering fsync; what changed is how many acknowledgements one fsync
covers.

The hold window adapts to the offered load: it grows (up to
``max_hold_s``) while groups actually coalesce more than one force
point, and decays to zero under serial traffic so an idle cluster pays
no added commit latency.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.storage.wal import WriteAheadLog


class GroupCommitFlusher:
    """First-waiter-flushes fsync coalescing for one WAL."""

    def __init__(
        self,
        wal: WriteAheadLog,
        *,
        max_hold_s: float = 0.004,
        min_hold_s: float = 0.0005,
    ) -> None:
        self.wal = wal
        self.max_hold_s = max_hold_s
        self.min_hold_s = min_hold_s
        #: current adaptive hold (0.0 = flush immediately)
        self.hold_s = 0.0
        self._leader: Any = None  # the in-flight group's future
        #: fsync groups issued through the barrier
        self.groups = 0
        #: force points those groups covered (>= groups when coalescing)
        self.forces_covered = 0

    async def barrier(self) -> None:
        """Return once every force point appended so far is on disk.

        Safe to call from any number of tasks; only one of them runs the
        fsync per group.  No-op when the WAL has nothing to sync.
        """
        while self.wal.needs_sync:
            leader = self._leader
            if leader is not None:
                # A group is already in flight.  Its fsync may or may not
                # cover records appended after its hold began, so re-check
                # ``needs_sync`` after it completes rather than assume.
                await leader
                continue
            loop = asyncio.get_running_loop()
            self._leader = future = loop.create_future()
            try:
                if self.hold_s > 0:
                    await asyncio.sleep(self.hold_s)
                # sync() and the wake-up below run without yielding to the
                # loop, so no force point can slip between them unseen.
                # This is THE designated fsync site: every other force
                # point coalesces behind this barrier instead of blocking.
                covered = self.wal.sync()  # lint: allow-blocking
                self.groups += 1
                self.forces_covered += covered
                self._adapt(covered)
            finally:
                self._leader = None
                future.set_result(None)

    def _adapt(self, covered: int) -> None:
        """Grow the hold while it pays for itself, decay it when it stops."""
        if covered > 1:
            self.hold_s = min(
                self.max_hold_s, max(self.min_hold_s, self.hold_s * 2.0)
            )
        else:
            self.hold_s /= 2.0
            if self.hold_s < self.min_hold_s:
                self.hold_s = 0.0
