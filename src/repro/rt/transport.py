"""TcpTransport: the asyncio socket implementation of ``Transport``.

One transport serves one process — a site daemon (which also listens) or a
client (which only dials out).  Endpoints registered locally get inboxes on
the process's simulation environment; everything else is reached over TCP
using the cluster's site list:

* messages to a configured site are sent over a per-site outbound
  connection (dialed on demand, redialed once after a failure);
* messages to a non-site endpoint (a coordinator, e.g. ``coord.T1``) are
  sent over the connection that endpoint last used to reach us — the
  return-route table every socketed TM keeps, learned from inbound frames.

Failure semantics match the simulated :class:`~repro.net.network.Network`
by contract (see :mod:`repro.net.transport`): an unreachable recipient —
connection refused (daemon down, the crash case) or reset mid-flight (the
severed-link case) — makes the message *dropped and counted*, never an
exception in the sender's protocol logic.  The sender finds out by
timeout, exactly as in the simulation and exactly as the paper's failure
model demands.

The same :class:`~repro.obs.events` message events are published on the
environment's bus (when enabled), so traces and metrics work identically
on both backends.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from typing import Any, Awaitable, Callable

from repro.errors import UnknownSiteError
from repro.net.message import Message, MsgType
from repro.obs.events import MessageDelivered, MessageDropped, MessageSent
from repro.rt.config import ClusterConfig
from repro.rt.pump import RealtimePump
from repro.rt.wire import (
    message_from_json,
    message_to_json,
    read_frame,
    write_frame,
)
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.store import Store

#: admin frames are handled by a host-installed coroutine: (body, writer)
AdminHandler = Callable[[dict[str, Any], Any], Awaitable[None]]


class _PeerLink:
    """One outbound connection to a configured site daemon."""

    def __init__(self, writer: Any, reader_task: Any) -> None:
        self.writer = writer
        self.reader_task = reader_task

    @property
    def usable(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def close(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
            try:
                await self.reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self.reader_task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None


class TcpTransport:
    """Length-prefixed message transport over asyncio TCP sockets."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterConfig,
        pump: RealtimePump,
        local_site: str | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.pump = pump
        #: the site this process hosts (None for a pure client)
        self.local_site = local_site
        self._inboxes: dict[str, Store] = {}
        self._links: dict[str, _PeerLink] = {}
        #: learned return routes: endpoint id -> stream writer
        self._routes: dict[str, Any] = {}
        self._server: Any = None
        self._conn_tasks: set[Any] = set()
        self._send_tasks: set[Any] = set()
        #: host hook for admin frames (status/shutdown); unset drops them
        self.admin_handler: AdminHandler | None = None
        # -- counters, same shape as Network's (metrics + conformance) --
        self.sent: Counter[MsgType] = Counter()
        self.delivered: Counter[MsgType] = Counter()
        self.dropped: Counter[MsgType] = Counter()

    # -- Transport surface ---------------------------------------------------

    def register(self, endpoint_id: str) -> Store:
        """Create (or return) the local inbox for ``endpoint_id``."""
        if endpoint_id not in self._inboxes:
            self._inboxes[endpoint_id] = Store(
                self.env, name=f"inbox:{endpoint_id}"
            )
        return self._inboxes[endpoint_id]

    def inbox(self, endpoint_id: str) -> Store:
        """The inbox of a locally registered endpoint."""
        try:
            return self._inboxes[endpoint_id]
        except KeyError:
            raise UnknownSiteError(
                f"endpoint {endpoint_id!r} not registered locally"
            ) from None

    def receive(self, endpoint_id: str) -> Event:
        """Event yielding the next message for a local endpoint."""
        return self.inbox(endpoint_id).get()

    def send(self, message: Message) -> None:
        """Send ``message``; remote delivery happens on the event loop.

        Called from protocol code running inside the pump, so an event
        loop is guaranteed to be running.
        """
        message.send_time = self.env.now
        self.sent[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageSent(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
            ))
        if message.recipient in self._inboxes:
            self._deliver_local(message)
            return
        task = asyncio.get_running_loop().create_task(
            self._send_remote(message)
        )
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    # -- local delivery ------------------------------------------------------

    def _deliver_local(self, message: Message) -> None:
        message.deliver_time = self.env.now
        self._inboxes[message.recipient].put(message)
        self.delivered[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDelivered(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                latency=self.env.now - message.send_time,
            ))
        self.pump.kick()

    def _drop(self, message: Message, reason: str) -> None:
        self.dropped[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDropped(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                reason=reason,
            ))

    # -- remote delivery -----------------------------------------------------

    async def _send_remote(self, message: Message) -> None:
        writer = await self._writer_for(message.recipient)
        if writer is None:
            # Same bucket as the simulation's recipient_down/severed drops.
            self._drop(message, "unreachable")
            return
        try:
            await write_frame(writer, message_to_json(message))
        except (ConnectionError, OSError):
            # Connection reset while the frame was in flight: the TCP
            # analogue of the simulated severed-in-flight drop.
            self._drop(message, "connection_reset")
            link = self._links.get(message.recipient)
            if link is not None and link.writer is writer:
                await link.close()
                self._links.pop(message.recipient, None)

    async def _writer_for(self, endpoint_id: str) -> Any:
        # Co-hosted endpoints (Paxos acceptors) route to their daemon.
        host_site = self.cluster.route_site(endpoint_id)
        if host_site is not None:
            link = self._links.get(host_site)
            if link is None or not link.usable:
                link = await self._dial(host_site)
                if link is None:
                    return None
                self._links[host_site] = link
            return link.writer
        writer = self._routes.get(endpoint_id)
        if writer is not None and not writer.is_closing():
            return writer
        return None

    async def _dial(self, site_id: str) -> _PeerLink | None:
        spec = self.cluster.site(site_id)
        try:
            reader, writer = await asyncio.open_connection(*spec.address)
        except (ConnectionError, OSError):
            return None
        task = asyncio.get_running_loop().create_task(
            self._read_loop(reader, writer)
        )
        link = _PeerLink(writer, task)

        def on_peer_gone(_task: Any) -> None:
            # EOF / reset from the peer: retire the link so the next send
            # re-dials (and, if the daemon is really down, counts a drop)
            # instead of writing into a dead socket.
            if self._links.get(site_id) is link:
                self._links.pop(site_id, None)
            if link.writer is not None:
                link.writer.close()
                link.writer = None

        task.add_done_callback(on_peer_gone)
        return link

    # -- inbound -------------------------------------------------------------

    async def serve(self) -> None:
        """Start listening on the local site's configured address."""
        assert self.local_site is not None, "pure clients do not listen"
        spec = self.cluster.site(self.local_site)
        self._server = await asyncio.start_server(
            self._on_connection, spec.host, spec.port,
        )

    async def _on_connection(self, reader: Any, writer: Any) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._read_loop(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancellation: complete quietly so the streams
            # machinery does not log the cancelled handler task.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()

    async def _read_loop(self, reader: Any, writer: Any) -> None:
        """Shared frame loop for inbound connections and dialed links."""
        while True:
            try:
                body = await read_frame(reader)
            except Exception:
                return
            if body is None:
                return
            kind = body.get("kind")
            if kind == "msg":
                message = message_from_json(body)
                # Learn the return route: replies to this sender go back
                # over this connection.
                self._routes[message.sender] = writer
                if message.recipient in self._inboxes:
                    self._deliver_local(message)
                else:
                    self._drop(message, "unknown_endpoint")
            elif kind == "admin" and self.admin_handler is not None:
                await self.admin_handler(body, writer)

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Close the server, every link, and cancel in-flight sends."""
        for task in list(self._send_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._links.values()):
            await link.close()
        self._links.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._routes.clear()

    # -- accounting (same shape as Network) ----------------------------------

    def total_sent(self) -> int:
        """Total messages handed to the transport."""
        return sum(self.sent.values())

    def counts_by_type(self) -> dict[str, int]:
        """Sent-message counts keyed by message-type name."""
        return {
            t.value: n
            for t, n in sorted(self.sent.items(), key=lambda kv: kv[0].value)
        }
