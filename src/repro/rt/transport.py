"""TcpTransport: the asyncio socket implementation of ``Transport``.

One transport serves one process — a site daemon (which also listens) or a
client (which only dials out).  Endpoints registered locally get inboxes on
the process's simulation environment; everything else is reached over TCP
using the cluster's site list:

* messages to a configured site are sent over a per-site outbound
  connection (dialed on demand, redialed under capped exponential
  backoff with jitter after failures — see :mod:`repro.rt.backoff`);
* messages to a non-site endpoint (a coordinator, e.g. ``coord.T1``) are
  sent over the connection that endpoint last used to reach us — the
  return-route table every socketed TM keeps, learned from inbound frames.

Outbound traffic is *coalesced*: ``send()`` only enqueues, and a single
flush task drains the queue once the pump yields, packing every message
bound for the same peer connection into one multi-frame batch payload —
one ``writev``-shaped syscall per peer per drain instead of one task and
one syscall per message.  Before anything touches a socket the flush
awaits the host's :attr:`~TcpTransport.durability_gate` (the daemon's WAL
group-commit barrier), which is what lets the WAL defer its fsyncs: no
frame can reveal a force point that is not yet on disk.

Failure semantics match the simulated :class:`~repro.net.network.Network`
by contract (see :mod:`repro.net.transport`): an unreachable recipient —
connection refused (daemon down, the crash case) or reset mid-flight (the
severed-link case) — makes the message *dropped and counted*, never an
exception in the sender's protocol logic.  The sender finds out by
timeout, exactly as in the simulation and exactly as the paper's failure
model demands.

The same :class:`~repro.obs.events` message events are published on the
environment's bus (when enabled), so traces and metrics work identically
on both backends.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from typing import Any, Awaitable, Callable

from repro.errors import UnknownSiteError
from repro.net.message import Message, MsgType
from repro.obs.events import MessageDelivered, MessageDropped, MessageSent
from repro.rt.backoff import RedialPolicy
from repro.rt.config import ClusterConfig
from repro.rt.pump import RealtimePump
from repro.rt.wire import (
    encode_batch,
    message_from_json,
    message_to_json,
    read_frame,
    unbatch,
)
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.store import Store

#: admin frames are handled by a host-installed coroutine: (body, writer)
AdminHandler = Callable[[dict[str, Any], Any], Awaitable[None]]


class _PeerLink:
    """One outbound connection to a configured site daemon."""

    def __init__(self, writer: Any, reader_task: Any) -> None:
        self.writer = writer
        self.reader_task = reader_task

    @property
    def usable(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()

    async def close(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
            try:
                await self.reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self.reader_task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None


class TcpTransport:
    """Length-prefixed message transport over asyncio TCP sockets."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterConfig,
        pump: RealtimePump,
        local_site: str | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.pump = pump
        #: the site this process hosts (None for a pure client)
        self.local_site = local_site
        self._inboxes: dict[str, Store] = {}
        self._links: dict[str, _PeerLink] = {}
        #: learned return routes: endpoint id -> stream writer
        self._routes: dict[str, Any] = {}
        self._server: Any = None
        self._conn_tasks: set[Any] = set()
        #: messages awaiting the next outbound flush (coalescing queue)
        self._outbound: list[Message] = []
        self._flush_task: Any = None
        #: host hook awaited before outbound frames hit the socket; the
        #: daemon installs its WAL group-commit barrier here so no frame
        #: can acknowledge a force point before its covering fsync
        self.durability_gate: Callable[[], Awaitable[None]] | None = None
        #: redial schedule for dead peer sites (capped exponential + jitter)
        self.redial = RedialPolicy(local_site or "client")
        #: host hook for admin frames (status/shutdown); unset drops them
        self.admin_handler: AdminHandler | None = None
        # -- counters, same shape as Network's (metrics + conformance) --
        self.sent: Counter[MsgType] = Counter()
        self.delivered: Counter[MsgType] = Counter()
        self.dropped: Counter[MsgType] = Counter()
        # -- wire-level accounting (batching effectiveness) --
        #: connect attempts (the backoff tests pin this)
        self.dials = 0
        #: frames written to sockets (each one syscall's worth)
        self.frames_sent = 0
        #: protocol messages carried inside those frames
        self.messages_framed = 0

    # -- Transport surface ---------------------------------------------------

    def register(self, endpoint_id: str) -> Store:
        """Create (or return) the local inbox for ``endpoint_id``."""
        if endpoint_id not in self._inboxes:
            self._inboxes[endpoint_id] = Store(
                self.env, name=f"inbox:{endpoint_id}"
            )
        return self._inboxes[endpoint_id]

    def inbox(self, endpoint_id: str) -> Store:
        """The inbox of a locally registered endpoint."""
        try:
            return self._inboxes[endpoint_id]
        except KeyError:
            raise UnknownSiteError(
                f"endpoint {endpoint_id!r} not registered locally"
            ) from None

    def receive(self, endpoint_id: str) -> Event:
        """Event yielding the next message for a local endpoint."""
        return self.inbox(endpoint_id).get()

    def unregister(self, endpoint_id: str) -> None:
        """Drop a finished endpoint's inbox (a completed coordinator).

        Pipelined clients run thousands of coordinators per connection;
        without this the inbox table grows one dead Store per transaction.
        Late frames for the endpoint fall into the ``unknown_endpoint``
        drop bucket, same as any other unaddressed message.
        """
        self._inboxes.pop(endpoint_id, None)

    def send(self, message: Message) -> None:
        """Send ``message``; remote delivery happens on the event loop.

        Called from protocol code running inside the pump, so an event
        loop is guaranteed to be running.  Remote messages are queued and
        coalesced: the flush task drains the queue once the pump yields,
        so everything produced by one drain shares syscalls.
        """
        message.send_time = self.env.now
        self.sent[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageSent(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
            ))
        if message.recipient in self._inboxes:
            self._deliver_local(message)
            return
        self._outbound.append(message)
        if self._flush_task is None:
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush_outbound()
            )

    # -- local delivery ------------------------------------------------------

    def _deliver_local(self, message: Message) -> None:
        message.deliver_time = self.env.now
        self._inboxes[message.recipient].put(message)
        self.delivered[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDelivered(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                latency=self.env.now - message.send_time,
            ))
        self.pump.kick()

    def _drop(self, message: Message, reason: str) -> None:
        self.dropped[message.msg_type] += 1
        bus = self.env.bus
        if bus.enabled:
            bus.publish(MessageDropped(
                msg_type=message.msg_type.value, sender=message.sender,
                recipient=message.recipient, txn_id=message.txn_id,
                reason=reason,
            ))

    # -- remote delivery -----------------------------------------------------

    async def _flush_outbound(self) -> None:
        """Drain the coalescing queue: one batch payload per peer.

        Runs as the single outbound task.  Each pass first awaits the
        durability gate (group commit: every force point appended before
        these messages were queued gets its covering fsync), then snapshots
        the queue, resolves a writer per message, and writes one
        multi-frame batch per distinct connection.  Messages with no
        usable route fall into the same ``unreachable``/``connection_reset``
        drop buckets as before — coalescing changes the syscall count,
        not the failure semantics.
        """
        try:
            while self._outbound:
                if self.durability_gate is not None:
                    await self.durability_gate()
                batch = self._outbound
                self._outbound = []
                by_writer: dict[int, tuple[Any, list[Message]]] = {}
                for message in batch:
                    writer = await self._writer_for(message.recipient)
                    if writer is None:
                        # Same bucket as the sim's recipient_down drops.
                        self._drop(message, "unreachable")
                        continue
                    by_writer.setdefault(
                        id(writer), (writer, [])
                    )[1].append(message)
                for writer, messages in by_writer.values():
                    frames = encode_batch(
                        [message_to_json(m) for m in messages]
                    )
                    try:
                        for frame in frames:
                            writer.write(frame)
                        await writer.drain()
                        self.frames_sent += len(frames)
                        self.messages_framed += len(messages)
                    except (ConnectionError, OSError):
                        # Reset while the batch was in flight: the TCP
                        # analogue of the severed-in-flight drop.
                        for message in messages:
                            self._drop(message, "connection_reset")
                        await self._retire_writer(writer)
        finally:
            self._flush_task = None

    async def _retire_writer(self, writer: Any) -> None:
        """Forget a dead connection everywhere it is referenced."""
        for site_id, link in list(self._links.items()):
            if link.writer is writer:
                self._links.pop(site_id, None)
                await link.close()
        self._prune_routes(writer)

    def _prune_routes(self, writer: Any) -> None:
        for endpoint, route in list(self._routes.items()):
            if route is writer:
                self._routes.pop(endpoint, None)

    async def _writer_for(self, endpoint_id: str) -> Any:
        # Co-hosted endpoints (Paxos acceptors) route to their daemon.
        host_site = self.cluster.route_site(endpoint_id)
        if host_site is not None:
            link = self._links.get(host_site)
            if link is None or not link.usable:
                link = await self._dial(host_site)
                if link is None:
                    return None
                self._links[host_site] = link
            return link.writer
        writer = self._routes.get(endpoint_id)
        if writer is not None and not writer.is_closing():
            return writer
        return None

    async def _dial(self, site_id: str) -> _PeerLink | None:
        loop = asyncio.get_running_loop()
        if not self.redial.may_dial(site_id, loop.time()):
            # Inside the backoff window: drop without a connect storm.
            return None
        spec = self.cluster.site(site_id)
        self.dials += 1
        try:
            reader, writer = await asyncio.open_connection(*spec.address)
        except (ConnectionError, OSError):
            self.redial.record_failure(site_id, loop.time())
            return None
        self.redial.record_success(site_id)
        task = asyncio.get_running_loop().create_task(
            self._read_loop(reader, writer)
        )
        link = _PeerLink(writer, task)

        def on_peer_gone(_task: Any) -> None:
            # EOF / reset from the peer: retire the link so the next send
            # re-dials (and, if the daemon is really down, counts a drop)
            # instead of writing into a dead socket.
            if self._links.get(site_id) is link:
                self._links.pop(site_id, None)
            if link.writer is not None:
                self._prune_routes(link.writer)
                link.writer.close()
                link.writer = None

        task.add_done_callback(on_peer_gone)
        return link

    # -- inbound -------------------------------------------------------------

    async def serve(self) -> None:
        """Start listening on the local site's configured address."""
        assert self.local_site is not None, "pure clients do not listen"
        spec = self.cluster.site(self.local_site)
        self._server = await asyncio.start_server(
            self._on_connection, spec.host, spec.port,
        )

    async def _on_connection(self, reader: Any, writer: Any) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._read_loop(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancellation: complete quietly so the streams
            # machinery does not log the cancelled handler task.
            pass
        finally:
            self._conn_tasks.discard(task)
            self._prune_routes(writer)
            writer.close()

    async def _read_loop(self, reader: Any, writer: Any) -> None:
        """Shared frame loop for inbound connections and dialed links.

        A wire frame may be a singleton or a batch envelope; either way
        every carried body goes through the same per-kind handling, so
        counters and delivery order are identical to unbatched framing.
        """
        while True:
            try:
                body = await read_frame(reader)
                bodies = unbatch(body) if body is not None else None
            except Exception:
                return
            if bodies is None:
                return
            for sub in bodies:
                kind = sub.get("kind")
                if kind == "msg":
                    message = message_from_json(sub)
                    # Learn the return route: replies to this sender go
                    # back over this connection.
                    self._routes[message.sender] = writer
                    if message.recipient in self._inboxes:
                        self._deliver_local(message)
                    else:
                        self._drop(message, "unknown_endpoint")
                elif kind == "admin" and self.admin_handler is not None:
                    await self.admin_handler(sub, writer)

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Close the server, every link, and cancel in-flight sends."""
        task = self._flush_task
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
            self._flush_task = None
        self._outbound.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._links.values()):
            await link.close()
        self._links.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._routes.clear()

    # -- accounting (same shape as Network) ----------------------------------

    def total_sent(self) -> int:
        """Total messages handed to the transport."""
        return sum(self.sent.values())

    def counts_by_type(self) -> dict[str, int]:
        """Sent-message counts keyed by message-type name."""
        return {
            t.value: n
            for t, n in sorted(self.sent.items(), key=lambda kv: kv[0].value)
        }
