"""NetSystem: the ``backend="net"`` implementation of the System API.

Where :class:`~repro.harness.system.System` assembles everything inside
one simulated environment, :class:`NetSystem` launches one **real
operating-system process per site** (``repro serve`` daemons) and runs
coordinators against them through a :class:`~repro.rt.client.NetClient`.
The protocol code is byte-for-byte the same; only the substrate changes.

Use it as a context manager::

    config = SystemConfig(n_sites=3, backend="net")
    with NetSystem(config) as system:
        outcome = system.run_transaction(spec)

Daemons for an ephemeral cluster (no ``sites_file``) get OS-assigned
ports and a temporary data directory, both cleaned up on exit.  With a
``sites_file``, the cluster file is the source of truth and the WALs in
its ``data_dir`` persist across runs — that is the production shape.

``open_system(config)`` is the backend dispatch: it returns a
:class:`System` or a started :class:`NetSystem` based on
``config.backend``, so harness code can be backend-generic.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any

from repro.rt.client import NetClient, site_shutdown, site_status
from repro.rt.config import ClusterConfig, load_cluster, local_cluster
from repro.txn.transaction import GlobalTxnSpec, TxnOutcome


def wait_for_port(
    host: str, port: int, deadline: float = 10.0,
) -> None:
    """Poll until something accepts on (host, port); raises on timeout."""
    # Real-wall deadline: this polls actual OS listeners, not the sim
    # clock, so the monotonic clock is the correct one here.
    end = time.monotonic() + deadline  # lint: allow-nondeterminism
    while True:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return
        except OSError:
            if time.monotonic() >= end:  # lint: allow-nondeterminism
                raise TimeoutError(
                    f"no listener on {host}:{port} after {deadline:.0f}s"
                ) from None
            time.sleep(0.05)


class NetSystem:
    """A cluster of ``repro serve`` daemons plus a coordinator client."""

    def __init__(self, config: Any) -> None:
        # Imported here: harness.system imports this module's sibling
        # packages, and the factory below needs both directions.
        from repro.harness.system import SystemConfig

        if not isinstance(config, SystemConfig):
            raise TypeError(f"expected SystemConfig, got {type(config)!r}")
        if config.backend != "net":
            raise ValueError(
                f"NetSystem requires backend='net', got {config.backend!r}"
            )
        self.config = config
        self._tmpdir: tempfile.TemporaryDirectory[str] | None = None
        if config.sites_file:
            self.cluster: ClusterConfig = load_cluster(config.sites_file)
        else:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            from repro.ids import site_id as make_site_id

            self.cluster = local_cluster(
                [make_site_id(n) for n in range(1, config.n_sites + 1)],
                data_dir=self._tmpdir.name,
            )
        self.procs: dict[str, subprocess.Popen[bytes]] = {}
        self.client = NetClient(
            self.cluster,
            scheme=config.scheme,
            protocol=config.protocol,
            commit=config.commit,
            time_scale=config.time_scale,
        )
        self.outcomes = self.client.outcomes

    # -- daemon lifecycle ----------------------------------------------------

    def serve_argv(self, site_id: str) -> list[str]:
        """Command line of one site daemon."""
        argv = [
            sys.executable, "-m", "repro", "serve", site_id,
            "--cluster", self.cluster_file,
            "--time-scale", repr(self.config.time_scale),
        ]
        if isinstance(self.config.protocol, str):
            argv += ["--protocol", self.config.protocol]
        if self.config.scheme.name != "O2PC":
            argv += ["--scheme", self.config.scheme.name]
        if self.config.observability:
            argv += ["--obs"]
        return argv

    @property
    def cluster_file(self) -> str:
        """Path of the cluster file every daemon reads."""
        if self.config.sites_file:
            return self.config.sites_file
        path = os.path.join(self.cluster.data_dir, "cluster.json")
        if not os.path.exists(path):
            self.cluster.save(path)
        return path

    def start(self) -> "NetSystem":
        """Launch one daemon per site and wait for their listeners."""
        self.cluster_file  # materialize for ephemeral clusters
        for site_id in self.cluster.site_ids:
            self.start_site(site_id)
        for site_id in self.cluster.site_ids:
            spec = self.cluster.site(site_id)
            wait_for_port(spec.host, spec.port)
        return self

    def start_site(self, site_id: str) -> subprocess.Popen[bytes]:
        """Launch (or relaunch, after a kill) one site's daemon."""
        proc = subprocess.Popen(
            self.serve_argv(site_id),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env={**os.environ, "PYTHONPATH": self._pythonpath()},
        )
        self.procs[site_id] = proc
        return proc

    @staticmethod
    def _pythonpath() -> str:
        src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = os.environ.get("PYTHONPATH")
        return f"{src}{os.pathsep}{existing}" if existing else src

    def kill_site(self, site_id: str) -> None:
        """SIGKILL one daemon — the crash the WAL must survive."""
        proc = self.procs.get(site_id)
        if proc is not None and proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

    def site_status(self, site_id: str) -> dict[str, Any] | None:
        """One daemon's status snapshot over the admin channel."""
        return site_status(self.cluster, site_id)

    def stop(self) -> None:
        """Shut every daemon down (cleanly if possible) and clean up."""
        for site_id, proc in self.procs.items():
            if proc.poll() is not None:
                continue
            try:
                site_shutdown(self.cluster, site_id)
            except OSError:
                pass
        # Shutdown grace period for real subprocesses — wall time by design.
        deadline = time.monotonic() + 5.0  # lint: allow-nondeterminism
        for proc in self.procs.values():
            remaining = max(
                0.1, deadline - time.monotonic()  # lint: allow-nondeterminism
            )
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "NetSystem":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- transactions --------------------------------------------------------

    def run_transaction(self, spec: GlobalTxnSpec) -> TxnOutcome:
        """Run one global transaction against the live cluster."""
        return self.client.run_transaction(spec)

    def run_transactions(
        self, specs: list[GlobalTxnSpec], sessions: int = 1,
    ) -> list[TxnOutcome]:
        """Run a batch against the live cluster (pipelined when >1)."""
        return self.client.run_transactions(specs, sessions=sessions)


def open_system(config: Any) -> Any:
    """Build the system for ``config.backend`` ("sim" or "net").

    The sim backend returns a ready :class:`~repro.harness.system.System`;
    the net backend returns a **started** :class:`NetSystem` (use it as a
    context manager or call :meth:`NetSystem.stop`).
    """
    from repro.harness.system import System

    if config.backend == "net":
        return NetSystem(config).start()
    return System(config)
