"""Capped exponential backoff with jitter for dead-link redial.

PR 6's transport retired a dead link and re-dialed on the very next
send, so a down daemon cost one TCP connect attempt (SYN, RST, task
churn) per outbound message — a connect storm aimed at the cluster
exactly when it is least healthy.  :class:`RedialPolicy` spaces the
attempts exponentially (base, 2x, 4x, ... capped) and decorrelates them
with deterministic per-transport jitter, so a fleet of clients does not
stampede a daemon the instant it comes back.

The schedule itself (:func:`backoff_delay`) is a pure function of the
attempt number and an injectable RNG, which is what the unit tests pin.
"""

from __future__ import annotations

import random
import zlib


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.25,
    rng: random.Random | None = None,  # lint: allow-nondeterminism
) -> float:
    """Delay in seconds before redial ``attempt`` (0-based).

    ``base * 2**attempt`` capped at ``cap``, scaled by a uniform factor
    in ``[1 - jitter, 1 + jitter]`` drawn from ``rng`` (no ``rng`` or
    zero ``jitter`` means the undithered schedule).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    delay = min(cap, base * (2.0 ** attempt))
    if rng is not None and jitter > 0:
        delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
    return delay


class RedialPolicy:
    """Per-peer redial gate: exponential spacing between connect attempts.

    The transport asks :meth:`may_dial` before every connect; a refusal
    means the peer is inside its backoff window and the message is
    dropped without a syscall (the same ``unreachable`` bucket as a
    refused connection).  Failures widen the window, one success resets
    the peer to immediate redial.

    Clock-free by design: callers pass ``now`` (the event loop's
    monotonic ``loop.time()``), so tests can drive the schedule with a
    fake clock.
    """

    def __init__(
        self,
        name: str = "",
        *,
        base: float = 0.05,
        cap: float = 2.0,
        jitter: float = 0.25,
    ) -> None:
        self.base = base
        self.cap = cap
        self.jitter = jitter
        # Seeded from the transport's name: deterministic for a given
        # process, decorrelated between processes — which is all the
        # jitter is for.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._failures: dict[str, int] = {}
        self._not_before: dict[str, float] = {}

    def may_dial(self, peer: str, now: float) -> bool:
        """True when ``peer`` is outside its backoff window."""
        return now >= self._not_before.get(peer, float("-inf"))

    def record_failure(self, peer: str, now: float) -> float:
        """Note a failed connect; returns the delay until the next try."""
        attempt = self._failures.get(peer, 0)
        delay = backoff_delay(
            attempt, base=self.base, cap=self.cap,
            jitter=self.jitter, rng=self._rng,
        )
        self._failures[peer] = attempt + 1
        self._not_before[peer] = now + delay
        return delay

    def record_success(self, peer: str) -> None:
        """A connect succeeded: reset ``peer`` to immediate redial."""
        self._failures.pop(peer, None)
        self._not_before.pop(peer, None)
