"""SiteDaemon: one site's Participant running as a real network service.

``repro serve S1 --cluster cluster.json`` builds a :class:`SiteDaemon`:
the unmodified :class:`~repro.commit.participant.Participant` state
machine on its own discrete-event environment, pumped in real time, with
a :class:`~repro.rt.transport.TcpTransport` in place of the simulated
network and a file-backed write-ahead log in place of the in-memory one.

Boot is where the paper's recovery story becomes operational:

* **first boot** (no WAL file): preload the site's keys, then take a
  quiescent checkpoint so the initial contents are durable — ``load()``
  itself is pre-history and never logged;
* **restart** (WAL file exists): replay the log and run
  :meth:`Participant.recover` — exactly the classification the simulated
  restart oracle checks: *in-doubt* transactions (prepared under 2PL)
  re-acquire their write locks and block on the decision; *locally
  committed* ones (O2PC) have their updates redone and await the decision
  with compensation armed.  A ``kill -9`` between the YES vote and the
  decision therefore lands in the second bucket, and a later ABORT runs
  the compensating subtransaction — the integration test drives this
  end-to-end.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.core.marks import MARKS_KEY, MarkingDirectory
from repro.core.protocols import MarkingProtocol, NoProtocol
from repro.harness.system import PROTOCOLS
from repro.net.message import MsgType
from repro.protocols import acceptor_ids, engine_for
from repro.protocols.acceptor import Acceptor
from repro.rt.config import ClusterConfig
from repro.rt.group_commit import GroupCommitFlusher
from repro.rt.obs_sink import JsonlEventSink
from repro.rt.pump import RealtimePump
from repro.rt.transport import TcpTransport
from repro.rt.wire import write_frame
from repro.sim.engine import Environment
from repro.storage.recovery import RecoveryManager, RestartReport
from repro.storage.wal import WriteAheadLog
from repro.txn.site import Site


class SiteDaemon:
    """One site of the cluster as a standalone asyncio service."""

    #: message types this daemon accepts from the wire — must mirror the
    #: union of every participant-side engine's ``_HANDLERS`` plus the
    #: co-hosted acceptor's (checked by ``repro lint``'s dispatch rule: a
    #: handler the daemon never receives is dead code, a frame type
    #: without a handler is a protocol hole)
    _INBOUND = (
        MsgType.SUBTXN_REQ, MsgType.VOTE_REQ, MsgType.DECISION,
        # Paxos Commit: the co-hosted acceptor receives 1a/2a, the
        # participant's termination leader receives 1b/2b.
        MsgType.PAXOS_PREPARE, MsgType.PAXOS_ACCEPT,
        MsgType.PAXOS_PROMISE, MsgType.PAXOS_ACCEPTED,
    )

    def __init__(
        self,
        site_id: str,
        cluster: ClusterConfig,
        scheme: CommitScheme = CommitScheme.O2PC,
        protocol: str | MarkingProtocol = "none",
        time_scale: float = 0.01,
        keys_per_site: int = 20,
        initial_value: int = 100,
        commit: CommitConfig | None = None,
        group_commit: bool = True,
        obs_path: str | None = None,
    ) -> None:
        self.site_id = site_id
        self.cluster = cluster
        self.env = Environment()
        self.pump = RealtimePump(self.env, time_scale=time_scale)
        self.transport = TcpTransport(
            self.env, cluster, self.pump, local_site=site_id,
        )
        self.transport.admin_handler = self._handle_admin

        wal_path = cluster.wal_path(site_id)
        os.makedirs(os.path.dirname(wal_path) or ".", exist_ok=True)
        #: True when this boot created the WAL file (first boot)
        self.fresh_boot = not os.path.exists(wal_path)
        self.keys_per_site = keys_per_site
        self.initial_value = initial_value

        self.site = Site(self.env, site_id)
        # Swap the in-memory WAL for the file-backed one before any record
        # is written; recovery must read the same log it appends to.
        self.site.wal = WriteAheadLog(site_id, path=wal_path)
        self.site.recovery = RecoveryManager(self.site.store, self.site.wal)

        if isinstance(protocol, MarkingProtocol):
            self.marking: MarkingProtocol = protocol
        else:
            self.marking = PROTOCOLS[protocol](directory=MarkingDirectory())
        if not isinstance(self.marking, NoProtocol):
            self.site.marks_key = MARKS_KEY

        self.commit = commit or CommitConfig()
        engine = engine_for(scheme)
        # Acceptor ensemble: one acceptor co-hosted per daemon, so the
        # cluster is its own 2F+1 ensemble (see ClusterConfig.route_site).
        acceptors = (
            acceptor_ids(len(cluster.site_ids))
            if engine.uses_acceptors else ()
        )
        self.participant = engine.participant(
            site=self.site, network=self.transport, scheme=scheme,
            marking=self.marking, commit=self.commit, acceptors=acceptors,
        )
        #: the co-hosted Paxos acceptor (None outside PAXOS), with its
        #: durable state in a JSON file next to the site's WAL
        self.acceptor: Acceptor | None = None
        if engine.uses_acceptors:
            acc_id = cluster.acceptor_hosted_by(site_id)
            if acc_id is not None:
                self.acceptor = Acceptor(
                    self.env, self.transport, acc_id,
                    path=cluster.acceptor_path(acc_id),
                )
        #: recovery classification of the last restart (None on first boot)
        self.restart_report: RestartReport | None = None
        #: fsync coalescing for the WAL (armed after boot when enabled);
        #: the transport's durability gate routes every outbound frame
        #: through its barrier, so a force point is never acknowledged
        #: before its covering fsync
        self.flusher = GroupCommitFlusher(self.site.wal)
        self._group_commit = group_commit
        #: per-site JSONL event stream (None = observability off)
        self.obs_sink: JsonlEventSink | None = None
        if obs_path is not None:
            self.obs_sink = JsonlEventSink(obs_path)
            self.env.bus.subscribe(self.obs_sink)
            self.env.bus.enable()
        self._pump_task: Any = None
        self._stop = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Listen, start the pump, and run boot-time recovery."""
        await self.transport.serve()
        self._pump_task = asyncio.get_running_loop().create_task(
            self.pump.run()
        )
        if self.fresh_boot:
            self.site.load({
                f"k{i}": self.initial_value
                for i in range(self.keys_per_site)
            })
            # load() is unlogged; the quiescent checkpoint makes the
            # initial contents durable so a restart restores them.  Boot
            # path: nothing is being served yet, blocking is harmless.
            self.site.checkpoint()  # lint: allow-blocking
        else:
            proc = self.env.process(
                self.participant.recover(),
                name=f"recover:{self.site_id}",
            )
            self.restart_report = await self.pump.wait_for(proc)
        # Arm group commit only after boot: the fresh-boot checkpoint and
        # recovery's own force points must be on disk before we serve.
        if self._group_commit:
            self.site.wal.group_commit = True
            self.transport.durability_gate = self.flusher.barrier

    async def run(self) -> None:
        """Serve until :meth:`stop` (or an admin shutdown frame)."""
        await self.start()
        await self._stop.wait()
        await self.shutdown()

    def stop(self) -> None:
        """Ask :meth:`run` to exit."""
        self._stop.set()

    async def shutdown(self) -> None:
        """Stop the pump, close every connection, and close the WAL."""
        self.pump.stop()
        if self._pump_task is not None:
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        await self.transport.close()
        # Shutdown path: the transport is closed, nothing left to starve.
        self.site.wal.close()  # lint: allow-blocking
        if self.obs_sink is not None:
            self.obs_sink.close()

    # -- admin surface -------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Snapshot of this daemon's state (admin ``status`` frames)."""
        report = self.restart_report
        return {
            "site": self.site_id,
            "now": self.env.now,
            "fresh_boot": self.fresh_boot,
            "wal_records": len(self.site.wal),
            "torn_records_truncated": self.site.wal.torn_records_truncated,
            "forced_writes": self.site.wal.forced_writes,
            "fsyncs": self.site.wal.fsyncs,
            "fsync_groups": self.flusher.groups,
            "frames_sent": self.transport.frames_sent,
            "messages_framed": self.transport.messages_framed,
            "keys": len(self.site.store.snapshot()),
            "subtxns": {
                txn_id: {
                    "executed": state.executed,
                    "voted": state.voted,
                }
                for txn_id, state in sorted(
                    self.participant.subtxns.items()
                )
            },
            "recovered": None if report is None else {
                "in_doubt": sorted(report.in_doubt),
                "locally_committed": sorted(report.locally_committed),
                "redone": len(report.redone),
                "undone": len(report.undone),
            },
            "messages": self.transport.counts_by_type(),
        }

    async def _handle_admin(self, body: dict[str, Any], writer: Any) -> None:
        cmd = body.get("cmd")
        if cmd == "status":
            if self.obs_sink is not None:
                # Probing a site also drains its event stream, so a
                # collector sees everything up to this status snapshot.
                self.obs_sink.flush()
            await write_frame(writer, {
                "kind": "admin", "cmd": "status", "reply": self.status(),
            })
        elif cmd == "read":
            key = body.get("key")
            await write_frame(writer, {
                "kind": "admin", "cmd": "read",
                "reply": {
                    "key": key,
                    "value": self.site.store.snapshot().get(key),
                },
            })
        elif cmd == "shutdown":
            await write_frame(writer, {
                "kind": "admin", "cmd": "shutdown", "reply": {"ok": True},
            })
            self.stop()


def serve_forever(daemon: SiteDaemon) -> None:
    """Blocking entry point used by ``repro serve``."""
    asyncio.run(daemon.run())
