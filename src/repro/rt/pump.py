"""Bridging the discrete-event kernel to the asyncio wall clock.

The protocol core is written as generator processes against
:class:`~repro.sim.engine.Environment` — timeouts, inbox waits, composite
events.  The networked runtime runs that code *unmodified* by pumping the
environment in real time:

* all events due at the current simulation instant are processed
  immediately;
* when the next scheduled event lies in the (simulated) future, the pump
  sleeps ``delta * time_scale`` real seconds, then advances the clock;
* externally injected work (a frame arriving from a socket triggers an
  inbox ``put``) schedules events at the current instant and *kicks* the
  pump, which wakes and drains them at once.

``time_scale`` maps simulation units to real seconds.  The default of
10 ms per unit keeps protocol timeouts (hundreds of units) in the
single-digit-second range while leaving message handling effectively
instantaneous — and, unlike the simulation, the wall clock is shared with
the operating system, so a ``kill -9``'d daemon really does go silent.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.sim.engine import Environment
from repro.sim.events import Event


class RealtimePump:
    """Drives one :class:`Environment` against the asyncio clock.

    The wait primitive is a bare future resolved either by
    :meth:`kick` (external input: ``True``) or by a ``call_later``
    deadline (the next scheduled simulation event: ``False``).  The
    original implementation parked on ``asyncio.wait_for(event.wait())``,
    which costs a wrapper Task plus an inner ``Event.wait()`` coroutine
    per pump iteration — measurable overhead once pipelined sessions
    push thousands of drains per second through one loop.
    """

    def __init__(
        self, env: Environment, time_scale: float = 0.01,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.env = env
        self.time_scale = time_scale
        #: future the run loop is parked on (None while draining)
        self._waiter: Any = None
        #: a kick arrived while no waiter was armed
        self._pending_kick = False
        self._running = False

    # -- external wake-ups ---------------------------------------------------

    def kick(self) -> None:
        """Wake the pump: externally injected events are ready to run."""
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(True)
        else:
            self._pending_kick = True

    # -- the pump loop -------------------------------------------------------

    def _drain_due(self) -> None:
        """Process every event scheduled at or before the current instant."""
        env = self.env
        while env.peek() <= env.now:
            env.step()

    async def run(self) -> None:
        """Pump until :meth:`stop` (or task cancellation).

        Exceptions escaping event callbacks (unhandled process failures)
        propagate out of this coroutine — the host decides whether that
        kills the daemon or the client call.
        """
        self._running = True
        env = self.env
        loop = asyncio.get_running_loop()
        try:
            while self._running:
                self._drain_due()
                if self._pending_kick:
                    # Kicked mid-drain: re-drain before parking, in case
                    # the injected event landed at the current instant.
                    self._pending_kick = False
                    continue
                next_at = env.peek()
                self._waiter = waiter = loop.create_future()
                if next_at == float("inf"):
                    # Nothing scheduled: wait for external input.
                    await waiter
                    self._waiter = None
                    continue
                delay = (next_at - env.now) * self.time_scale
                deadline = loop.call_later(delay, self._on_deadline, waiter)
                try:
                    kicked = await waiter
                finally:
                    self._waiter = None
                    deadline.cancel()
                if not kicked:
                    env.run(until=next_at)
                # else: new work was injected at the current instant;
                # loop to drain it without advancing the clock early.
        finally:
            self._waiter = None

    @staticmethod
    def _on_deadline(waiter: Any) -> None:
        if not waiter.done():
            waiter.set_result(False)

    def stop(self) -> None:
        """Ask the pump loop to exit after the current iteration."""
        self._running = False
        self.kick()

    # -- waiting on simulation events from asyncio ---------------------------

    async def wait_for(self, event: Event) -> Any:
        """Await a simulation event (e.g. a coordinator process) from asyncio.

        Returns the event's value, or raises its failure — the asyncio
        mirror of ``env.run(until=event)``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Any] = loop.create_future()

        def resolve(evt: Event) -> None:
            if future.done():  # pragma: no cover - cancellation race
                return
            if evt._ok:
                future.set_result(evt._value)
            else:
                evt.defused = True
                future.set_exception(evt._value)

        if event.processed:
            resolve(event)
        else:
            event.callbacks.append(resolve)
            self.kick()
        return await future
