"""Bridging the discrete-event kernel to the asyncio wall clock.

The protocol core is written as generator processes against
:class:`~repro.sim.engine.Environment` — timeouts, inbox waits, composite
events.  The networked runtime runs that code *unmodified* by pumping the
environment in real time:

* all events due at the current simulation instant are processed
  immediately;
* when the next scheduled event lies in the (simulated) future, the pump
  sleeps ``delta * time_scale`` real seconds, then advances the clock;
* externally injected work (a frame arriving from a socket triggers an
  inbox ``put``) schedules events at the current instant and *kicks* the
  pump, which wakes and drains them at once.

``time_scale`` maps simulation units to real seconds.  The default of
10 ms per unit keeps protocol timeouts (hundreds of units) in the
single-digit-second range while leaving message handling effectively
instantaneous — and, unlike the simulation, the wall clock is shared with
the operating system, so a ``kill -9``'d daemon really does go silent.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.sim.engine import Environment
from repro.sim.events import Event


class RealtimePump:
    """Drives one :class:`Environment` against the asyncio clock."""

    def __init__(
        self, env: Environment, time_scale: float = 0.01,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.env = env
        self.time_scale = time_scale
        self._kick = asyncio.Event()
        self._running = False

    # -- external wake-ups ---------------------------------------------------

    def kick(self) -> None:
        """Wake the pump: externally injected events are ready to run."""
        self._kick.set()

    # -- the pump loop -------------------------------------------------------

    def _drain_due(self) -> None:
        """Process every event scheduled at or before the current instant."""
        env = self.env
        while env.peek() <= env.now:
            env.step()

    async def run(self) -> None:
        """Pump until :meth:`stop` (or task cancellation).

        Exceptions escaping event callbacks (unhandled process failures)
        propagate out of this coroutine — the host decides whether that
        kills the daemon or the client call.
        """
        # A fresh kick event per run: asyncio.Event binds to the loop it
        # is first awaited on, and a client may pump once per event loop
        # (run_transaction, then resend_pending on a new loop).
        self._kick = asyncio.Event()
        self._running = True
        env = self.env
        while self._running:
            self._drain_due()
            next_at = env.peek()
            if next_at == float("inf"):
                # Nothing scheduled: wait for external input.
                await self._kick.wait()
                self._kick.clear()
                continue
            delay = (next_at - env.now) * self.time_scale
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=delay)
                self._kick.clear()
                # New work was injected at the current instant; loop to
                # drain it without advancing the clock early.
                continue
            except asyncio.TimeoutError:
                env.run(until=next_at)

    def stop(self) -> None:
        """Ask the pump loop to exit after the current iteration."""
        self._running = False
        self.kick()

    # -- waiting on simulation events from asyncio ---------------------------

    async def wait_for(self, event: Event) -> Any:
        """Await a simulation event (e.g. a coordinator process) from asyncio.

        Returns the event's value, or raises its failure — the asyncio
        mirror of ``env.run(until=event)``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Any] = loop.create_future()

        def resolve(evt: Event) -> None:
            if future.done():  # pragma: no cover - cancellation race
                return
            if evt._ok:
                future.set_result(evt._value)
            else:
                evt.defused = True
                future.set_exception(evt._value)

        if event.processed:
            resolve(event)
        else:
            event.callbacks.append(resolve)
            self.kick()
        return await future
