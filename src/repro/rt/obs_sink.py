"""Collectable observability for live clusters: per-site JSONL sinks.

A ``SiteDaemon`` started with observability on subscribes a
:class:`JsonlEventSink` to its bus, streaming every published event to
``<data_dir>/<site_id>.events.jsonl`` — the same deterministic JSONL
schema ``repro trace`` writes, appended across restarts so a recovered
daemon's history stays in one file.

The read side closes ROADMAP item 1's metrics gap: ``repro metrics
--backend net --cluster c.json`` calls :func:`aggregate_cluster`, which
replays every site's stream through the normal
:class:`~repro.obs.metrics.StreamingMetrics` fold.  Commit/abort counts
come from ``subtxn.decision`` events (the daemon-side record of a global
decision) because ``txn.end`` is published on the *client's* bus, not
the daemons'.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.events import DecisionApplied, Event
from repro.obs.export import event_from_dict, event_to_dict
from repro.obs.metrics import MetricsReport, StreamingMetrics
from repro.rt.config import ClusterConfig


class JsonlEventSink:
    """Bus subscriber appending events to a JSONL file.

    Appends (a restarted daemon continues its stream) and flushes every
    ``flush_every`` events, so a collector reading a live cluster lags a
    bounded amount; :meth:`flush` is called from the daemon's admin
    ``status`` path so probing a site also drains its sink.
    """

    def __init__(self, path: str, flush_every: int = 64) -> None:
        self.path = path
        self.flush_every = flush_every
        self._handle: Any = open(path, "a", encoding="utf-8")
        self._unflushed = 0
        self.events_written = 0

    def __call__(self, event: Event) -> None:
        if self._handle is None:  # pragma: no cover - post-close publish
            return
        self._handle.write(json.dumps(
            event_to_dict(event), sort_keys=True, separators=(",", ":"),
        ))
        self._handle.write("\n")
        self.events_written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the file."""
        if self._handle is not None:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush and close the stream."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


def read_events(path: str) -> list[Event]:
    """Load one site's event stream back into typed events."""
    events: list[Event] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def aggregate_cluster(
    cluster: ClusterConfig,
) -> tuple[MetricsReport, dict[str, int]]:
    """Fold every site's event stream into one cluster-wide report.

    Returns the report plus a per-site event count (sites with no stream
    yet count zero — a daemon started without ``--obs``, or not yet
    flushed).  Latency percentiles in the report are lock-hold driven;
    end-to-end commit latency lives client-side and in ``BENCH_net.json``.
    """
    import os

    metrics = StreamingMetrics()
    per_site: dict[str, int] = {}
    decisions: dict[str, str] = {}
    elapsed = 0.0
    for site_id in cluster.site_ids:
        path = cluster.events_path(site_id)
        if not os.path.exists(path):
            per_site[site_id] = 0
            continue
        events = read_events(path)
        per_site[site_id] = len(events)
        for event in events:
            metrics(event)
            if event.ts > elapsed:
                elapsed = event.ts
            if isinstance(event, DecisionApplied):
                decisions[event.txn_id] = event.decision
    # One global decision per txn, however many sites applied it.
    metrics.committed = sum(
        1 for decision in decisions.values() if decision == "COMMIT"
    )
    metrics.aborted = sum(
        1 for decision in decisions.values() if decision != "COMMIT"
    )
    return metrics.report(elapsed or None), per_site
