"""Wire format of the networked runtime: length-prefixed JSON frames.

Every frame is a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  Two frame kinds travel on the same connection:

* ``{"kind": "msg", ...}`` — a serialized protocol
  :class:`~repro.net.message.Message`.  The payload's typed values
  (operation lists, :class:`~repro.txn.transaction.VotePolicy`) round-trip
  through tagged JSON, so a daemon rebuilds exactly the object the
  simulation would have delivered.
* ``{"kind": "admin", ...}`` — daemon control traffic (status snapshots,
  orderly shutdown) used by ``repro client --status`` and the integration
  tests.  Admin frames are *not* part of the protocol vocabulary — they
  never reach the Participant's dispatch loop, so the ``MsgType``
  message-count claims (CLAIM-MSG) are unaffected.
* ``{"kind": "batch", "frames": [...]}`` — several ``msg`` bodies
  coalesced into one frame (one length prefix, one syscall at each end).
  The envelope is strictly an optimization: :func:`encode_batch` emits a
  lone message as a plain ``msg`` frame, so a peer that predates the
  envelope still parses everything a lightly loaded sender produces, and
  :func:`unbatch` maps any inbound body back to the flat message list.

The framing mirrors the WAL's on-disk format choice: explicit lengths make
torn frames detectable, and a reader never blocks past a frame boundary.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.net.message import Message, MsgType
from repro.txn.operations import Op, ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import VotePolicy

#: 4-byte big-endian payload length
_LEN = struct.Struct(">I")

#: refuse absurd frames before allocating (a corrupt peer, not a workload)
MAX_FRAME = 16 * 1024 * 1024


class WireError(ValueError):
    """A frame could not be decoded (truncated, oversized, or malformed)."""


# -- operations ---------------------------------------------------------------

def op_to_json(op: Op) -> dict[str, Any]:
    """Tagged JSON form of one operation."""
    if isinstance(op, ReadOp):
        return {"op": "read", "key": op.key}
    if isinstance(op, WriteOp):
        return {"op": "write", "key": op.key, "value": op.value}
    if isinstance(op, SemanticOp):
        return {
            "op": "semantic", "name": op.name, "key": op.key,
            "params": op.params,
        }
    raise WireError(f"unserializable operation {op!r}")


def op_from_json(data: dict[str, Any]) -> Op:
    """Inverse of :func:`op_to_json`."""
    tag = data.get("op")
    if tag == "read":
        return ReadOp(key=data["key"])
    if tag == "write":
        return WriteOp(key=data["key"], value=data["value"])
    if tag == "semantic":
        return SemanticOp(
            name=data["name"], key=data["key"],
            params=dict(data.get("params", {})),
        )
    raise WireError(f"unknown operation tag {tag!r}")


# -- payload values -----------------------------------------------------------

def _payload_to_json(payload: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if key == "ops":
            out[key] = [op_to_json(op) for op in value]
        elif isinstance(value, VotePolicy):
            out[key] = {"__vote_policy__": value.value}
        else:
            out[key] = value
    return out


def _payload_from_json(payload: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if key == "ops":
            out[key] = [op_from_json(item) for item in value]
        elif isinstance(value, dict) and "__vote_policy__" in value:
            out[key] = VotePolicy(value["__vote_policy__"])
        else:
            out[key] = value
    return out


# -- messages -----------------------------------------------------------------

def message_to_json(message: Message) -> dict[str, Any]:
    """JSON frame body of one protocol message."""
    return {
        "kind": "msg",
        "type": message.msg_type.value,
        "sender": message.sender,
        "recipient": message.recipient,
        "txn": message.txn_id,
        "payload": _payload_to_json(message.payload),
    }


def message_from_json(data: dict[str, Any]) -> Message:
    """Rebuild a protocol message from a frame body."""
    try:
        return Message(
            msg_type=MsgType(data["type"]),
            sender=data["sender"],
            recipient=data["recipient"],
            txn_id=data["txn"],
            payload=_payload_from_json(data.get("payload", {})),
        )
    except (KeyError, ValueError) as exc:
        raise WireError(f"malformed message frame: {exc}") from exc


# -- batching -----------------------------------------------------------------

#: keep batch frames comfortably under MAX_FRAME (payload sizes are
#: estimated from the member payloads, before envelope overhead)
_BATCH_BUDGET = MAX_FRAME // 2


def encode_batch(bodies: list[dict[str, Any]]) -> list[bytes]:
    """Encode message bodies into the fewest wire frames.

    One body stays a plain singleton frame (legacy peers parse it
    unchanged); several bodies share one ``batch`` envelope; a batch
    whose members approach ``MAX_FRAME`` is split across frames.
    """
    frames: list[bytes] = []
    chunk: list[dict[str, Any]] = []
    chunk_bytes = 0
    for body in bodies:
        size = len(json.dumps(body, sort_keys=True, separators=(",", ":")))
        if chunk and chunk_bytes + size > _BATCH_BUDGET:
            frames.append(_encode_chunk(chunk))
            chunk, chunk_bytes = [], 0
        chunk.append(body)
        chunk_bytes += size
    if chunk:
        frames.append(_encode_chunk(chunk))
    return frames


def _encode_chunk(chunk: list[dict[str, Any]]) -> bytes:
    if len(chunk) == 1:
        return encode_frame(chunk[0])
    return encode_frame({"kind": "batch", "frames": chunk})


def unbatch(body: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten one inbound frame body into its message bodies.

    A non-batch body is its own singleton; a batch envelope yields its
    members in order.  Nesting is rejected — the sender never produces
    it, so seeing one means a corrupt or hostile peer.
    """
    if body.get("kind") != "batch":
        return [body]
    members = body.get("frames")
    if not isinstance(members, list):
        raise WireError("batch envelope without a frames list")
    for member in members:
        if not isinstance(member, dict) or "kind" not in member:
            raise WireError("batch member is not a tagged object")
        if member.get("kind") == "batch":
            raise WireError("nested batch envelope")
    return members


# -- framing ------------------------------------------------------------------

def encode_frame(body: dict[str, Any]) -> bytes:
    """One wire frame: length prefix plus compact JSON."""
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise WireError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict[str, Any]:
    """Decode one frame payload (the bytes after the length prefix)."""
    try:
        body = json.loads(payload)
    except ValueError as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(body, dict) or "kind" not in body:
        raise WireError("frame body is not a tagged object")
    return body


async def read_frame(reader: Any) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; None on orderly EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"announced frame of {length} bytes exceeds MAX_FRAME")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_frame(payload)


async def write_frame(writer: Any, body: dict[str, Any]) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(body))
    await writer.drain()
