"""O2PC: optimistic two-phase commit with compensating transactions.

A complete reproduction of Levy, Korth & Silberschatz, *"An Optimistic
Commit Protocol for Distributed Transaction Management"* (SIGMOD 1991):
the O2PC protocol, compensating transactions, the serialization-graph
correctness criterion (regular cycles, stratification properties), and the
marking protocols P1/P2 — all on top of a from-scratch discrete-event
simulation of a multidatabase system.

Typical entry points:

>>> from repro.harness import System, SystemConfig
>>> from repro.commit import CommitScheme
>>> from repro.txn import GlobalTxnSpec, SubtxnSpec, SemanticOp
>>> system = System(SystemConfig(n_sites=3, scheme=CommitScheme.O2PC,
...                              protocol="P1"))
>>> outcome = system.run_transaction(GlobalTxnSpec(txn_id="T1", subtxns=[
...     SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 5})]),
...     SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 5})]),
... ]))
>>> outcome.committed
True
>>> system.check_correctness()

The blessed public surface is re-exported here: :class:`System` /
:class:`SystemConfig`, the transport abstraction (:class:`Transport`,
``BACKENDS`` — ``SystemConfig(backend="net")`` selects the real TCP
runtime in :mod:`repro.rt`), plus the observability layer
(:mod:`repro.obs`) —
:class:`MetricsReport` from :meth:`System.metrics`, :class:`Span` trees
from :meth:`System.spans`, typed :class:`Event` streams from
:meth:`System.events` (enable with ``SystemConfig(observability=True)``).

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
system inventory and design decisions, ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced figure and claim, and
``docs/OBSERVABILITY.md`` for the event taxonomy and tooling.
"""

from repro.harness.system import BACKENDS, System, SystemConfig
from repro.net.transport import Transport
from repro.obs import (
    Event,
    EventBus,
    Histogram,
    MetricsReport,
    Observability,
    Span,
    StreamingMetrics,
    build_spans,
    to_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    # blessed objects
    "BACKENDS",
    "Event",
    "EventBus",
    "Histogram",
    "MetricsReport",
    "Observability",
    "Span",
    "StreamingMetrics",
    "System",
    "SystemConfig",
    "Transport",
    "build_spans",
    "to_jsonl",
    # sub-packages
    "analysis",
    "commit",
    "compensation",
    "core",
    "errors",
    "harness",
    "ids",
    "locking",
    "net",
    "obs",
    "rt",
    "sg",
    "sim",
    "storage",
    "txn",
    "workload",
]
