"""Run execution for the explorer: serial, multiprocessing, prefix-forking.

The explorer (see :mod:`repro.check.explorer`) asks a *runner* to execute
waves of work — choice-vector prefixes in DFS mode, walk indices in bounded
mode — and gets back picklable :class:`RunRecord` results in submission
order.  Because wave composition and result processing are independent of
how the wave was executed, ``--jobs N`` produces a byte-identical report to
``--jobs 1``: parallelism changes wall-clock time only.

Two speedups live here:

* :class:`ParallelRunner` fans a wave out over a ``multiprocessing`` pool
  (fork start method where available).  Workers are initialized once with
  the :class:`~repro.check.explorer.CheckConfig` and rebuild their own
  ``ModelChecker``; tasks and results are small primitive tuples.
* Prefix reuse: sibling vectors (same stem, different last choice) would
  each re-simulate the identical stem from scratch.  On POSIX the stem is
  simulated *once*; at the first free choice the process ``os.fork()``\\ s
  one child per sibling, each continuing from the shared in-memory state
  with its own alternative.  Simulation state (generators, lambdas) is not
  picklable, so ``fork`` is the only zero-copy snapshot the platform
  offers — children return their (picklable) records over pipes and exit
  with ``os._exit``, never touching the parent's runtime.  Where ``fork``
  is unavailable the runner transparently falls back to re-running each
  sibling, with identical results.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.check.oracles import Violation
from repro.check.scheduler import Choice, ChoicePolicy, RandomPolicy
from repro.sim.rng import Rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.explorer import ModelChecker

#: runs per wave.  Fixed (never derived from ``--jobs``) so the frontier
#: evolves identically for every job count — the determinism contract.
WAVE_SIZE = 64

#: fork only when the shared stem is at least this long
FORK_MIN_STEM = 2
#: ... and a run costs at least this much wall time.  fork + pipe + pickle
#: costs on the order of a millisecond; re-simulating the stem of a cheap
#: run is faster than snapshotting it, so tiny scenarios (the smoke
#: workload's ~1 ms runs) skip forking entirely.  The gate is timing-based
#: but only ever changes *how* a sibling is executed, never its record.
FORK_MIN_RUN_SECONDS = 0.005

_FORK_AVAILABLE = hasattr(os, "fork")


class _CostTracker:
    """Mean wall-clock cost of from-scratch runs (drives the fork gate)."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class RunRecord:
    """The picklable result of one executed schedule."""

    #: the vector the explorer scheduled (stem of the full vector)
    prefix: tuple[int, ...]
    #: the full choice vector the run actually took
    vector: tuple[int, ...]
    log: tuple[Choice, ...]
    violations: tuple[Violation, ...]
    #: JSONL event trace, captured only for failing runs
    jsonl: str | None

    @property
    def ok(self) -> bool:
        return not self.violations


def _to_record(prefix: Sequence[int], outcome) -> RunRecord:
    jsonl = outcome.system.obs.jsonl() if outcome.violations else None
    return RunRecord(
        prefix=tuple(prefix),
        vector=outcome.vector,
        log=outcome.log,
        violations=outcome.violations,
        jsonl=jsonl,
    )


# -- single-run primitives ----------------------------------------------------


def run_one(
    checker: "ModelChecker",
    vector: tuple[int, ...],
    tracker: _CostTracker | None = None,
) -> RunRecord:
    """Execute one schedule from scratch."""
    started = time.perf_counter()
    outcome = checker.execute(ChoicePolicy(vector))
    if tracker is not None:
        tracker.add(time.perf_counter() - started)
    return _to_record(vector, outcome)


def run_walk(checker: "ModelChecker", walk: int) -> RunRecord:
    """Execute bounded-mode walk number ``walk``.

    ``Rng.fork`` is stateless (stable digest of seed + stream name), so a
    walk is reconstructible from its index alone — in any process.
    """
    rng = Rng(checker.config.seed).fork("bounded-walks").fork(f"walk-{walk}")
    return _to_record((), checker.execute(RandomPolicy(rng)))


# -- sibling groups and prefix reuse ------------------------------------------


def plan_groups(
    wave: Sequence[tuple[int, ...]],
) -> list[tuple[tuple[int, ...], list[int]]]:
    """Group consecutive sibling vectors by shared stem (``vector[:-1]``).

    Returns ``(stem, alts)`` pairs whose flattened order reproduces the
    wave order exactly.  ``alts`` is empty only for the root vector ``()``,
    which has no final choice to vary.
    """
    groups: list[tuple[tuple[int, ...], list[int]]] = []
    for vector in wave:
        if not vector:
            groups.append(((), []))
            continue
        stem, alt = vector[:-1], vector[-1]
        if groups and groups[-1][1] and groups[-1][0] == stem:
            groups[-1][1].append(alt)
        else:
            groups.append((stem, [alt]))
    return groups


def run_group(
    checker: "ModelChecker",
    stem: tuple[int, ...],
    alts: list[int],
    tracker: _CostTracker | None = None,
) -> list[RunRecord]:
    """Execute one sibling group, reusing the shared stem when profitable.

    The fork path and the re-run path produce identical records (state at
    the fork point is a pure function of the stem), so the gate is free to
    decide on cost alone.
    """
    if not alts:
        return [run_one(checker, stem, tracker)]
    if (
        len(alts) >= 2
        and checker.config.prefix_reuse
        and _FORK_AVAILABLE
        and len(stem) >= FORK_MIN_STEM
        and tracker is not None
        and tracker.mean >= FORK_MIN_RUN_SECONDS
    ):
        return _run_group_forked(checker, stem, alts)
    return [run_one(checker, stem + (alt,), tracker) for alt in alts]


class _ForkPoint(Exception):
    """Unwinds the parent's run once every sibling child is forked."""


class _ForkingPolicy(ChoicePolicy):
    """Replays the stem, then forks one child per sibling alternative.

    The parent never simulates past the fork point (it raises
    :class:`_ForkPoint`); each child takes its own alternative and runs to
    completion from the shared snapshot.  A child's choice log is identical
    to a from-scratch ``ChoicePolicy(stem + (alt,))`` run by determinism:
    state at the fork point is a pure function of the stem.
    """

    def __init__(self, stem: tuple[int, ...], alts: list[int]) -> None:
        super().__init__(stem)
        self.stem = tuple(stem)
        self.alts = alts
        self.pipes: list[tuple[int, int]] = []
        self.pids: list[int] = []
        self.child_alt: int | None = None
        self.child_wfd: int | None = None
        self._forked = False

    def _pick_free(
        self, kind: str, labels: Sequence[str], branch: Sequence[int]
    ) -> int:
        if self._forked or len(self.log) != len(self.stem):
            return 0
        self._forked = True
        for alt in self.alts:
            rfd, wfd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Child: drop every inherited pipe end except our write
                # end, then continue the simulation with our alternative.
                os.close(rfd)
                for other_rfd, other_wfd in self.pipes:
                    os.close(other_rfd)
                    os.close(other_wfd)
                self.child_alt = alt
                self.child_wfd = wfd
                return alt
            self.pipes.append((rfd, wfd))
            self.pids.append(pid)
        raise _ForkPoint()


def _run_group_forked(
    checker: "ModelChecker", stem: tuple[int, ...], alts: list[int]
) -> list[RunRecord]:
    policy = _ForkingPolicy(stem, alts)
    outcome = None
    try:
        outcome = checker.execute(policy)
    except _ForkPoint:
        pass
    if policy.child_wfd is not None:
        # Forked child: ship the record over our pipe and vanish without
        # running any parent cleanup (atexit, buffers, pytest hooks).
        try:
            payload = pickle.dumps(_to_record(
                stem + (policy.child_alt,), outcome
            ))
            view = memoryview(payload)
            while view:
                written = os.write(policy.child_wfd, view)
                view = view[written:]
            os.close(policy.child_wfd)
        finally:
            os._exit(0)
    if not policy.pids:
        # The run ended before reaching a free choice (cannot happen for
        # vectors derived from a recorded log, but fail safe): the siblings
        # are re-run from scratch, which is always equivalent.
        return [run_one(checker, stem + (alt,)) for alt in alts]
    records: list[RunRecord] = []
    for (rfd, wfd), pid, alt in zip(policy.pipes, policy.pids, alts):
        os.close(wfd)
        chunks = []
        while True:
            chunk = os.read(rfd, 65536)
            if not chunk:
                break
            chunks.append(chunk)
        os.close(rfd)
        os.waitpid(pid, 0)
        if not chunks:
            raise RuntimeError(
                f"prefix-fork child for vector {stem + (alt,)} exited "
                "without returning a record"
            )
        records.append(pickle.loads(b"".join(chunks)))
    return records


# -- runners -------------------------------------------------------------------


class SerialRunner:
    """Executes waves in-process (``--jobs 1``), with prefix reuse."""

    def __init__(self, checker: "ModelChecker") -> None:
        self.checker = checker
        self.tracker = _CostTracker()

    def run_vectors(
        self, wave: Sequence[tuple[int, ...]]
    ) -> list[RunRecord]:
        records: list[RunRecord] = []
        for stem, alts in plan_groups(wave):
            records.extend(
                run_group(self.checker, stem, alts, self.tracker)
            )
        return records

    def run_walks(self, walks: Sequence[int]) -> list[RunRecord]:
        return [run_walk(self.checker, walk) for walk in walks]

    def close(self) -> None:
        pass


# Per-worker state, built once by the pool initializer: config travels to
# the worker a single time instead of once per task.
_WORKER_CHECKER: "ModelChecker | None" = None
_WORKER_TRACKER: _CostTracker | None = None


def _init_worker(config) -> None:
    global _WORKER_CHECKER, _WORKER_TRACKER
    from repro.check.explorer import ModelChecker

    _WORKER_CHECKER = ModelChecker(config)
    _WORKER_TRACKER = _CostTracker()


def _worker_group(
    group: tuple[tuple[int, ...], list[int]]
) -> list[RunRecord]:
    stem, alts = group
    return run_group(_WORKER_CHECKER, stem, alts, _WORKER_TRACKER)


def _worker_walk(walk: int) -> RunRecord:
    return run_walk(_WORKER_CHECKER, walk)


class ParallelRunner:
    """Executes waves on a ``multiprocessing`` pool (``--jobs N``).

    Sibling groups are the unit of distribution, so prefix reuse still
    applies within each worker.  ``pool.map`` preserves task order, which
    is all the determinism contract needs — the explorer does the rest by
    keeping wave composition independent of the job count.
    """

    def __init__(self, config, jobs: int) -> None:
        import multiprocessing

        try:
            pickle.dumps(config)
        except Exception as exc:
            raise ValueError(
                "--jobs > 1 requires a picklable CheckConfig (named "
                f"scenario/protocol, no closures): {exc}"
            ) from exc
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.pool = context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(config,)
        )

    def run_vectors(
        self, wave: Sequence[tuple[int, ...]]
    ) -> list[RunRecord]:
        grouped = self.pool.map(_worker_group, plan_groups(wave))
        return [record for group in grouped for record in group]

    def run_walks(self, walks: Sequence[int]) -> list[RunRecord]:
        return self.pool.map(_worker_walk, list(walks))

    def close(self) -> None:
        self.pool.close()
        self.pool.join()


def make_runner(checker: "ModelChecker"):
    """The runner matching ``checker.config.jobs``."""
    if checker.config.jobs > 1:
        return ParallelRunner(checker.config, checker.config.jobs)
    return SerialRunner(checker)
