"""Checker workloads: small, adversarial multi-site scenarios.

A :class:`Scenario` is a named builder that submits a handful of global
transactions into a freshly assembled :class:`~repro.harness.system.System`.
The scenarios are deliberately tiny — two sites, two transactions — because
the checker re-executes the whole simulation once per schedule; what matters
is that the *conflict structure* covers the paper's danger cases:

* ``conflict`` — the Section 4 exposure race: ``T1`` updates ``k0`` at both
  sites and is forced to vote NO at ``S2``, so ``S1`` locally commits and is
  later compensated.  ``T2`` reads ``k0`` at ``S2`` then at ``S1``.  Without
  the marking rules a schedule exists where ``T2`` sees ``T1``'s exposed
  update at one site and its rolled-back state at the other — the regular
  cycle the serializability oracle catches.
* ``duel`` — two writers crossing: ``T1`` writes ``S1`` then ``S2``, ``T2``
  writes ``S2`` then ``S1``, both forced to abort at their second site; both
  compensations race each other and any reader of the marking state.
* ``crashcoord`` — the blocking drill: a two-site transfer whose coordinator
  crashes *after the votes land but before any decision*, and stays down far
  longer than every protocol timeout (with one acceptor down too, so Paxos
  must decide from a bare 2-of-3 quorum).  Under PAXOS the participants'
  termination protocol must reach a decision during the outage — the
  non-blocking oracle asserts exactly that; 2PC-family schemes legitimately
  sit in doubt until the coordinator returns.

Commit timeouts are compressed relative to the library defaults so a single
run stays short, but the decision-retransmission window (``decision_retries
× ack_timeout``) is kept well above the crash enumerator's outage so that
every injected crash still lets the run terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.commit.base import CommitConfig, CommitScheme
from repro.core.protocols import MarkingProtocol
from repro.harness.system import PROTOCOLS, System, SystemConfig
from repro.net.failures import CrashPlan
from repro.net.network import LatencyModel
from repro.sim.process import Process
from repro.txn.operations import ReadOp, WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy

#: protocol spec accepted by the checker: a name from
#: :data:`~repro.harness.system.PROTOCOLS` or a factory producing a fresh
#: (stateful!) protocol instance per run
ProtocolSpec = "str | Callable[[], MarkingProtocol]"


@dataclass(frozen=True)
class Scenario:
    """A named checker workload."""

    name: str
    description: str
    n_sites: int
    txn_ids: tuple[str, ...]
    #: submits the workload; returns the processes whose termination the
    #: liveness oracle asserts
    build: Callable[[System], list[Process]]


def _submit_delayed(
    system: System, spec: GlobalTxnSpec, delay: float
) -> Process:
    """Submit ``spec`` after ``delay`` time units; the returned process
    terminates when the transaction does."""

    def runner():
        yield system.env.timeout(delay)
        outcome = yield system.submit(spec)
        return outcome

    return system.env.process(runner(), name=f"submit:{spec.txn_id}")


def _build_conflict(system: System) -> list[Process]:
    t1 = GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 1)]),
        SubtxnSpec("S2", [WriteOp("k0", 1)], vote=VotePolicy.FORCE_NO),
    ])
    t2 = GlobalTxnSpec("T2", [
        SubtxnSpec("S2", [ReadOp("k0")]),
        SubtxnSpec("S1", [ReadOp("k0")]),
    ])
    return [
        system.submit(t1),
        _submit_delayed(system, t2, 4.0),
    ]


def _build_duel(system: System) -> list[Process]:
    t1 = GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 11)]),
        SubtxnSpec("S2", [WriteOp("k1", 11)], vote=VotePolicy.FORCE_NO),
    ])
    t2 = GlobalTxnSpec("T2", [
        SubtxnSpec("S2", [WriteOp("k0", 22)]),
        SubtxnSpec("S1", [WriteOp("k1", 22)], vote=VotePolicy.FORCE_NO),
    ])
    return [
        system.submit(t1),
        _submit_delayed(system, t2, 2.0),
    ]


#: when the crashcoord coordinator goes down (after votes, before decision;
#: with unit latency votes land by ~6) and for how long (far beyond every
#: protocol timeout, so only a termination protocol can decide in time)
_CRASHCOORD_AT = 6.2
_CRASHCOORD_OUTAGE = 400.0


def _build_crashcoord(system: System) -> list[Process]:
    # One acceptor down from the start: the ensemble must decide from a
    # bare majority (harmless under non-PAXOS schemes — the endpoint is
    # simply never addressed).
    system.failures.schedule(
        CrashPlan("acc.3", at=0.5, duration=_CRASHCOORD_OUTAGE)
    )
    system.failures.schedule(CrashPlan(
        "coord.T1", at=_CRASHCOORD_AT, duration=_CRASHCOORD_OUTAGE,
    ))
    t1 = GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 1)]),
        SubtxnSpec("S2", [WriteOp("k1", 1)]),
    ])
    return [system.submit(t1)]


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="conflict",
            description="writer compensated at S1, reader crossing S2->S1",
            n_sites=2,
            txn_ids=("T1", "T2"),
            build=_build_conflict,
        ),
        Scenario(
            name="duel",
            description="two crossing writers, both compensated",
            n_sites=2,
            txn_ids=("T1", "T2"),
            build=_build_duel,
        ),
        Scenario(
            name="crashcoord",
            description="coordinator down after the votes, one acceptor "
            "down throughout",
            n_sites=2,
            txn_ids=("T1",),
            build=_build_crashcoord,
        ),
    )
}


def get_scenario(name: str | Scenario) -> Scenario:
    """Resolve a scenario by name (pass-through for ready instances)."""
    if isinstance(name, Scenario):
        return name
    try:
        return SCENARIOS[name]
    except KeyError:
        valid = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {name!r}: expected one of {valid}"
        ) from None


def make_protocol(protocol: "ProtocolSpec") -> "str | MarkingProtocol":
    """Materialize the per-run protocol argument for SystemConfig.

    Factories are called per run: protocol instances are stateful (they own
    the marking directory), so sharing one across runs would leak state
    between schedules and break replay determinism.
    """
    if callable(protocol) and not isinstance(protocol, str):
        instance = protocol()
        if not isinstance(instance, MarkingProtocol):
            raise TypeError(
                f"protocol factory returned {type(instance).__name__}, "
                "expected a MarkingProtocol"
            )
        return instance
    if protocol not in PROTOCOLS:
        valid = ", ".join(sorted(PROTOCOLS))
        raise ValueError(
            f"unknown protocol {protocol!r}: expected one of {valid} "
            "or a factory"
        )
    return protocol


def make_system_config(
    scenario: Scenario,
    protocol: "ProtocolSpec",
    seed: int,
    scheme: CommitScheme = CommitScheme.O2PC,
) -> SystemConfig:
    """The checker's standard system configuration for ``scenario``.

    Fixed unit latency (no jitter) keeps message arrival times a pure
    function of send times, so the controlled scheduler's choice points are
    identical across same-vector runs; observability is always on (the
    crash enumerator and the trace renderer both ride the event bus).
    """
    return SystemConfig(
        n_sites=scenario.n_sites,
        scheme=scheme,
        protocol=make_protocol(protocol),
        seed=seed,
        latency=LatencyModel(base=1.0, jitter=0.0),
        message_loss=0.0,
        commit=CommitConfig(
            spawn_timeout=30.0,
            spawn_retry_delay=2.0,
            max_spawn_retries=10,
            vote_timeout=30.0,
            ack_timeout=15.0,
            decision_retries=5,
            decision_log_delay=0.5,
            sequential_spawn=True,
            # Competitor-scheme knobs, compressed like the 2PC timeouts:
            # a Paxos watchdog that waited the library-default 60 units
            # would outlast the whole run.
            paxos_acceptors=3,
            paxos_decision_timeout=10.0,
            short_dependency_timeout=25.0,
        ),
        observability=True,
    )
