"""The explorer: stateless search over schedules and crash points.

Every run re-executes the simulation from scratch under a
:class:`~repro.check.scheduler.ControlledEnvironment`; the run is fully
determined by ``(scenario, protocol, seed, choice vector)``.  Exhaustive
mode is a depth-first search over choice vectors: after a run that followed
prefix ``P`` and logged choices ``L``, every unexplored alternative at a
depth ``d >= len(P)`` (alternatives below ``len(P)`` belong to an ancestor)
spawns the frontier vector ``L[0..d).chosen + [alt]``.  Distinct vectors
yield distinct schedules by construction, so ``explored`` counts schedules,
not redundant re-runs.  Bounded mode replaces the DFS with ``bounded``
random walks (a seeded :class:`~repro.check.scheduler.RandomPolicy`),
deduplicated by vector — the cheap way to sample deep interleavings the
depth bound would cut off.

A failed run becomes a :class:`Counterexample` carrying the minimal choice
vector (trailing default choices stripped), every oracle verdict, and the
run's JSONL event trace; :func:`replay` re-executes it byte-for-byte.

Both search modes drain the frontier in fixed-size *waves* handed to a
runner (:mod:`repro.check.parallel`): wave composition, result order, and
budget checks are independent of how a wave is executed, so ``jobs=N``
reports are byte-identical to ``jobs=1`` (modulo ``elapsed``) — parallelism
and prefix reuse change wall-clock time only.  The one caveat is
``time_budget``: a wall-clock cutoff lands on whatever wave boundary the
host reaches in time, on any job count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.check.crashes import CrashInjector
from repro.check.oracles import Violation, run_oracles
from repro.check.parallel import WAVE_SIZE, RunRecord, make_runner
from repro.check.scheduler import (
    Choice,
    ChoicePolicy,
    ControlledEnvironment,
)
from repro.check.workloads import Scenario, get_scenario, make_system_config
from repro.commit.base import CommitScheme
from repro.errors import (
    HistoryError,
    InvalidTransactionState,
    PersistenceViolation,
    ProtocolViolation,
    SimulationDeadlock,
    StepBudgetExceeded,
)
from repro.harness.system import System


@dataclass
class CheckConfig:
    """One model-checking job."""

    scenario: "str | Scenario" = "conflict"
    #: protocol name or per-run factory (see :mod:`repro.check.workloads`)
    protocol: object = "P1"
    scheme: CommitScheme = CommitScheme.O2PC
    seed: int = 0
    #: choice points eligible for DFS branching (depth bound)
    depth: int = 12
    #: crash budget per run (0 disables the crash enumerator)
    crashes: int = 0
    #: outage length of injected crashes; must stay below the decision
    #: retransmission window or explored runs stop terminating
    crash_outage: float = 10.0
    #: crash targets; None = participant sites + coordinator endpoints
    crash_targets: Sequence[str] | None = None
    #: stop after this many schedules (the search reports ``exhausted=False``)
    max_schedules: int = 2000
    #: per-run event budget (livelock guard)
    max_steps: int = 20000
    #: partial-order pruning of commuting deliveries (see scheduler docs)
    prune: bool = True
    #: > 0: bounded mode — this many random walks instead of the DFS
    bounded: int = 0
    #: wall-clock budget in seconds (None = unbounded)
    time_budget: float | None = None
    #: serializability oracle: literal criterion instead of effective
    strict: bool = False
    #: worker processes; > 1 shards waves over a multiprocessing pool with
    #: a report byte-identical to ``jobs=1``
    jobs: int = 1
    #: simulate a shared sibling stem once and ``os.fork`` per alternative
    #: (POSIX; silently falls back to re-running where unavailable)
    prefix_reuse: bool = True
    #: cross-check the incremental conflict index against the O(n²)
    #: pairwise SG rebuild after every run (mismatch = counterexample)
    paranoid: bool = False


@dataclass
class RunOutcome:
    """One executed schedule."""

    vector: tuple[int, ...]
    log: tuple[Choice, ...]
    violations: tuple[Violation, ...]
    #: the run's system (live objects, for trace rendering / inspection)
    system: System

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class Counterexample:
    """A replayable failing schedule."""

    #: minimal choice vector: replaying it reproduces the run exactly
    choices: tuple[int, ...]
    violations: tuple[Violation, ...]
    #: the full choice log of the failing run (labels for rendering)
    log: tuple[Choice, ...]
    #: deterministic JSONL event trace of the failing run
    jsonl: str


@dataclass
class CheckReport:
    """Result of one model-checking job."""

    #: distinct schedules executed
    explored: int
    counterexamples: list[Counterexample]
    #: True when the DFS frontier drained within every budget
    exhausted: bool
    #: wall-clock seconds spent
    elapsed: float
    #: choice points seen in the first (all-defaults) run, for reporting
    first_run_choice_points: int = 0

    @property
    def ok(self) -> bool:
        return not self.counterexamples


@dataclass
class ModelChecker:
    """Drives the search described in the module docstring."""

    config: CheckConfig
    _scenario: Scenario = field(init=False)

    def __post_init__(self) -> None:
        self._scenario = get_scenario(self.config.scenario)

    # -- single-run execution -------------------------------------------------

    def execute(self, policy: ChoicePolicy) -> RunOutcome:
        """Run one schedule under ``policy``; judge it with the oracles."""
        config = self.config
        env = ControlledEnvironment(
            policy, max_steps=config.max_steps, prune=config.prune
        )
        system = System(
            make_system_config(
                self._scenario, config.protocol, config.seed,
                scheme=config.scheme,
            ),
            env=env,
        )
        if config.crashes > 0:
            targets = config.crash_targets
            if targets is None:
                targets = sorted(system.sites) + [
                    f"coord.{txn_id}" for txn_id in self._scenario.txn_ids
                ]
            CrashInjector(
                system, policy,
                budget=config.crashes,
                targets=targets,
                outage=config.crash_outage,
            )
        processes = self._scenario.build(system)
        violations: list[Violation] = []
        try:
            env.run()
        except StepBudgetExceeded as exc:
            violations.append(Violation("budget", str(exc)))
        except SimulationDeadlock as exc:
            violations.append(Violation("deadlock", str(exc)))
        except (
            ProtocolViolation,
            InvalidTransactionState,
            HistoryError,
            PersistenceViolation,
        ) as exc:
            violations.append(Violation(
                "invariant", f"{type(exc).__name__}: {exc}"
            ))
        if not violations:
            for process in processes:
                if not process.processed:
                    violations.append(Violation(
                        "liveness",
                        f"{process!r} never terminated although the event "
                        "queue drained",
                    ))
            violations.extend(run_oracles(system, strict=config.strict))
        if config.paranoid:
            from repro.sg.graph import verify_conflict_index

            try:
                verify_conflict_index(system.global_history())
            except HistoryError as exc:
                violations.append(Violation("paranoid", str(exc)))
        return RunOutcome(
            vector=policy.vector,
            log=tuple(policy.log),
            violations=tuple(violations),
            system=system,
        )

    # -- search modes -------------------------------------------------------------

    def run(self) -> CheckReport:
        """Execute the configured search (DFS or bounded random walks)."""
        # Wall-budget accounting only: elapsed time never influences which
        # schedules are explored, just when the search stops.
        started = time.monotonic()  # lint: allow-nondeterminism
        runner = make_runner(self)
        try:
            if self.config.bounded > 0:
                report = self._run_bounded(started, runner)
            else:
                report = self._run_dfs(started, runner)
        finally:
            runner.close()
        report.elapsed = (
            time.monotonic() - started  # lint: allow-nondeterminism
        )
        return report

    def _budget_left(self, started: float, explored: int) -> bool:
        if explored >= self.config.max_schedules:
            return False
        if (
            self.config.time_budget is not None
            and time.monotonic() - started  # lint: allow-nondeterminism
            >= self.config.time_budget
        ):
            return False
        return True

    def _run_dfs(self, started: float, runner) -> CheckReport:
        """Wave-based DFS: pop up to ``WAVE_SIZE`` frontier vectors, run
        them through the runner, process the records in wave order.

        Wave size is capped by the remaining schedule budget (never by the
        job count), so the frontier evolves identically for any ``jobs``.
        """
        stack: list[tuple[int, ...]] = [()]
        seen: set[tuple[int, ...]] = {()}
        explored = 0
        first_points = 0
        counterexamples: list[Counterexample] = []
        exhausted = True
        while stack:
            if not self._budget_left(started, explored):
                exhausted = False
                break
            take = min(
                len(stack), self.config.max_schedules - explored, WAVE_SIZE
            )
            wave = [stack.pop() for _ in range(take)]
            for record in runner.run_vectors(wave):
                explored += 1
                if explored == 1:
                    first_points = len(record.log)
                if record.violations:
                    counterexamples.append(_as_counterexample(record))
                for depth in range(
                    len(record.prefix),
                    min(len(record.log), self.config.depth),
                ):
                    choice = record.log[depth]
                    stem = tuple(c.chosen for c in record.log[:depth])
                    for alternative in choice.branch:
                        if alternative == choice.chosen:
                            continue
                        vector = stem + (alternative,)
                        if vector not in seen:
                            seen.add(vector)
                            stack.append(vector)
        return CheckReport(
            explored=explored,
            counterexamples=counterexamples,
            exhausted=exhausted,
            elapsed=0.0,
            first_run_choice_points=first_points,
        )

    def _run_bounded(self, started: float, runner) -> CheckReport:
        """Bounded mode in waves of walk indices (walks are reconstructible
        from their index alone, so they shard trivially)."""
        explored = 0
        first_points = 0
        seen: set[tuple[int, ...]] = set()
        counterexamples: list[Counterexample] = []
        exhausted = True
        walk = 0
        while walk < self.config.bounded and exhausted:
            take = min(WAVE_SIZE, self.config.bounded - walk)
            records = runner.run_walks(range(walk, walk + take))
            walk += take
            for record in records:
                if not self._budget_left(started, explored):
                    exhausted = False
                    break
                if record.vector in seen:
                    continue
                seen.add(record.vector)
                explored += 1
                if explored == 1:
                    first_points = len(record.log)
                if record.violations:
                    counterexamples.append(_as_counterexample(record))
        return CheckReport(
            explored=explored,
            counterexamples=counterexamples,
            exhausted=exhausted,
            elapsed=0.0,
            first_run_choice_points=first_points,
        )


def _as_counterexample(record: RunRecord) -> Counterexample:
    """Package a failing run; strips trailing default (0) choices — replay
    fills anything past the vector with defaults, so they are redundant."""
    vector = list(record.vector)
    while vector and vector[-1] == 0:
        vector.pop()
    return Counterexample(
        choices=tuple(vector),
        violations=record.violations,
        log=record.log,
        jsonl=record.jsonl or "",
    )


def replay(config: CheckConfig, choices: Sequence[int]) -> RunOutcome:
    """Re-execute one schedule from its choice vector.

    Deterministic by construction: the same config and vector reproduce the
    identical run — including a byte-identical JSONL trace — which is how
    counterexamples in the regression corpus stay diagnosable.
    """
    return ModelChecker(config).execute(ChoicePolicy(choices))
