"""Crash-point enumeration: site/coordinator crashes as choice points.

Enumerating a crash at *every* event would square the search space for no
insight — most instants are equivalent with respect to the commit protocol.
The interesting crash points are exactly the protocol transitions the paper
reasons about: immediately after a site locally commits (the O2PC exposure
window opens), after a vote, around the coordinator's decision, and during
compensation.  The :class:`CrashInjector` therefore listens on the
observability bus and turns each *protocol-significant* event into a crash
choice point, as long as the per-run crash budget is not exhausted.

Candidate 0 is always "continue"; candidate ``i > 0`` crashes one currently
up target — a participant site or a coordinator endpoint (``coord.Tn``, the
paper's motivating failure).  The chosen crash is not executed inside the
bus callback (subscribers must not mutate simulation state); instead an
URGENT, unannotated kernel event is scheduled whose callback performs the
crash before any further message delivery, and a background process recovers
the target after a fixed outage shorter than the coordinator's decision
retransmission window (so every explored run still terminates).
"""

from __future__ import annotations

from typing import Sequence

from repro.check.scheduler import ChoicePolicy
from repro.harness.system import System
from repro.obs.events import Event as ObsEvent
from repro.sim.events import Event, URGENT

#: bus event kinds that open a crash choice point (protocol transitions)
SIGNIFICANT_KINDS = (
    "subtxn.local_commit",  # O2PC exposure window opens
    "subtxn.prepare",       # 2PC in-doubt window opens
    "txn.vote",             # after a vote, before the decision
    "txn.decision",         # around the decision force-write
    "comp.start",           # mid-compensation
)


class CrashInjector:
    """Turns protocol-significant events into crash choice points."""

    def __init__(
        self,
        system: System,
        policy: ChoicePolicy,
        budget: int = 1,
        targets: Sequence[str] | None = None,
        outage: float = 10.0,
    ) -> None:
        self.system = system
        self.policy = policy
        self.remaining = budget
        self.outage = outage
        if targets is None:
            targets = sorted(system.sites)
        self.targets = list(targets)
        #: audit of injected crashes: (target, significant point label)
        self.injected: list[tuple[str, str]] = []
        if budget > 0:
            system.env.bus.subscribe(self._on_event)

    def _on_event(self, event: ObsEvent) -> None:
        if self.remaining <= 0 or event.kind not in SIGNIFICANT_KINDS:
            return
        failures = self.system.failures
        candidates = [t for t in self.targets if failures.is_up(t)]
        if not candidates:
            return
        point = f"{event.kind}:{getattr(event, 'txn_id', '?')}"
        labels = [f"continue@{point}"] + [
            f"crash:{target}@{point}" for target in candidates
        ]
        chosen = self.policy.choose("crash", labels, range(len(labels)))
        if chosen == 0:
            return
        self.remaining -= 1
        target = candidates[chosen - 1]
        self.injected.append((target, point))
        # Deferred execution: crash from a kernel callback, not from inside
        # bus.publish.  URGENT + unannotated means the crash lands before
        # any same-instant message delivery and is never itself reordered.
        trigger = Event(self.system.env)
        trigger.callbacks.append(lambda _evt, t=target: self._crash_now(t))
        self.system.env.schedule(trigger, priority=URGENT)

    def _crash_now(self, target: str) -> None:
        self.system.failures.crash(target)
        if self.outage is not None:
            self.system.env.process(
                self._recover_later(target), name=f"check-recover:{target}"
            )

    def _recover_later(self, target: str):
        yield self.system.env.timeout(self.outage)
        self.system.failures.recover(target)
