"""Oracle layer: judge one explored history against the paper's guarantees.

Each oracle replays the finished run through an existing theory/storage
component and reports :class:`Violation`\\ s.  The mapping to the paper:

* ``serializability`` — Theorem 1: the global serialization graph must have
  no cycle through regular transactions (checked per site as well: a local
  cycle would mean strict 2PL itself broke).  By default the *effective*
  criterion is used (regular = committed global transactions); ``strict``
  switches to the paper's literal criterion.
* ``atomicity`` — Theorem 2's read-from discipline: no committed transaction
  may have read a forward update of an aborted transaction at one site and
  miss it at another; compensations must cover every forward write; an
  aborted transaction must not leave a site exposed (LOCAL_COMMIT with no
  terminal record).
* ``marking`` — Section 6's bookkeeping: when the run terminates, the
  marking directory must have no in-flight transactions and no unresolved
  locally-committed marks.
* ``recovery`` — Section 5: restarting every site from its (cloned) log must
  reproduce the live store, and under O2PC must report *no in-doubt
  transactions* — the non-blocking property that motivates the protocol.
* ``nonblocking`` — Paxos Commit's defining guarantee: when a coordinator
  stays down well past the decision timeout, every participant that voted
  YES must still reach a decision within a bounded budget of the crash (the
  termination protocol needs only an acceptor majority).  2PC-family
  schemes legitimately block in that window, so the oracle applies to
  PAXOS only.
* ``liveness`` — every submitted transaction terminated before the event
  queue drained (checked by the explorer, which owns the process handles).

Oracles run on a *cloned* WAL and a fresh store where replay is involved,
because :meth:`~repro.storage.recovery.RecoveryManager.restart` appends
ABORT records for losers — the oracle must not mutate the history it judges.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.commit.base import CommitScheme
from repro.errors import ReproError
from repro.harness.system import System
from repro.sg.atomicity import (
    check_atomicity_of_compensation,
    compensation_writes_cover,
)
from repro.sg.cycles import find_local_cycle, find_regular_cycle
from repro.sg.graph import TxnKind
from repro.storage.kvstore import KVStore
from repro.storage.recovery import RecoveryManager
from repro.storage.wal import RecordType


@dataclass(frozen=True)
class Violation:
    """One oracle verdict: which guarantee broke, and how."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def run_oracles(system: System, strict: bool = False) -> list[Violation]:
    """Run every oracle over a finished run; returns all violations found."""
    violations: list[Violation] = []
    checks = (
        ("serializability", lambda: _check_serializability(system, strict)),
        ("atomicity", lambda: _check_atomicity(system)),
        ("marking", lambda: _check_marking(system)),
        ("recovery", lambda: _check_recovery(system)),
        ("nonblocking", lambda: _check_nonblocking(system)),
    )
    for name, check in checks:
        try:
            violations.extend(check())
        except ReproError as exc:
            # An oracle that cannot even evaluate (malformed history, bad
            # log) is itself evidence of a broken run.
            violations.append(
                Violation(name, f"{type(exc).__name__}: {exc}")
            )
    return violations


# -- serializability (Theorems 1 & 3) ------------------------------------------


def _check_serializability(system: System, strict: bool) -> list[Violation]:
    violations: list[Violation] = []
    gsg = system.global_sg()
    local = find_local_cycle(gsg)
    if local is not None:
        site_id, cycle = local
        violations.append(Violation(
            "serializability",
            f"local SG cycle at {site_id}: {' -> '.join(cycle)} "
            "(strict 2PL violated)",
        ))
    if strict:
        regular = gsg.nodes_of_kind(TxnKind.GLOBAL)
    else:
        regular = system.effective_regular_nodes()
    cycle = find_regular_cycle(gsg, regular)
    if cycle is not None:
        violations.append(Violation(
            "serializability",
            f"regular cycle in global SG: {' -> '.join(cycle)}",
        ))
    return violations


# -- atomicity of compensation (Theorem 2) -------------------------------------


def _check_atomicity(system: System) -> list[Violation]:
    violations: list[Violation] = []
    history = system.global_history()
    report = check_atomicity_of_compensation(history)
    for reader, forward_txn in report.violations:
        violations.append(Violation(
            "atomicity",
            f"{reader} observed {forward_txn} inconsistently across sites "
            "(read-from discipline of Theorem 2 violated)",
        ))
    for outcome in system.outcomes:
        if outcome.committed:
            continue
        if outcome.compensated_sites and not compensation_writes_cover(
            history, outcome.txn_id
        ):
            violations.append(Violation(
                "atomicity",
                f"compensation of {outcome.txn_id} does not cover its "
                "forward writes",
            ))
    violations.extend(_check_exposure(system))
    return violations


def _check_exposure(system: System) -> list[Violation]:
    """No transaction may end the run with unrevoked exposed updates."""
    violations: list[Violation] = []
    for outcome in system.outcomes:
        coordinator = system.coordinators.get(outcome.txn_id)
        if coordinator is None:
            continue
        for site_id in coordinator.spec.site_ids:
            status = system.sites[site_id].wal.status_of(outcome.txn_id)
            if outcome.committed:
                if status not in (None, RecordType.COMMIT):
                    violations.append(Violation(
                        "atomicity",
                        f"{outcome.txn_id} committed globally but its log "
                        f"status at {site_id} is {status.value}",
                    ))
            elif status is RecordType.LOCAL_COMMIT:
                violations.append(Violation(
                    "atomicity",
                    f"{outcome.txn_id} aborted globally but is still "
                    f"locally committed at {site_id} (exposed updates "
                    "never revoked)",
                ))
    return violations


# -- marking bookkeeping (Section 6) ---------------------------------------------


def _check_marking(system: System) -> list[Violation]:
    violations: list[Violation] = []
    directory = system.directory
    if directory.active:
        violations.append(Violation(
            "marking",
            "transactions still registered as in flight after the run "
            f"terminated: {sorted(directory.active)}",
        ))
    for site_id in sorted(directory.machines):
        lc_marks = directory.machines[site_id].locally_committed_set()
        if lc_marks:
            violations.append(Violation(
                "marking",
                f"{site_id} ended the run locally committed with respect "
                f"to {sorted(lc_marks)} (decision never resolved)",
            ))
    return violations


# -- crash-restart reports (Section 5) --------------------------------------------


def _check_recovery(system: System) -> list[Violation]:
    violations: list[Violation] = []
    o2pc = system.config.scheme is CommitScheme.O2PC
    for site_id in sorted(system.sites):
        site = system.sites[site_id]
        # Clone the log: restart() appends ABORT records for losers, and
        # the oracle must not mutate the history it is judging.
        replayed = KVStore(site_id=f"{site_id}.replay")
        report = RecoveryManager(replayed, copy.deepcopy(site.wal)).restart()
        if o2pc and report.in_doubt:
            violations.append(Violation(
                "recovery",
                f"restart at {site_id} reports in-doubt transactions "
                f"{sorted(report.in_doubt)} under O2PC (a YES vote must "
                "locally commit, never block)",
            ))
        for key, value in replayed.items():
            if site.marks_key is not None and key == site.marks_key:
                continue
            live = site.store.get_or(key, _MISSING)
            if live is not _MISSING and live != value:
                violations.append(Violation(
                    "recovery",
                    f"replaying {site_id}'s log yields {key}={value!r} "
                    f"but the live store holds {live!r}",
                ))
    return violations


# -- non-blocking termination (Paxos Commit) ---------------------------------------


#: slack on top of ``paxos_decision_timeout`` before a missing decision
#: counts as blocking: watchdog stagger across participants, a couple of
#: termination rounds at unit latency, and one participant crash/recover
#: cycle injected by the enumerator mid-window
_NONBLOCKING_SLACK = 60.0


def _check_nonblocking(system: System) -> list[Violation]:
    """Decisions must not wait for the crashed coordinator (PAXOS only).

    For every coordinator outage that lasted at least the decision budget
    (``paxos_decision_timeout`` + slack), each participant that voted YES
    on that transaction must have applied a decision before the budget ran
    out.  Shorter outages are vacuous: the coordinator came back in time
    to finish the protocol itself, so no termination duty arises.
    """
    if system.config.scheme is not CommitScheme.PAXOS:
        return []
    violations: list[Violation] = []
    budget = (
        system.config.commit.paxos_decision_timeout + _NONBLOCKING_SLACK
    )
    for outage in system.failures.outages:
        if not outage.site_id.startswith("coord."):
            continue
        txn_id = outage.site_id[len("coord."):]
        deadline = outage.start + budget
        end = float("inf") if outage.end is None else outage.end
        if end < deadline:
            continue
        for site_id in sorted(system.participants):
            state = system.participants[site_id].subtxns.get(txn_id)
            if state is None or state.voted != "YES":
                continue
            if state.decided is None:
                violations.append(Violation(
                    "nonblocking",
                    f"{site_id} voted YES on {txn_id} but never decided "
                    f"although its coordinator was down from "
                    f"{outage.start:g} past the termination budget "
                    f"(t={deadline:g}) — Paxos Commit must not block",
                ))
            elif state.decided_at is not None and state.decided_at > deadline:
                violations.append(Violation(
                    "nonblocking",
                    f"{site_id} decided {txn_id} only at "
                    f"t={state.decided_at:g}, after the termination budget "
                    f"(t={deadline:g}) of the coordinator outage starting "
                    f"at {outage.start:g} — it blocked on recovery instead "
                    "of running the termination protocol",
                ))
    return violations


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
