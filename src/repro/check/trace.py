"""Render counterexamples as minimal, replayable event traces.

A counterexample is presented in three parts: the oracle verdicts, the
choice vector (with the label of each non-default decision — what the
schedule *did differently*), and the protocol-significant slice of the
run's event trace.  The full JSONL trace stays attached to the
counterexample object for byte-level comparison; the rendering here is the
human-facing summary.
"""

from __future__ import annotations

import json

from repro.check.crashes import SIGNIFICANT_KINDS
from repro.check.explorer import Counterexample

#: event kinds worth showing in a rendered trace (protocol transitions plus
#: submission/termination book-ends and failure events)
_TRACE_KINDS = SIGNIFICANT_KINDS + (
    "txn.submit",
    "txn.end",
    "subtxn.reject",
    "comp.end",
    "site.crash",
    "site.recover",
)


def render_trace(jsonl: str, kinds: tuple[str, ...] = _TRACE_KINDS) -> str:
    """The protocol-significant slice of a JSONL event trace."""
    lines = []
    for raw in jsonl.splitlines():
        if not raw:
            continue
        event = json.loads(raw)
        if event.get("kind") not in kinds:
            continue
        ts = event.pop("ts", 0.0)
        kind = event.pop("kind")
        event.pop("seq", None)
        detail = " ".join(
            f"{key}={event[key]}" for key in sorted(event)
        )
        lines.append(f"  t={ts:<8g} {kind:<20} {detail}")
    return "\n".join(lines)


def render_counterexample(counterexample: Counterexample) -> str:
    """Human-facing summary of one failing schedule."""
    parts = ["violations:"]
    for violation in counterexample.violations:
        parts.append(f"  {violation}")
    parts.append(f"replay vector: {list(counterexample.choices)}")
    decisions = [
        choice for choice in counterexample.log
        if choice.chosen != 0 or choice.index < len(counterexample.choices)
    ]
    if decisions:
        parts.append("decisions:")
        for choice in decisions:
            parts.append(
                f"  [{choice.index}] {choice.kind}: "
                f"{choice.labels[choice.chosen]} "
                f"(of {len(choice.labels)} candidates)"
            )
    trace = render_trace(counterexample.jsonl)
    if trace:
        parts.append("trace:")
        parts.append(trace)
    return "\n".join(parts)
