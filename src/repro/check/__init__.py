"""Protocol model checker: schedule & crash-point exploration with oracles.

The checker re-executes the deterministic simulation from scratch for every
schedule (stateless search).  A :class:`~repro.check.scheduler.ControlledEnvironment`
replaces the kernel's FIFO tie-breaking with an explicit *choice point*
whenever several annotated message deliveries are ready at the same instant;
a :class:`~repro.check.crashes.CrashInjector` turns protocol-significant
events into crash choice points.  Every run is fully determined by its
*choice vector*, so a counterexample is replayable byte-for-byte from the
seed and the vector alone.

Explored histories are judged by the oracle layer
(:mod:`repro.check.oracles`), which replays them through the theory layer:
serialization-graph regular-cycle freedom (Theorem 1), atomicity of
compensation (Theorem 2's read-from discipline), marking-rule bookkeeping
(R1-R3, UDUM1), and crash-restart reports (no in-doubt under O2PC).
"""

from repro.check.crashes import SIGNIFICANT_KINDS, CrashInjector
from repro.check.explorer import (
    CheckConfig,
    CheckReport,
    Counterexample,
    ModelChecker,
    RunOutcome,
    replay,
)
from repro.check.oracles import Violation, run_oracles
from repro.check.parallel import WAVE_SIZE, RunRecord
from repro.check.scheduler import (
    Choice,
    ChoicePolicy,
    ControlledEnvironment,
    RandomPolicy,
)
from repro.check.trace import render_counterexample, render_trace
from repro.check.workloads import SCENARIOS, Scenario, get_scenario

__all__ = [
    "SIGNIFICANT_KINDS",
    "CrashInjector",
    "CheckConfig",
    "CheckReport",
    "Counterexample",
    "ModelChecker",
    "RunOutcome",
    "RunRecord",
    "WAVE_SIZE",
    "replay",
    "Violation",
    "run_oracles",
    "Choice",
    "ChoicePolicy",
    "ControlledEnvironment",
    "RandomPolicy",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "render_counterexample",
    "render_trace",
]
