"""The controlled scheduler: interleaving enumeration over the sim kernel.

The plain :class:`~repro.sim.engine.Environment` breaks ties among
simultaneous events by ``(priority, sequence)`` — a fixed, arbitrary order.
:class:`ControlledEnvironment` overrides :meth:`step` so that whenever the
set of events ready at the minimal timestamp contains *several annotated
message deliveries* (see ``Event.annotation``, set by the network), the
delivery to process first becomes an explicit **choice point** resolved by a
:class:`ChoicePolicy`.  Internal events (process resumptions, timeouts) are
never reordered: they are deterministic consequences of earlier choices, so
branching on them would only enumerate the same history many times.

Determinism contract: a run is a pure function of ``(seed, choice vector)``.
The policy records every choice it makes in :attr:`ChoicePolicy.log`; the
explorer replays a prefix of a previous log and branches on the first free
choice (stateless depth-first search).  Nothing in a choice label may depend
on process-global mutable state (e.g. ``Message.seq``) — labels are built
from message type, endpoints, and transaction ids only.

Partial-order pruning: two deliveries to *different* recipients at the same
instant commute in the message-passing sense — each recipient consumes its
own inbox — so exploring both orders would mostly duplicate histories.  With
``prune=True`` (default) the branch set keeps index 0 plus every delivery
whose recipient appears at least twice in the ready set.  This is a
heuristic, not a soundness-preserving sleep set: deliveries to different
sites can still race through the *shared* marking directory, so a full
search passes ``prune=False`` (the checker CLI's ``--no-prune``).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ScheduleDivergence, StepBudgetExceeded
from repro.sim.engine import Environment
from repro.sim.rng import Rng


@dataclass(frozen=True)
class Choice:
    """One recorded decision of a controlled run."""

    #: position in the run's choice log (0-based)
    index: int
    #: "deliver" (message ordering) or "crash" (failure injection)
    kind: str
    #: human-readable candidate labels, one per alternative
    labels: tuple[str, ...]
    #: index of the candidate that was taken
    chosen: int
    #: candidate indices worth exploring (after pruning), including chosen
    branch: tuple[int, ...]


class ChoicePolicy:
    """Replays a choice-vector prefix, then picks defaults (DFS baseline).

    Subclasses override :meth:`_pick_free` to change what happens *past* the
    prefix; the prefix-replay and logging machinery is shared, which is what
    makes counterexamples replayable by construction.
    """

    def __init__(self, prefix: Sequence[int] = ()) -> None:
        self.prefix = tuple(prefix)
        #: every choice point encountered, in order
        self.log: list[Choice] = []

    def choose(
        self, kind: str, labels: Sequence[str], branch: Sequence[int]
    ) -> int:
        """Resolve one choice point; returns the chosen candidate index."""
        index = len(self.log)
        if index < len(self.prefix):
            chosen = self.prefix[index]
            if chosen >= len(labels):
                raise ScheduleDivergence(
                    f"choice {index}: prefix wants candidate {chosen} but "
                    f"only {len(labels)} are ready ({list(labels)!r}) — "
                    "the replayed run diverged from the recorded one"
                )
        else:
            chosen = self._pick_free(kind, labels, branch)
        self.log.append(Choice(
            index=index,
            kind=kind,
            labels=tuple(labels),
            chosen=chosen,
            branch=tuple(branch),
        ))
        return chosen

    def _pick_free(
        self, kind: str, labels: Sequence[str], branch: Sequence[int]
    ) -> int:
        return 0

    @property
    def vector(self) -> tuple[int, ...]:
        """The full choice vector of the run so far."""
        return tuple(choice.chosen for choice in self.log)


class RandomPolicy(ChoicePolicy):
    """Bounded mode: free choices are drawn from a seeded RNG.

    Crash choice points are biased — index 0 ("continue") is taken with
    probability ``1 - crash_probability`` — because a uniform draw over
    (continue + one alternative per site) would crash nearly every run.
    """

    def __init__(
        self,
        rng: Rng,
        crash_probability: float = 0.25,
        prefix: Sequence[int] = (),
    ) -> None:
        super().__init__(prefix)
        self.rng = rng
        self.crash_probability = crash_probability

    def _pick_free(
        self, kind: str, labels: Sequence[str], branch: Sequence[int]
    ) -> int:
        if kind == "crash":
            alternatives = [i for i in branch if i != 0]
            if alternatives and self.rng.chance(self.crash_probability):
                return self.rng.choice(alternatives)
            return 0
        return self.rng.choice(list(branch))


class ControlledEnvironment(Environment):
    """Environment whose tie-breaking among ready deliveries is a policy.

    ``max_steps`` bounds one run (a schedule that livelocks the protocol
    raises :class:`~repro.errors.StepBudgetExceeded` instead of hanging the
    search); ``prune`` enables the commuting-deliveries heuristic described
    in the module docstring.
    """

    #: the controlled scheduler is the one consumer of delivery annotations
    annotate_deliveries = True

    #: ``_select`` re-sorts the ready set through ``self._queue`` directly,
    #: so this subclass keeps the flat-heap kernel (see engine docstring)
    _FORCE_HEAP = True

    def __init__(
        self,
        policy: ChoicePolicy,
        max_steps: int | None = None,
        prune: bool = True,
    ) -> None:
        super().__init__()
        self.policy = policy
        self.max_steps = max_steps
        self.prune = prune
        #: events processed so far (the per-run budget's denominator)
        self.steps = 0

    def step(self) -> None:
        if not self._queue:
            self._raise_deadlock("no scheduled events")
        if self.max_steps is not None and self.steps >= self.max_steps:
            raise StepBudgetExceeded(
                f"run exceeded {self.max_steps} steps at t={self._now}"
            )
        self.steps += 1
        entry = self._select()
        self._now = entry[0]
        self._dispatch(entry[3])

    # -- ready-set selection ---------------------------------------------------

    def _select(self):
        """Pop the next entry, branching when several deliveries are ready."""
        time = self._queue[0][0]
        ready = []
        while self._queue and self._queue[0][0] == time:
            ready.append(heapq.heappop(self._queue))
        if len(ready) == 1:
            return ready[0]
        # Internal events first: they are scheduled consequences of earlier
        # choices, and URGENT process resumptions must run before any
        # delivery at the same instant (kernel invariant).
        internal = [e for e in ready if e[3].annotation is None]
        if internal:
            chosen = internal[0]  # heap pop order: (priority, sequence)
        else:
            chosen = self._choose_delivery(ready)
        for entry in ready:
            if entry is not chosen:
                heapq.heappush(self._queue, entry)
        return chosen

    def _choose_delivery(self, ready: list) -> object:
        """Ask the policy which of several ready deliveries goes first."""
        labels = [entry[3].annotation[2] for entry in ready]
        recipients = [entry[3].annotation[1] for entry in ready]
        if self.prune:
            counts = Counter(recipients)
            branch = [
                i for i in range(len(ready))
                if i == 0 or counts[recipients[i]] > 1
            ]
        else:
            branch = list(range(len(ready)))
        if len(branch) == 1:
            # Pruned to a single candidate: not a real choice point, so it
            # is not recorded (recorded trivial points would bloat every
            # vector and the DFS frontier with no-ops).
            return ready[0]
        chosen = self.policy.choose("deliver", labels, branch)
        return ready[chosen]
