"""Database operations for both decomposition models.

Generic model: :class:`ReadOp` and :class:`WriteOp` — arbitrary reads and
writes with no predefined semantics.  Compensation for these falls back to
installing before-images.

Restricted model: :class:`SemanticOp` — a named operation from a site's
registered repertoire (e.g. ``deposit``, ``insert``); the registry knows how
to apply it and how to build its semantic inverse, so compensation is a
counter-operation rather than a state restoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union


@dataclass(frozen=True, slots=True)
class ReadOp:
    """Read the value of ``key`` (shared lock)."""

    key: str

    def __repr__(self) -> str:
        return f"r[{self.key}]"


@dataclass(frozen=True, slots=True)
class WriteOp:
    """Write ``value`` to ``key`` (exclusive lock)."""

    key: str
    value: Any = None

    def __repr__(self) -> str:
        return f"w[{self.key}={self.value!r}]"


@dataclass(frozen=True, slots=True)
class SemanticOp:
    """Apply the registered semantic operation ``name`` to ``key``.

    Semantic operations read and update their data item (exclusive lock).
    ``params`` are the operation's arguments (e.g. ``{"amount": 50}``).
    """

    name: str
    key: str
    params: dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        # The params dict is unhashable, and its *values* may be too (an
        # ``insert`` can carry a list or dict payload).  Hash a repr-stable
        # key instead: sort by parameter name and take each value's repr.
        # Equal ops (dataclass __eq__ compares params by value) have equal
        # item reprs, so the hash/eq contract holds.
        return hash((
            self.name,
            self.key,
            tuple(sorted((k, repr(v)) for k, v in self.params.items())),
        ))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.name}[{self.key}]({args})"


Op = Union[ReadOp, WriteOp, SemanticOp]


def keys_of(ops: list[Op]) -> set[str]:
    """All keys touched by a list of operations."""
    return {op.key for op in ops}


def is_read_only(ops: list[Op]) -> bool:
    """True when every operation is a plain read."""
    return all(isinstance(op, ReadOp) for op in ops)
