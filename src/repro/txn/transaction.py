"""Transaction specifications, statuses, and outcomes.

A global transaction is submitted as a :class:`GlobalTxnSpec`: one
:class:`SubtxnSpec` per site (Section 3.1).  Specs also carry test/benchmark
hooks — a forced vote per site (to inject abort votes deterministically) and
a ``real_action`` flag marking non-compensatable subtransactions (Section 2:
such sites must hold locks until the decision, as in distributed 2PL).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.txn.operations import Op


class TxnStatus(enum.Enum):
    """Life-cycle states of a (sub)transaction."""

    ACTIVE = "ACTIVE"
    #: voted YES under standard 2PC; locks held awaiting decision
    PREPARED = "PREPARED"
    #: voted YES under O2PC; locks released, updates exposed
    LOCALLY_COMMITTED = "LOCALLY_COMMITTED"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"
    #: locally committed, then the global decision was ABORT and the
    #: compensating subtransaction has completed
    COMPENSATED = "COMPENSATED"


class VotePolicy(enum.Enum):
    """How a participant votes for a subtransaction (test/workload hook)."""

    #: vote YES if execution succeeded (the normal behavior)
    AUTO = "AUTO"
    #: vote NO regardless (models a unilateral local abort at vote time)
    FORCE_NO = "FORCE_NO"


@dataclass
class SubtxnSpec:
    """One site's share of a global transaction."""

    site_id: str
    ops: list[Op]
    #: non-compensatable subtransaction: locks held until decision
    real_action: bool = False
    vote: VotePolicy = VotePolicy.AUTO


@dataclass
class GlobalTxnSpec:
    """A global transaction: subtransactions for two or more sites."""

    txn_id: str
    subtxns: list[SubtxnSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for sub in self.subtxns:
            if sub.site_id in seen:
                raise ValueError(
                    f"{self.txn_id}: duplicate subtransaction at {sub.site_id}"
                )
            seen.add(sub.site_id)

    @property
    def site_ids(self) -> list[str]:
        """Sites this transaction executes at, in spec order."""
        return [sub.site_id for sub in self.subtxns]

    def subtxn_at(self, site_id: str) -> SubtxnSpec:
        """The subtransaction spec for ``site_id``."""
        for sub in self.subtxns:
            if sub.site_id == site_id:
                return sub
        raise KeyError(f"{self.txn_id} has no subtransaction at {site_id}")


@dataclass
class TxnOutcome:
    """Result of running one global transaction through a commit protocol.

    Captured by the coordinator and consumed by the metrics layer.
    """

    txn_id: str
    committed: bool
    #: simulation time the transaction was submitted
    start_time: float = 0.0
    #: time the coordinator reached its decision
    decision_time: float = 0.0
    #: time the transaction fully terminated everywhere (incl. compensation)
    end_time: float = 0.0
    #: sites that voted NO
    no_votes: list[str] = field(default_factory=list)
    #: sites where a compensating subtransaction ran
    compensated_sites: list[str] = field(default_factory=list)
    #: number of R1 rejections (protocol P1/P2 retries) encountered
    rejections: int = 0

    @property
    def latency(self) -> float:
        """Submission-to-termination latency."""
        return self.end_time - self.start_time
