"""The local transaction manager: strict 2PL execution at one site.

All transaction classes run through this manager — independent local
transactions, subtransactions of global transactions, and compensating
subtransactions (which the paper mandates are scheduled *as local
transactions*, Section 3.2).  The differences between them live entirely in
the termination paths:

* local transactions: :meth:`commit` (release at commit — strict 2PL);
* subtransactions under distributed 2PL: :meth:`prepare` then
  :meth:`complete_commit` / :meth:`rollback_subtxn` on the decision;
* subtransactions under O2PC: :meth:`local_commit` at vote time (early
  release), then :meth:`complete_commit` on COMMIT or a compensating
  subtransaction on ABORT;
* rollback of a subtransaction is *recorded in the history as its
  compensating transaction* ``CT_i`` — the paper models standard roll-back
  as the degenerate case of compensation.

Execution methods are generators: they yield lock events and must run inside
a simulation process.  :class:`~repro.errors.DeadlockDetected` propagates to
the caller, which decides whether to abort (local transactions, forward
subtransactions) or retry (compensations — persistence of compensation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import InvalidTransactionState, TransactionAborted
from repro.ids import compensation_id
from repro.locking.modes import LockMode
from repro.storage.kvstore import TOMBSTONE
from repro.storage.wal import RecordType
from repro.txn.operations import Op, ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import TxnStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.txn.site import Site

#: sentinel: "no precomputed before-image" (None is a real image)
_MISSING = object()


class LocalTransactionManager:
    """Executes transactions against one site under strict 2PL."""

    #: methods whose WAL append is a *force point* (``force=True``): the
    #: record must be durable before any message revealing its outcome is
    #: sent.  ``repro lint``'s ``flow/force-point-drift`` rule verifies this
    #: list against the method bodies in both directions, so a refactor
    #: that drops (or adds) a forced append shows up at lint time.
    _FORCE_POINTS = (
        "commit",
        "abort_local",
        "prepare",
        "local_commit",
        "complete_commit",
        "rollback_subtxn",
        "commit_recovered",
        "abort_recovered",
        "mark_compensated",
    )

    def __init__(self, site: "Site") -> None:
        self.site = site
        #: current status of every transaction seen at this site
        self.status: dict[str, TxnStatus] = {}
        #: recorded semantic inverses, newest last (restricted model)
        self._inverses: dict[str, list[SemanticOp]] = {}
        #: unified undo program, one entry per forward update in order:
        #: the semantic inverse for semantic operations, a before-image
        #: restoring write for generic ones.  Applying it in reverse undoes
        #: the transaction even when semantic and generic updates interleave
        #: on the same key.
        self._undo_program: dict[str, list[Op]] = {}
        #: values returned by reads, per transaction (for workloads)
        self.read_results: dict[str, dict[str, Any]] = {}

    # -- life cycle ------------------------------------------------------------

    def begin(self, txn_id: str) -> None:
        """Start a transaction at this site."""
        if self.status.get(txn_id) is TxnStatus.ACTIVE:
            raise InvalidTransactionState(f"{txn_id} already active")
        self.site.wal.append(RecordType.BEGIN, txn_id)
        self.status[txn_id] = TxnStatus.ACTIVE
        self._inverses[txn_id] = []
        self._undo_program[txn_id] = []
        self.read_results[txn_id] = {}

    def is_active(self, txn_id: str) -> bool:
        """True while the transaction may execute operations here."""
        return self.status.get(txn_id) is TxnStatus.ACTIVE

    # -- operation execution -----------------------------------------------------

    def execute(self, txn_id: str, op: Op):
        """Execute one operation (generator; yields lock events).

        Raises :class:`DeadlockDetected` if this transaction is chosen as a
        deadlock victim while blocked.
        """
        if not self.is_active(txn_id):
            raise InvalidTransactionState(
                f"{txn_id} is {self.status.get(txn_id)} at {self.site.site_id}"
            )
        if isinstance(op, ReadOp):
            yield from self._acquire(txn_id, op.key, LockMode.S)
            value = self.site.store.get_or(op.key)
            self.site.history.read(txn_id, op.key)
            self.read_results[txn_id][op.key] = value
            return value
        if isinstance(op, WriteOp):
            yield from self._acquire(txn_id, op.key, LockMode.X)
            # One store lookup serves both undo structures: the captured
            # image goes into the undo program (None = "key was absent",
            # undone by the delete path) and, untranslated, into the WAL
            # record as the before-image.
            before = self.site.store.snapshot_read(op.key)
            self._undo_program[txn_id].append(
                WriteOp(op.key, None if before is TOMBSTONE else before)
            )
            self._logged_write(txn_id, op.key, op.value, before)
            return op.value
        if isinstance(op, SemanticOp):
            yield from self._acquire(txn_id, op.key, LockMode.X)
            before = self.site.store.get_or(op.key)
            self.site.history.read(txn_id, op.key)
            after = self.site.registry.apply(op, before)
            if self.site.registry.is_compensatable(op):
                inverse = self.site.registry.invert(op, before)
                self._inverses[txn_id].append(inverse)
                self._undo_program[txn_id].append(inverse)
            else:
                # Real action executed anyway (the participant is expected
                # to have held locks): fall back to state restoration.
                self._undo_program[txn_id].append(WriteOp(op.key, before))
            self._logged_write(txn_id, op.key, after)
            return after
        raise TypeError(f"unknown operation {op!r}")

    def _acquire(self, txn_id: str, key: str, mode: LockMode):
        """Acquire a lock, wait out the processing time, and re-check that
        the transaction is still alive (generator).

        While blocked, the transaction may have been rolled back by an
        abort decision; a request granted in the same instant must not let
        the dead transaction keep executing — the roll-back already
        released everything, so the only correct move is to unwind.
        """
        yield self.site.locks.acquire(txn_id, key, mode)
        yield from self._work()
        if not self.is_active(txn_id):
            raise TransactionAborted(
                txn_id, f"rolled back while blocked on {key}"
            )

    def _work(self):
        """Simulated per-operation processing time (generator)."""
        if self.site.op_duration > 0:
            yield self.site.env.timeout(self.site.op_duration)

    def run_ops(self, txn_id: str, ops: list[Op]):
        """Execute a list of operations in order (generator)."""
        results = []
        for op in ops:
            result = yield from self.execute(txn_id, op)
            results.append(result)
        return results

    def _logged_write(
        self, txn_id: str, key: str, value: Any, before: Any = _MISSING
    ) -> None:
        if before is _MISSING:
            before = self.site.store.snapshot_value(key)
        self.site.wal.append(
            RecordType.UPDATE, txn_id, key=key, before=before, after=value,
        )
        if value is None:
            self.site.store.delete(key)
        else:
            self.site.store.put(key, value)
        self.site.history.write(txn_id, key)

    # -- termination: local transactions --------------------------------------------

    def commit(self, txn_id: str) -> None:
        """Commit a local transaction: log, record, release (strict 2PL)."""
        self._require_active(txn_id)
        self.site.wal.append(RecordType.COMMIT, txn_id, force=True)
        self.site.history.commit(txn_id)
        self.status[txn_id] = TxnStatus.COMMITTED
        self.site.locks.release_all(txn_id)

    def abort_local(self, txn_id: str) -> None:
        """Abort a local transaction: plain undo, expunged from the SG.

        Strict 2PL guarantees nothing read the undone updates, so the
        history simply forgets the transaction (committed projection).
        """
        self._require_active(txn_id)
        self.site.locks.cancel(txn_id)
        for record in reversed(self.site.wal.updates_for(txn_id)):
            assert record.key is not None
            self.site.store.apply_image(record.key, record.before)
        self.site.wal.append(RecordType.ABORT, txn_id, force=True)
        self.site.history.expunge(txn_id)
        self.status[txn_id] = TxnStatus.ABORTED
        self.site.locks.release_all(txn_id)
        self.site.locks.forget(txn_id)

    # -- termination: subtransactions ----------------------------------------------

    def prepare(self, txn_id: str, release_read_locks: bool = True) -> None:
        """Enter the prepared state (standard 2PC YES vote): force-log,
        keep the write locks.

        Shared locks may be dropped now — the paper's Section 2: "It is
        possible to release the shared (i.e., read) locks as soon as the
        VOTE-REQ message is received."  Only exclusive locks must survive
        to the decision (cascading-abort avoidance concerns writes only).
        """
        self._require_active(txn_id)
        self.site.wal.append(RecordType.PREPARE, txn_id, force=True)
        self.status[txn_id] = TxnStatus.PREPARED
        if release_read_locks:
            for key, mode in sorted(self.site.locks.locks_of(txn_id).items()):
                if mode is LockMode.S:
                    self.site.locks.release(txn_id, key)

    def local_commit(self, txn_id: str) -> None:
        """O2PC YES vote: locally commit and release all locks at once."""
        self._require_active(txn_id)
        self.site.wal.append(RecordType.PREPARE, txn_id, force=True)
        self.site.wal.append(RecordType.LOCAL_COMMIT, txn_id, force=True)
        self.site.history.commit(txn_id)
        self.status[txn_id] = TxnStatus.LOCALLY_COMMITTED
        self.site.locks.release_all(txn_id)

    def complete_commit(self, txn_id: str) -> None:
        """Apply a global COMMIT decision.

        Under distributed 2PL this is the point where locks are finally
        released; under O2PC the locks are already gone and only the log
        record and status change remain.
        """
        status = self.status.get(txn_id)
        if status is TxnStatus.PREPARED:
            self.site.history.commit(txn_id)
            self.site.locks.release_all(txn_id)
        elif status is not TxnStatus.LOCALLY_COMMITTED:
            raise InvalidTransactionState(
                f"cannot commit {txn_id} in state {status}"
            )
        self.site.wal.append(RecordType.COMMIT, txn_id, force=True)
        self.status[txn_id] = TxnStatus.COMMITTED

    def rollback_subtxn(self, txn_id: str) -> str:
        """Undo a not-yet-locally-committed subtransaction.

        The roll-back is the degenerate compensating subtransaction
        ``CT_i`` (Section 3.2): its restoring writes are recorded in the
        history under the compensation id, which the SG layer then
        serializes after ``T_i``.  Returns the compensation id.
        """
        status = self.status.get(txn_id)
        if status not in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
            raise InvalidTransactionState(
                f"cannot roll back {txn_id} in state {status}"
            )
        ct_id = compensation_id(txn_id)
        self.site.locks.cancel(txn_id)
        updates = self.site.wal.updates_for(txn_id)
        if updates or self.site.marks_key:
            self.site.wal.append(RecordType.BEGIN, ct_id)
            for record in reversed(updates):
                assert record.key is not None
                self._undo_write(ct_id, record.key, record.before)
            if self.site.marks_key:
                # Rule R2: updating sitemarks.k is the last operation of
                # CT_ik.  The roll-back runs under the forward
                # transaction's locks, so the write is recorded directly;
                # its conflicts give Lemma 5 its CT_i -> T_j edges when the
                # marking sets are locked data items.
                self.site.history.write(ct_id, self.site.marks_key)
            self.site.wal.append(RecordType.COMMIT, ct_id, force=True)
            self.site.history.commit(ct_id)
        self.site.wal.append(RecordType.ABORT, txn_id, force=True)
        self.site.history.abort(txn_id)
        self.status[txn_id] = TxnStatus.ABORTED
        self.status[ct_id] = TxnStatus.COMMITTED
        self.site.locks.release_all(txn_id)
        self.site.locks.forget(txn_id)
        return ct_id

    def _undo_write(self, ct_id: str, key: str, image: Any) -> None:
        """One restoring write of a roll-back, recorded under the CT id.

        The undo happens under the *forward* transaction's locks (still
        held), so no locks are acquired for ``ct_id`` here.
        """
        before = self.site.store.snapshot_value(key)
        self.site.wal.append(
            RecordType.UPDATE, ct_id, key=key, before=before, after=image,
        )
        self.site.store.apply_image(key, image)
        self.site.history.write(ct_id, key)

    # -- crash recovery: in-doubt and locally-committed transactions -------------

    def recover_in_doubt(self, txn_id: str):
        """Re-install a prepared transaction after a crash (generator).

        A restarted participant must honor its YES vote: it re-acquires
        exclusive locks on every item the transaction updated (from the
        log's undo chain) and waits for the coordinator's decision.  The
        lock table is empty right after restart, so the grants are
        immediate unless another recovered transaction claimed a key first.
        """
        self.status[txn_id] = TxnStatus.PREPARED
        keys = sorted({
            record.key for record in self.site.wal.updates_for(txn_id)
            if record.key is not None
        })
        for key in keys:
            yield self.site.locks.acquire(txn_id, key, LockMode.X)

    def recover_locally_committed(self, txn_id: str) -> None:
        """Re-install an O2PC locally-committed transaction after a crash.

        Restart recovery already redid its updates (local commitment made
        them durable obligations); no locks are due — the site only awaits
        the decision, compensating on ABORT as usual.
        """
        self.status[txn_id] = TxnStatus.LOCALLY_COMMITTED

    def commit_recovered(self, txn_id: str) -> None:
        """COMMIT decision for a recovered in-doubt transaction.

        The restart pass did not redo in-doubt updates (their fate was
        unknown); apply the after-images now, then finalize.
        """
        if self.status.get(txn_id) is not TxnStatus.PREPARED:
            raise InvalidTransactionState(
                f"{txn_id} is not a recovered in-doubt transaction"
            )
        for record in self.site.wal.updates_for(txn_id):
            assert record.key is not None
            self.site.store.apply_image(record.key, record.after)
        self.site.wal.append(RecordType.COMMIT, txn_id, force=True)
        self.status[txn_id] = TxnStatus.COMMITTED
        self.site.locks.release_all(txn_id)

    def abort_recovered(self, txn_id: str) -> None:
        """ABORT decision for a recovered in-doubt transaction.

        The wiped store never got the updates back, so there is nothing to
        undo — log the abort and free the re-acquired locks.
        """
        if self.status.get(txn_id) is not TxnStatus.PREPARED:
            raise InvalidTransactionState(
                f"{txn_id} is not a recovered in-doubt transaction"
            )
        self.site.wal.append(RecordType.ABORT, txn_id, force=True)
        self.site.history.abort(txn_id)
        self.status[txn_id] = TxnStatus.ABORTED
        self.site.locks.release_all(txn_id)

    # -- compensation support -------------------------------------------------------

    def recorded_inverses(self, txn_id: str) -> list[SemanticOp]:
        """Semantic inverses recorded during forward execution, newest first."""
        return list(reversed(self._inverses.get(txn_id, [])))

    def undo_program(self, txn_id: str) -> list[Op]:
        """The transaction's undo program, in application (reverse) order.

        One step per forward update — semantic inverses where registered,
        before-image writes otherwise — correct even when semantic and
        generic updates interleave on the same key.  Empty after a crash
        (it is volatile); callers fall back to the WAL's before-images.
        """
        return list(reversed(self._undo_program.get(txn_id, [])))

    def forward_before_images(self, txn_id: str) -> list[tuple[str, Any]]:
        """(key, before image) pairs of the forward updates, newest first."""
        return [
            (r.key, r.before)
            for r in reversed(self.site.wal.updates_for(txn_id))
            if r.key is not None
        ]

    def mark_compensated(self, txn_id: str) -> None:
        """Record that the locally-committed ``txn_id`` was compensated-for."""
        self.site.wal.append(
            RecordType.COMPENSATION, txn_id, force=True
        )
        self.site.wal.append(RecordType.ABORT, txn_id, force=True)
        self.status[txn_id] = TxnStatus.COMPENSATED

    # -- crash support -----------------------------------------------------------------

    def abandon_all(self) -> None:
        """Drop in-flight transactions after a crash (their undo happens in
        restart recovery, not here).

        ACTIVE transactions' recorded operations are expunged from the
        history: strict 2PL guarantees nothing read their updates (locks
        were held until the crash destroyed them), so the crash leaves the
        committed projection as if they never executed — which is exactly
        what restart recovery makes true in the store.  PREPARED
        transactions keep their operations: they are in-doubt and may yet
        commit.
        """
        for txn_id, status in list(self.status.items()):
            if status is TxnStatus.ACTIVE:
                self.site.history.expunge(txn_id)
            if status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
                self.status[txn_id] = TxnStatus.ABORTED

    # -- helpers --------------------------------------------------------------------------

    def _require_active(self, txn_id: str) -> None:
        if not self.is_active(txn_id):
            raise InvalidTransactionState(
                f"{txn_id} is {self.status.get(txn_id)} at {self.site.site_id}"
            )
