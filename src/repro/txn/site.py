"""A site: one autonomous DBMS in the (multi)database system.

``Site`` is a composition root bundling the storage engine, write-ahead log,
lock manager, recovery manager, history recorder, and semantic-operation
registry, plus the :class:`~repro.txn.local_manager.LocalTransactionManager`
that executes transactions against them.

Crash modeling: :meth:`crash` wipes volatile state (store contents, lock
table, in-flight transactions); :meth:`restart` replays the WAL through the
recovery manager.  The WAL itself survives — it is the durable state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.locking.manager import LockManager
from repro.sg.history import SiteHistory
from repro.sim.engine import Environment
from repro.storage.kvstore import KVStore
from repro.storage.recovery import RecoveryManager, RestartReport
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - cycle guard (compensation imports txn)
    from repro.compensation.actions import ActionRegistry


class Site:
    """One site's full local database system."""

    def __init__(
        self,
        env: Environment,
        site_id: str,
        registry: "ActionRegistry | None" = None,
        enforce_2pl: bool = True,
        op_duration: float = 0.0,
        lock_timeout: float | None = None,
    ) -> None:
        # imported here to break the module cycle: the compensation package
        # imports the txn package for operation types
        from repro.compensation.actions import standard_registry
        from repro.txn.local_manager import LocalTransactionManager

        self.env = env
        self.site_id = site_id
        self.store = KVStore(site_id)
        self.wal = WriteAheadLog(site_id)
        self.locks = LockManager(
            env, site_id, enforce_2pl=enforce_2pl,
            lock_timeout=lock_timeout,
        )
        self.recovery = RecoveryManager(self.store, self.wal)
        self.history = SiteHistory(site_id)
        self.registry = registry or standard_registry()
        #: simulated processing time per operation (after its lock is held)
        self.op_duration = op_duration
        #: name of the marking-set data item when a marking protocol is
        #: active (None otherwise).  In ``lock_marks`` mode the R1 check
        #: takes a real S lock on it and compensations write it as their
        #: last action (rule R2) — the configuration behind the paper's
        #: Section 6.2 deadlock remark.  The serialization-graph layer
        #: always excludes this key (bookkeeping, not data; see
        #: DESIGN.md §5.3b).
        self.marks_key: str | None = None

        self.ltm = LocalTransactionManager(self)
        #: crash counter (metrics)
        self.crash_count = 0

    def load(self, data: dict[str, object]) -> None:
        """Install initial database contents (not logged: pre-history state)."""
        for key, value in data.items():
            self.store.put(key, value)

    def checkpoint(self) -> None:
        """Take a quiescent checkpoint and truncate the log.

        Only legal while no transaction is in flight at this site (their
        undo chains would be severed by the truncation); raises
        :class:`~repro.errors.WALError` otherwise.  After the call, crash
        recovery starts from the snapshot instead of replaying history
        from the beginning.
        """
        from repro.errors import WALError
        from repro.txn.transaction import TxnStatus

        in_flight = sorted(
            txn for txn, status in self.ltm.status.items()
            if status in (TxnStatus.ACTIVE, TxnStatus.PREPARED,
                          TxnStatus.LOCALLY_COMMITTED)
        )
        if in_flight:
            raise WALError(
                f"checkpoint refused: transactions in flight {in_flight}"
            )
        self.wal.checkpoint(self.store.snapshot(), active=[])
        self.wal.truncate_at_checkpoint()

    def crash(self) -> None:
        """Lose all volatile state: store contents and the lock table.

        In-flight transactions are implicitly aborted; the WAL survives and
        :meth:`restart` rebuilds from it.
        """
        self.crash_count += 1
        self.store.wipe()
        # The lock table is volatile: rebuild an empty one.  Pending lock
        # waiters are abandoned (their processes are expected to be killed
        # or to time out alongside the crash).
        self.locks = LockManager(
            self.env, self.site_id, enforce_2pl=self.locks.enforce_2pl,
            lock_timeout=self.locks.lock_timeout,
        )
        self.ltm.abandon_all()

    def restart(self) -> RestartReport:
        """Run crash-restart recovery; returns the recovery report."""
        return self.recovery.restart()

    def __repr__(self) -> str:
        return f"<Site {self.site_id}>"
