"""Transaction layer: operations, specs, sites, and transaction managers.

The paper's two decomposition models (Section 3.1) are both supported:

* **generic model** — subtransactions are arbitrary collections of
  :class:`~repro.txn.operations.ReadOp` / :class:`~repro.txn.operations.WriteOp`
  against local data;
* **restricted model** — subtransactions are built from semantically coherent
  :class:`~repro.txn.operations.SemanticOp` operations drawn from a
  site-registered repertoire with known inverses (e.g. ``deposit`` /
  ``withdraw``).

A :class:`~repro.txn.site.Site` bundles one site's storage, locking, logging,
recovery, and history recording; the
:class:`~repro.txn.local_manager.LocalTransactionManager` executes local
transactions and subtransactions against it under strict 2PL.
"""

from repro.txn.local_manager import LocalTransactionManager
from repro.txn.operations import Op, ReadOp, SemanticOp, WriteOp
from repro.txn.site import Site
from repro.txn.transaction import (
    GlobalTxnSpec,
    SubtxnSpec,
    TxnOutcome,
    TxnStatus,
    VotePolicy,
)

__all__ = [
    "GlobalTxnSpec",
    "LocalTransactionManager",
    "Op",
    "ReadOp",
    "SemanticOp",
    "Site",
    "SubtxnSpec",
    "TxnOutcome",
    "TxnStatus",
    "VotePolicy",
    "WriteOp",
]
