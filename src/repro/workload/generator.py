"""Random workload generation and driving.

The generator builds transaction specs from a seeded RNG, so a workload is
fully determined by ``(WorkloadConfig, seed)``; the driver submits them to a
:class:`~repro.harness.system.System` with exponential inter-arrival times
and runs the simulation to completion.

Abort injection: with probability ``abort_probability`` a global transaction
gets a ``FORCE_NO`` vote at one of its sites — the paper's "optimistic
assumption" knob.  At 0 the assumption holds perfectly; raising it moves the
system toward the regime where compensation overhead outweighs the early
lock release (the crossover of experiment CLAIM-THRU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.system import System
from repro.sim.rng import Rng
from repro.txn.operations import Op, ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy


@dataclass
class WorkloadConfig:
    """Knobs of a random workload."""

    n_transactions: int = 50
    #: inclusive range of sites per global transaction
    min_sites: int = 2
    max_sites: int = 3
    #: inclusive range of operations per subtransaction
    min_ops: int = 1
    max_ops: int = 3
    #: fraction of operations that are plain reads
    read_fraction: float = 0.5
    #: of the non-read ops, fraction using semantic operations
    #: (restricted model) vs. plain writes (generic model)
    semantic_fraction: float = 1.0
    #: probability a transaction is forced to vote NO at one site
    abort_probability: float = 0.0
    #: mean exponential inter-arrival time between submissions
    arrival_mean: float = 2.0
    #: Zipf skew over keys (0 = uniform)
    zipf_theta: float = 0.0
    #: independent local transactions interleaved per global one
    locals_per_global: float = 0.0
    #: visit sites in a fixed (sorted) order — the classic resource-ordering
    #: discipline that rules out cross-site deadlocks, isolating lock-wait
    #: effects in experiments; set False to allow arbitrary orders
    ordered_sites: bool = True


class WorkloadGenerator:
    """Builds and drives one workload against a system."""

    def __init__(
        self, system: System, config: WorkloadConfig | None = None,
        seed: int = 1,
    ) -> None:
        self.system = system
        self.config = config or WorkloadConfig()
        self.rng = Rng(seed)
        self._site_ids = sorted(system.sites)
        self._n_keys = system.config.keys_per_site

    # -- spec construction --------------------------------------------------------

    def _pick_key(self) -> str:
        index = self.rng.zipf_index(self._n_keys, self.config.zipf_theta)
        return f"k{index}"

    def _make_ops(self) -> list[Op]:
        count = self.rng.randint(self.config.min_ops, self.config.max_ops)
        ops: list[Op] = []
        for _ in range(count):
            key = self._pick_key()
            if self.rng.chance(self.config.read_fraction):
                ops.append(ReadOp(key))
            elif self.rng.chance(self.config.semantic_fraction):
                amount = self.rng.randint(1, 10)
                name = self.rng.choice(["deposit", "withdraw"])
                ops.append(SemanticOp(name, key, {"amount": amount}))
            else:
                ops.append(WriteOp(key, self.rng.randint(0, 10_000)))
        return ops

    def make_spec(self, txn_id: str) -> GlobalTxnSpec:
        """Build one random global-transaction spec."""
        n_sites = self.rng.randint(
            self.config.min_sites,
            min(self.config.max_sites, len(self._site_ids)),
        )
        sites = self.rng.sample(self._site_ids, n_sites)
        if self.config.ordered_sites:
            sites = sorted(sites)
        subtxns = [
            SubtxnSpec(site_id, self._make_ops()) for site_id in sites
        ]
        if self.config.abort_probability and self.rng.chance(
            self.config.abort_probability
        ):
            victim = self.rng.randint(0, len(subtxns) - 1)
            subtxns[victim].vote = VotePolicy.FORCE_NO
        return GlobalTxnSpec(txn_id=txn_id, subtxns=subtxns)

    def specs(self) -> list[GlobalTxnSpec]:
        """All global-transaction specs of this workload."""
        return [
            self.make_spec(f"T{i}")
            for i in range(1, self.config.n_transactions + 1)
        ]

    # -- driving ---------------------------------------------------------------------

    def run(self) -> float:
        """Submit the workload and run to completion.

        Returns the simulation time at which the last transaction
        terminated (for throughput computation).
        """
        env = self.system.env

        def driver():
            waiters = []
            for spec in self.specs():
                yield env.timeout(self.rng.exponential(self.config.arrival_mean))
                waiters.append(self.system.submit(spec))
                for _ in range(self._locals_to_spawn()):
                    site_id = self.rng.choice(self._site_ids)
                    self.system.run_local(
                        site_id, self.system.next_local_id(),
                        [SemanticOp(
                            "deposit", self._pick_key(),
                            {"amount": self.rng.randint(1, 5)},
                        )],
                    )
            if waiters:
                yield env.all_of(waiters)
            return env.now

        finished_at = env.run(env.process(driver(), name="workload"))
        env.run()  # drain trailing compensations/acks
        return finished_at

    def _locals_to_spawn(self) -> int:
        rate = self.config.locals_per_global
        count = int(rate)
        if self.rng.chance(rate - count):
            count += 1
        return count
