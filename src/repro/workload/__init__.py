"""Workload generation: random transaction mixes and domain scenarios.

:class:`~repro.workload.generator.WorkloadGenerator` produces reproducible
streams of global (and local) transactions with controllable multi-site
spread, read/write mix, access skew, and injected abort votes — the knobs
the claims experiments sweep.  :mod:`repro.workload.scenarios` provides the
domain workloads the paper's introduction motivates (banking transfers,
competing travel-reservation agencies, inventory/ordering).
"""

from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import (
    banking_transfers,
    inventory_orders,
    standard_scenarios,
    travel_reservations,
)

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "banking_transfers",
    "inventory_orders",
    "standard_scenarios",
    "travel_reservations",
]
