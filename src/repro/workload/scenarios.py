"""Domain scenarios from the paper's motivation.

* :func:`banking_transfers` — inter-bank funds transfers (the classic
  deposit/withdraw pair whose compensation is the opposite pair);
* :func:`travel_reservations` — the multidatabase setting of the
  introduction: competing computerized reservation agencies booking seats
  and rooms across autonomous sites, where blocking a competitor's
  resources is unacceptable;
* :func:`inventory_orders` — order processing decrementing warehouse stock
  with a payment leg.

Each builder returns a list of :class:`GlobalTxnSpec` against a system's
sites; they use the restricted model (registered semantic operations), so
every subtransaction has a predeclared counter-task.
"""

from __future__ import annotations

from repro.sim.rng import Rng
from repro.txn.operations import SemanticOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy


def standard_scenarios(
    site_ids: list[str] | None = None,
) -> dict[str, list[GlobalTxnSpec]]:
    """Every declarative domain workload, keyed by name.

    The default builds of the three scenario families against a canonical
    three-site system — the input set ``repro lint`` analyzes statically
    (repertoire soundness, Theorem 2 write coverage, commutativity), and a
    convenient way to iterate all of them in tests and experiments.
    """
    sites = site_ids if site_ids is not None else ["S1", "S2", "S3"]
    return {
        "banking": banking_transfers(sites),
        "travel": travel_reservations(sites),
        "inventory": inventory_orders(sites),
    }


def banking_transfers(
    site_ids: list[str],
    n_transfers: int = 20,
    accounts_per_site: int = 20,
    amount_range: tuple[int, int] = (1, 50),
    abort_probability: float = 0.0,
    seed: int = 7,
    id_prefix: str = "T",
) -> list[GlobalTxnSpec]:
    """Funds transfers between accounts at two different banks (sites)."""
    rng = Rng(seed)
    specs = []
    for i in range(1, n_transfers + 1):
        src, dst = rng.sample(site_ids, 2)
        amount = rng.randint(*amount_range)
        account_out = f"k{rng.randint(0, accounts_per_site - 1)}"
        account_in = f"k{rng.randint(0, accounts_per_site - 1)}"
        subtxns = [
            SubtxnSpec(src, [SemanticOp("withdraw", account_out, {"amount": amount})]),
            SubtxnSpec(dst, [SemanticOp("deposit", account_in, {"amount": amount})]),
        ]
        if abort_probability and rng.chance(abort_probability):
            subtxns[rng.randint(0, 1)].vote = VotePolicy.FORCE_NO
        subtxns.sort(key=lambda sub: sub.site_id)
        specs.append(GlobalTxnSpec(txn_id=f"{id_prefix}{i}", subtxns=subtxns))
    return specs


def travel_reservations(
    site_ids: list[str],
    n_trips: int = 20,
    resources_per_site: int = 20,
    abort_probability: float = 0.1,
    seed: int = 11,
    id_prefix: str = "T",
) -> list[GlobalTxnSpec]:
    """Multi-leg trips: reserve a seat/room at each agency's site.

    Cancellations (the ``reserve`` → ``cancel`` inverse) are routine in
    this domain, which is why the paper's compensation approach fits it —
    and why abort injection defaults to a visible rate here.
    """
    rng = Rng(seed)
    specs = []
    for i in range(1, n_trips + 1):
        n_legs = rng.randint(2, min(3, len(site_ids)))
        legs = rng.sample(site_ids, n_legs)
        subtxns = []
        for leg_site in legs:
            resource = f"k{rng.randint(0, resources_per_site - 1)}"
            count = rng.randint(1, 4)
            subtxns.append(SubtxnSpec(
                leg_site,
                [SemanticOp("reserve", resource, {"count": count})],
            ))
        if abort_probability and rng.chance(abort_probability):
            subtxns[rng.randint(0, len(subtxns) - 1)].vote = VotePolicy.FORCE_NO
        subtxns.sort(key=lambda sub: sub.site_id)
        specs.append(GlobalTxnSpec(txn_id=f"{id_prefix}{i}", subtxns=subtxns))
    return specs


def inventory_orders(
    site_ids: list[str],
    n_orders: int = 20,
    items_per_site: int = 20,
    abort_probability: float = 0.05,
    seed: int = 13,
    id_prefix: str = "T",
) -> list[GlobalTxnSpec]:
    """Orders: decrement stock at a warehouse site, charge at a payment
    site, record the order at a third."""
    rng = Rng(seed)
    specs = []
    for i in range(1, n_orders + 1):
        warehouse, payment = rng.sample(site_ids, 2)
        item = f"k{rng.randint(0, items_per_site - 1)}"
        price = rng.randint(5, 60)
        subtxns = [
            SubtxnSpec(warehouse, [
                SemanticOp("withdraw", item, {"amount": 1}),
            ]),
            SubtxnSpec(payment, [
                SemanticOp("deposit", f"k{rng.randint(0, items_per_site - 1)}",
                           {"amount": price}),
            ]),
        ]
        if abort_probability and rng.chance(abort_probability):
            subtxns[rng.randint(0, 1)].vote = VotePolicy.FORCE_NO
        subtxns.sort(key=lambda sub: sub.site_id)
        specs.append(GlobalTxnSpec(txn_id=f"{id_prefix}{i}", subtxns=subtxns))
    return specs
