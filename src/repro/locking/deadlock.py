"""Waits-for graph and deadlock detection.

The lock manager maintains a waits-for edge ``waiter → holder`` whenever a
request blocks.  :class:`DeadlockDetector` searches for cycles on each new
block (continuous detection) and names a victim — by default the youngest
transaction on the cycle (highest sequence number), a standard policy that
favors transactions holding locks the longest.

Section 6.2 of the paper points out a specific deadlock pattern introduced by
protocol P1's marking sets (a reader of ``sitemarks.k`` vs. a compensating
subtransaction) and a remedy; the ``CLAIM-DEADLOCK`` experiment constructs
that pattern against this detector.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable


class WaitsForGraph:
    """Directed graph of "transaction A waits for transaction B"."""

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = defaultdict(set)

    def add_wait(self, waiter: str, holders: Iterable[str]) -> None:
        """Record that ``waiter`` blocks on each of ``holders``."""
        targets = {h for h in holders if h != waiter}
        if targets:
            self._edges[waiter].update(targets)

    def remove_waiter(self, waiter: str) -> None:
        """Drop all outgoing edges of ``waiter`` (it got its lock or died)."""
        self._edges.pop(waiter, None)

    def remove_transaction(self, txn_id: str) -> None:
        """Remove ``txn_id`` from the graph entirely."""
        self._edges.pop(txn_id, None)
        for targets in self._edges.values():
            targets.discard(txn_id)

    def successors(self, txn_id: str) -> set[str]:
        """Transactions ``txn_id`` is waiting for."""
        return set(self._edges.get(txn_id, ()))

    def could_cycle(self, waiter: str) -> bool:
        """Cheap necessary condition for a cycle through ``waiter``.

        A cycle through ``waiter`` needs some successor of ``waiter`` with
        outgoing edges of its own; most blocks wait only on lock *holders*
        (which wait on nothing), so this guard skips the DFS entirely for
        the common case.
        """
        edges = self._edges
        targets = edges.get(waiter)
        if not targets:
            return False
        return any(t in edges for t in targets)

    def edges(self) -> list[tuple[str, str]]:
        """All (waiter, holder) edges, sorted for determinism."""
        return sorted(
            (w, h) for w, targets in self._edges.items() for h in targets
        )

    def find_cycle(self, start: str | None = None) -> list[str] | None:
        """Return one cycle as a node list (first == last), or None.

        When ``start`` is given, only cycles reachable from it are searched —
        sufficient for continuous detection, since a new cycle must pass
        through the edge just added.
        """
        roots = [start] if start is not None else sorted(self._edges)
        for root in roots:
            cycle = self._dfs_cycle(root)
            if cycle is not None:
                return cycle
        return None

    def _dfs_cycle(self, root: str) -> list[str] | None:
        path: list[str] = []
        on_path: set[str] = set()
        visited: set[str] = set()

        def visit(node: str) -> list[str] | None:
            path.append(node)
            on_path.add(node)
            for succ in sorted(self._edges.get(node, ())):
                if succ in on_path:
                    idx = path.index(succ)
                    return path[idx:] + [succ]
                if succ not in visited:
                    found = visit(succ)
                    if found is not None:
                        return found
            path.pop()
            on_path.discard(node)
            visited.add(node)
            return None

        return visit(root)


class DeadlockDetector:
    """Victim-selection policy over a :class:`WaitsForGraph`."""

    def __init__(
        self,
        graph: WaitsForGraph,
        victim_policy: Callable[[list[str]], str] | None = None,
    ) -> None:
        self.graph = graph
        self._policy = victim_policy or self.youngest_victim
        #: all cycles observed, for metrics
        self.detected: list[list[str]] = []

    @staticmethod
    def youngest_victim(cycle: list[str]) -> str:
        """Default policy: abort the transaction with the largest id suffix.

        Ids are dense (``T1``, ``T2``, ...) so the largest numeric suffix is
        the youngest transaction; ties break lexicographically.
        """
        def age_key(txn_id: str) -> tuple[int, str]:
            digits = "".join(ch for ch in txn_id if ch.isdigit())
            return (int(digits) if digits else -1, txn_id)

        return max(set(cycle), key=age_key)

    def check(self, waiter: str) -> str | None:
        """Run detection after ``waiter`` blocked; return the victim or None."""
        cycle = self.graph.find_cycle(start=waiter)
        if cycle is None:
            return None
        self.detected.append(cycle)
        return self._policy(cycle)
