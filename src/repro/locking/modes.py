"""Lock modes and their compatibility matrix.

Two classical modes: shared (S, read) and exclusive (X, write).  S is
compatible with S; X is compatible with nothing.
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    """Lock mode of a request or a held lock."""

    S = "S"
    X = "X"

    def __lt__(self, other: "LockMode") -> bool:
        # S < X: used when picking the strongest requested/held mode.
        return self is LockMode.S and other is LockMode.X


#: compatibility[(held, requested)] — True when the pair can coexist.
#: With two modes the whole matrix collapses to "only S/S coexists";
#: kept as data for documentation and the table-driven tests.
_COMPAT: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}


def compatible_modes(held: LockMode, requested: LockMode) -> bool:
    """True when ``requested`` can be granted alongside ``held``.

    Hot-path form of the ``_COMPAT`` table: two identity checks instead of
    a tuple allocation plus enum-keyed dict probe.
    """
    return held is LockMode.S and requested is LockMode.S


def stronger(a: LockMode, b: LockMode) -> LockMode:
    """The stronger of two modes (X dominates S)."""
    return b if a < b else a
