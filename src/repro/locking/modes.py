"""Lock modes and their compatibility matrix.

Two classical modes: shared (S, read) and exclusive (X, write).  S is
compatible with S; X is compatible with nothing.
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    """Lock mode of a request or a held lock."""

    S = "S"
    X = "X"

    def __lt__(self, other: "LockMode") -> bool:
        # S < X: used when picking the strongest requested/held mode.
        order = {LockMode.S: 0, LockMode.X: 1}
        return order[self] < order[other]


#: compatibility[(held, requested)] — True when the pair can coexist
_COMPAT: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}


def compatible_modes(held: LockMode, requested: LockMode) -> bool:
    """True when ``requested`` can be granted alongside ``held``."""
    return _COMPAT[(held, requested)]


def stronger(a: LockMode, b: LockMode) -> LockMode:
    """The stronger of two modes (X dominates S)."""
    return b if a < b else a
