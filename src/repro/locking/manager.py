"""The per-site lock manager.

Grants are FIFO-fair: a request blocks if it conflicts with a current holder
*or* with an earlier queued request (no barging), except lock *upgrades*
(S→X by the sole holder) which take priority to keep the common
read-then-write pattern live.

Blocking integrates with the simulation kernel: :meth:`LockManager.acquire`
returns an event that triggers when the lock is granted, so transaction
processes simply ``yield`` it.  Deadlocks are detected continuously on every
block; the victim's pending request fails with
:class:`~repro.errors.DeadlockDetected`.

The manager also enforces two-phase locking per transaction (acquire after
release raises :class:`~repro.errors.TwoPhaseViolation`) and records every
lock-hold interval — the raw data behind the paper's lock-hold-time claim
(experiment ``CLAIM-LOCK``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from sys import intern

from repro.errors import DeadlockDetected, LockNotHeld, TwoPhaseViolation
from repro.locking.deadlock import DeadlockDetector, WaitsForGraph
from repro.locking.modes import LockMode, stronger
from repro.obs.events import (
    DeadlockObserved,
    LockGranted,
    LockReleased,
    LockRequested,
    LockTimedOut,
)
from repro.sim.engine import Environment
from repro.sim.events import Event


@dataclass(slots=True)
class LockRequest:
    """A queued (blocked) lock request."""

    txn_id: str
    key: str
    mode: LockMode
    event: Event
    requested_at: float
    is_upgrade: bool = False


@dataclass(slots=True)
class HoldRecord:
    """One completed lock-hold interval (for metrics)."""

    txn_id: str
    key: str
    mode: LockMode
    granted_at: float
    released_at: float

    @property
    def duration(self) -> float:
        """Length of the hold interval."""
        return self.released_at - self.granted_at


@dataclass(slots=True)
class _Grant:
    """A currently held lock."""

    mode: LockMode
    granted_at: float


class LockManager:
    """S/X lock table for one site."""

    def __init__(
        self,
        env: Environment,
        site_id: str = "site",
        enforce_2pl: bool = True,
        lock_timeout: float | None = None,
    ) -> None:
        self.env = env
        self.site_id = site_id
        self.enforce_2pl = enforce_2pl
        #: when set, a blocked request fails with
        #: :class:`~repro.errors.LockTimeout` after this many time units —
        #: the timeout-based deadlock resolution common where a waits-for
        #: graph is unavailable (it also breaks cross-site deadlocks, which
        #: the local detector cannot see)
        self.lock_timeout = lock_timeout
        #: key → {txn_id → grant}
        self._holders: dict[str, dict[str, _Grant]] = {}
        #: key → FIFO of blocked requests
        self._queues: dict[str, deque[LockRequest]] = {}
        #: transactions in their shrinking phase (released at least one lock)
        self._shrinking: set[str] = set()
        self.waits_for = WaitsForGraph()
        self.detector = DeadlockDetector(self.waits_for)
        #: completed hold intervals (metrics)
        self.hold_log: list[HoldRecord] = []
        #: per-request wait durations (metrics): (txn, key, wait_time)
        self.wait_log: list[tuple[str, str, float]] = []
        #: recycled :class:`LockRequest` objects (grant path stays
        #: allocation-free under contention).  Only used when no timeout
        #: watchdog can hold a stale reference (``lock_timeout is None``).
        self._request_pool: list[LockRequest] = []

    # -- introspection ---------------------------------------------------------

    def holders(self, key: str) -> dict[str, LockMode]:
        """Current holders of ``key`` and their modes."""
        return {t: g.mode for t, g in self._holders.get(key, {}).items()}

    def held_mode(self, txn_id: str, key: str) -> LockMode | None:
        """Mode in which ``txn_id`` holds ``key``, or None."""
        grants = self._holders.get(key)
        if not grants:
            return None
        grant = grants.get(txn_id)
        return grant.mode if grant else None

    def locks_of(self, txn_id: str) -> dict[str, LockMode]:
        """All keys ``txn_id`` currently holds, with modes."""
        return {
            key: grants[txn_id].mode
            for key, grants in self._holders.items()
            if txn_id in grants
        }

    def queue_length(self, key: str) -> int:
        """Number of blocked requests on ``key``."""
        return len(self._queues.get(key, ()))

    # -- acquire ----------------------------------------------------------------

    def acquire(self, txn_id: str, key: str, mode: LockMode) -> Event:
        """Request ``key`` in ``mode``; the returned event triggers on grant.

        Immediately-grantable requests return an already-triggered event, so
        a process that yields it continues in the same time step.
        """
        # Per-site interned tables: every key/txn id that reaches the lock
        # table is interned, so the dict probes below (and in release /
        # waits-for bookkeeping) compare by pointer, not by content.
        txn_id = intern(txn_id)
        key = intern(key)
        if self.enforce_2pl and txn_id in self._shrinking:
            raise TwoPhaseViolation(
                f"{txn_id} acquired {key} after releasing a lock (2PL)"
            )
        event = Event(self.env)

        held = self.held_mode(txn_id, key)
        if held is not None and not (held is LockMode.S and mode is LockMode.X):
            # Re-entrant: already held in a sufficient mode.
            event.succeed((key, held))
            return event

        is_upgrade = held is LockMode.S and mode is LockMode.X
        if self._grantable(txn_id, key, mode, is_upgrade):
            bus = self.env.bus
            if bus.enabled:
                bus.publish(LockRequested(
                    site_id=self.site_id, txn_id=txn_id, key=key,
                    mode=mode.value, immediate=True,
                ))
            self._grant(txn_id, key, mode, requested_at=self.env.now)
            event.succeed((key, mode))
            return event
        bus = self.env.bus
        if bus.enabled:
            bus.publish(LockRequested(
                site_id=self.site_id, txn_id=txn_id, key=key,
                mode=mode.value, immediate=False,
            ))

        if self._request_pool and self.lock_timeout is None:
            # Recycle a retired request object (see the pool comment above).
            request = self._request_pool.pop()
            request.txn_id = txn_id
            request.key = key
            request.mode = mode
            request.event = event
            request.requested_at = self.env.now
            request.is_upgrade = is_upgrade
        else:
            request = LockRequest(
                txn_id=txn_id,
                key=key,
                mode=mode,
                event=event,
                requested_at=self.env.now,
                is_upgrade=is_upgrade,
            )
        queue = self._queues.setdefault(key, deque())
        if is_upgrade:
            # Upgrades go to the front: they only wait for other holders.
            queue.appendleft(request)
        else:
            queue.append(request)
        self._record_waits(request)
        self._detect_deadlock(request)
        if self.lock_timeout is not None and not event.triggered:
            self.env.process(
                self._timeout_watchdog(request),
                name=f"locktimeout:{txn_id}:{key}",
            )
        return event

    def _timeout_watchdog(self, request: LockRequest):
        from repro.errors import LockTimeout

        yield self.env.timeout(self.lock_timeout)
        if request.event.triggered:
            return
        queue = self._queues.get(request.key)
        if queue is None or request not in queue:
            return
        queue.remove(request)
        if not queue:
            self._queues.pop(request.key, None)
        self.waits_for.remove_waiter(request.txn_id)
        bus = self.env.bus
        if bus.enabled:
            bus.publish(LockTimedOut(
                site_id=self.site_id, txn_id=request.txn_id,
                key=request.key, waited=self.env.now - request.requested_at,
            ))
        request.event.fail(LockTimeout(
            f"{request.txn_id} waited {self.lock_timeout} for "
            f"{request.key} at {self.site_id}"
        ))
        self._wake_waiters(request.key)

    def _grantable(
        self, txn_id: str, key: str, mode: LockMode, is_upgrade: bool
    ) -> bool:
        holders = self._holders.get(key)
        if holders:
            # Inlined compatibility: only S/S coexists, so a conflict is
            # "either side is not S".
            requested_shared = mode is LockMode.S
            for holder, grant in holders.items():
                if holder == txn_id:
                    continue
                if not (requested_shared and grant.mode is LockMode.S):
                    return False
        if is_upgrade:
            # An upgrade ignores the queue (it has priority) and only needs
            # the other holders gone.
            return True
        queue = self._queues.get(key)
        if queue:
            # FIFO fairness: a new request never overtakes a queued one it
            # conflicts with; S may still slip past queued S.
            requested_shared = mode is LockMode.S
            for queued in queue:
                if queued.txn_id != txn_id and not (
                    requested_shared and queued.mode is LockMode.S
                ):
                    return False
        return True

    def _grant(
        self, txn_id: str, key: str, mode: LockMode, requested_at: float
    ) -> None:
        bus = self.env.bus
        grants = self._holders.setdefault(key, {})
        existing = grants.get(txn_id)
        if existing is not None:
            # Upgrade: close the S-hold interval, open the X interval.
            self.hold_log.append(
                HoldRecord(
                    txn_id=txn_id,
                    key=key,
                    mode=existing.mode,
                    granted_at=existing.granted_at,
                    released_at=self.env.now,
                )
            )
            if bus.enabled:
                bus.publish(LockReleased(
                    site_id=self.site_id, txn_id=txn_id, key=key,
                    mode=existing.mode.value,
                    held=self.env.now - existing.granted_at,
                ))
            mode = stronger(existing.mode, mode)
        grants[txn_id] = _Grant(mode=mode, granted_at=self.env.now)
        waited = self.env.now - requested_at
        self.wait_log.append((txn_id, key, waited))
        if bus.enabled:
            bus.publish(LockGranted(
                site_id=self.site_id, txn_id=txn_id, key=key,
                mode=mode.value, waited=waited,
            ))

    # -- release -----------------------------------------------------------------

    def release(self, txn_id: str, key: str) -> None:
        """Release one lock; wakes newly grantable waiters."""
        grants = self._holders.get(key)
        grant = grants.pop(txn_id, None) if grants else None
        if grant is None:
            raise LockNotHeld(f"{txn_id} does not hold {key}")
        if not grants:
            self._holders.pop(key, None)
        self._shrinking.add(txn_id)
        self.hold_log.append(
            HoldRecord(
                txn_id=txn_id,
                key=key,
                mode=grant.mode,
                granted_at=grant.granted_at,
                released_at=self.env.now,
            )
        )
        bus = self.env.bus
        if bus.enabled:
            bus.publish(LockReleased(
                site_id=self.site_id, txn_id=txn_id, key=key,
                mode=grant.mode.value,
                held=self.env.now - grant.granted_at,
            ))
        self._wake_waiters(key)

    def release_all(self, txn_id: str) -> list[str]:
        """Release every lock of ``txn_id``; returns the released keys.

        This is the operation O2PC performs at vote time and distributed 2PL
        performs at decision time.
        """
        keys = sorted(self.locks_of(txn_id))
        for key in keys:
            self.release(txn_id, key)
        # The transaction is gone: drop any waits-for edges pointing at it.
        self.waits_for.remove_transaction(txn_id)
        return keys

    def cancel(self, txn_id: str, key: str | None = None) -> int:
        """Withdraw pending (blocked) requests of ``txn_id``.

        Used when a transaction aborts while waiting — e.g. an abort
        decision arrives for a subtransaction still blocked on a lock.  The
        cancelled requests' events fail with
        :class:`~repro.errors.TransactionAborted`, waking their waiting
        process so it can unwind.  Returns the number cancelled.
        """
        from repro.errors import TransactionAborted

        cancelled = 0
        for qkey, queue in list(self._queues.items()):
            if key is not None and qkey != key:
                continue
            remaining: deque[LockRequest] = deque()
            for request in queue:
                if request.txn_id == txn_id:
                    cancelled += 1
                    if not request.event.triggered:
                        exc = TransactionAborted(
                            txn_id, f"lock request on {qkey} cancelled"
                        )
                        request.event.fail(exc)
                        request.event.defused = True
                else:
                    remaining.append(request)
            if remaining:
                self._queues[qkey] = remaining
            else:
                self._queues.pop(qkey, None)
            if cancelled:
                self._wake_waiters(qkey)
        self.waits_for.remove_waiter(txn_id)
        return cancelled

    def forget(self, txn_id: str) -> None:
        """Clear 2PL shrink-phase state for a finished transaction id."""
        self._shrinking.discard(txn_id)

    # -- waking / deadlock -------------------------------------------------------

    def _wake_waiters(self, key: str) -> None:
        queue = self._queues.get(key)
        if not queue:
            return
        recyclable = self.lock_timeout is None
        progressed = True
        while progressed and queue:
            progressed = False
            head = queue[0]
            if head.event.triggered:
                queue.popleft()
                if recyclable:
                    self._request_pool.append(head)
                progressed = True
                continue
            if self._holders_compatible(head):
                queue.popleft()
                self._grant(
                    head.txn_id, head.key, head.mode, head.requested_at
                )
                self.waits_for.remove_waiter(head.txn_id)
                head.event.succeed((head.key, head.mode))
                if recyclable:
                    self._request_pool.append(head)
                progressed = True
        if not queue:
            self._queues.pop(key, None)
        else:
            # Refresh waits-for edges of the remaining head (its blockers
            # may have changed).
            self._record_waits(queue[0])

    def _holders_compatible(self, request: LockRequest) -> bool:
        holders = self._holders.get(request.key)
        if not holders:
            return True
        requested_shared = request.mode is LockMode.S
        for holder, grant in holders.items():
            if holder == request.txn_id:
                continue
            if not (requested_shared and grant.mode is LockMode.S):
                return False
        return True

    def _record_waits(self, request: LockRequest) -> None:
        holders = self._holders.get(request.key)
        requested_shared = request.mode is LockMode.S
        blockers = [
            holder
            for holder, grant in (holders.items() if holders else ())
            if holder != request.txn_id
            and not (requested_shared and grant.mode is LockMode.S)
        ]
        queue = self._queues.get(request.key, ())
        for queued in queue:
            if queued is request:
                break
            if queued.txn_id != request.txn_id and not (
                requested_shared and queued.mode is LockMode.S
            ):
                blockers.append(queued.txn_id)
        self.waits_for.add_wait(request.txn_id, blockers)

    def _detect_deadlock(self, request: LockRequest) -> None:
        if not self.waits_for.could_cycle(request.txn_id):
            return
        victim = self.detector.check(request.txn_id)
        if victim is None:
            return
        cycle = self.detector.detected[-1]
        bus = self.env.bus
        if bus.enabled:
            bus.publish(DeadlockObserved(
                site_id=self.site_id, victim=victim, cycle=tuple(cycle),
            ))
        # Fail every pending request of the victim; its owner must abort.
        exc = DeadlockDetected(victim, cycle)
        for qkey, queue in list(self._queues.items()):
            remaining: deque[LockRequest] = deque()
            for queued in queue:
                if queued.txn_id == victim and not queued.event.triggered:
                    queued.event.fail(exc)
                else:
                    remaining.append(queued)
            if remaining:
                self._queues[qkey] = remaining
            else:
                self._queues.pop(qkey, None)
        self.waits_for.remove_waiter(victim)
