"""Per-site locking: S/X lock manager, strict 2PL, deadlock handling.

The lock manager is the heart of the paper's performance story: under
distributed 2PL, exclusive locks are held until the 2PC decision arrives;
under O2PC they are released at vote time.  The manager therefore records
grant/release timestamps for every lock so the harness can measure lock-hold
windows directly.
"""

from repro.locking.deadlock import DeadlockDetector, WaitsForGraph
from repro.locking.manager import LockManager, LockRequest
from repro.locking.modes import LockMode, compatible_modes

__all__ = [
    "DeadlockDetector",
    "LockManager",
    "LockMode",
    "LockRequest",
    "WaitsForGraph",
    "compatible_modes",
]
