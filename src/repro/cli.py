"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — a narrated end-to-end run (commit, abort + compensation,
  correctness check);
* ``drill`` — the coordinator-failure drill with lock timelines for both
  schemes (the paper's blocking problem, visually);
* ``sweep`` — the abort-probability sweep (CLAIM-THRU's table) from the
  command line, with configurable sizes;
* ``audit`` — the adversarial interleaving that forms a regular cycle,
  under a chosen protocol, with the marking audit trail;
* ``trace`` — run a workload with observability on and emit the typed
  event stream as deterministic JSONL (same seed → byte-identical output);
* ``metrics`` — run a workload with streaming metrics; ``--watch`` prints
  a snapshot per simulation window instead of only the final report;
* ``check`` — the protocol model checker: enumerate message interleavings
  and crash points of an adversarial scenario and judge every explored
  schedule with the paper-invariant oracles (``--smoke`` is the CI
  preset; ``--jobs N`` shards the search with an identical report);
* ``bench`` — the pinned performance workloads: checker schedules/s,
  simulator txns/s, and SG-build times, written as ``BENCH_*.json`` and
  gated against the committed baselines in ``benchmarks/baselines/``;
* ``compare`` — every registered commit scheme (O2PC, 2PC/2PL, Paxos
  Commit, Short-Commit) over identical seeded workloads plus the
  coordinator-crash drill: blocking time, lock-hold tail, abort and
  compensation rates, messages per transaction (``BENCH_compare.json``,
  gated like ``bench``; ``--vote-timeout`` sweeps the collection
  timeout);
* ``lint`` — the static compensation-soundness and determinism analyzers:
  repertoire inverse closure, Theorem 2 write coverage, commutativity /
  stratification preconditions, the determinism lint over the sources, and
  dispatch exhaustiveness — zero schedules executed, exit 1 on findings;
* ``serve`` — run one site as a real daemon over TCP (the ``net``
  backend): the unmodified Participant state machine with a file-backed
  WAL that survives ``kill -9`` (see ``docs/RUNTIME.md``);
* ``client`` — drive a transaction against a live cluster, or query /
  shut down one daemon over its admin channel.

Shared options (``--seed``, ``--protocol``, ``--backend``) are defined
once as parent parsers and accepted uniformly by the verbs that take
them.  Everything simulated is deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.harness.system import BACKENDS, PROTOCOLS
from repro.net.failures import CrashPlan
from repro.sg import explain_cycle, find_regular_cycle, render_explanation
from repro.txn import GlobalTxnSpec, ReadOp, SemanticOp, SubtxnSpec, VotePolicy
from repro.workload import WorkloadConfig, WorkloadGenerator


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}"
        )
    return value


def _require_backend(args: argparse.Namespace, supported: str) -> int | None:
    """Exit code 2 when the selected backend is not ``supported`` here."""
    backend = getattr(args, "backend", supported)
    if backend != supported:
        print(
            f"repro {args.command}: backend {backend!r} is not supported "
            f"by this command (only {supported!r}); the net backend is "
            f"driven by 'repro serve' and 'repro client'",
            file=sys.stderr,
        )
        return 2
    return None


def cmd_demo(args: argparse.Namespace) -> int:
    """Narrated end-to-end run: commit, refused transfer, criterion check."""
    system = System(SystemConfig(
        n_sites=3, scheme=CommitScheme.O2PC, protocol=args.protocol,
        seed=args.seed,
    ))
    print("== O2PC demo:", ", ".join(sorted(system.sites)), "==")
    ok = system.run_transaction(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 30})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 30})]),
    ]))
    print(f"T1 transfer: {'COMMIT' if ok.committed else 'ABORT'} "
          f"in {ok.latency:.1f}u; S1.k0={system.sites['S1'].store.get('k0')} "
          f"S2.k0={system.sites['S2'].store.get('k0')}")
    bad = system.run_transaction(GlobalTxnSpec(txn_id="T2", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 50})]),
        SubtxnSpec("S3", [SemanticOp("deposit", "k0", {"amount": 50})],
                   vote=VotePolicy.FORCE_NO),
    ]))
    system.env.run()
    print(f"T2 refused transfer: {'COMMIT' if bad.committed else 'ABORT'}; "
          f"compensated at {bad.compensated_sites}; "
          f"S1.k0={system.sites['S1'].store.get('k0')} (restored)")
    system.check_correctness()
    print("correctness criterion: OK")
    print()
    print(system.timeline())
    return 0


def cmd_drill(args: argparse.Namespace) -> int:
    """Coordinator-crash drill with lock timelines for both schemes."""
    for scheme in (CommitScheme.TWO_PL, CommitScheme.O2PC):
        system = System(SystemConfig(scheme=scheme, seed=args.seed))
        proc = system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
            SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
            SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
        ]))
        system.failures.schedule(
            CrashPlan(site_id="coord.T1", at=6.2, duration=args.outage)
        )
        outcome = system.env.run(proc)
        system.env.run()
        print(f"== {scheme.value}: coordinator down for {args.outage:.0f}u ==")
        print(f"T1 {'COMMIT' if outcome.committed else 'ABORT'} "
              f"at t={outcome.end_time:.1f}")
        print(system.lock_gantt("S1"))
        print()
    print("2PL bars span the outage; O2PC bars end at the vote.")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Abort-probability sweep: throughput and lock-wait, 2PL vs O2PC."""
    rows = []
    for p in (0.0, 0.1, 0.25, 0.5):
        measures: dict[str, float] = {}
        for scheme in (CommitScheme.TWO_PL, CommitScheme.O2PC):
            system = System(SystemConfig(
                scheme=scheme, n_sites=args.sites, keys_per_site=8,
                seed=args.seed,
            ))
            gen = WorkloadGenerator(system, WorkloadConfig(
                n_transactions=args.transactions, abort_probability=p,
                read_fraction=0.4, arrival_mean=2.0, zipf_theta=0.6,
            ), seed=args.seed)
            elapsed = gen.run()
            report = system.metrics(elapsed)
            tag = "2pl" if scheme is CommitScheme.TWO_PL else "o2pc"
            measures[f"thru_{tag}"] = report.throughput
            measures[f"wait_{tag}"] = report.total_lock_wait
            if scheme is CommitScheme.O2PC:
                measures["compensations"] = report.compensations
        rows.append(ExperimentResult(params={"abort_p": p}, measures=measures))
    print(format_table(
        rows, title="throughput / lock-wait vs abort probability",
    ))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Adversarial interleaving: show (or show prevented) a regular cycle."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=args.protocol, n_sites=2,
        seed=args.seed,
    ))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("set", "k0", {"value": "dirty"})]),
        SubtxnSpec("S2", [SemanticOp("set", "k0", {"value": "dirty"})],
                   vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [ReadOp("k0")]),
            SubtxnSpec("S1", [ReadOp("k0")]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    cycle = find_regular_cycle(
        system.global_sg(), system.effective_regular_nodes()
    )
    print(f"protocol={args.protocol}")
    print(system.timeline())
    print()
    if cycle:
        print("regular cycle:", " -> ".join(cycle), "(history INCORRECT)")
        print(render_explanation(explain_cycle(
            system.global_sg(), cycle, system.global_history(),
        )))
    else:
        print("no regular cycle (criterion holds)")
    print()
    print(system.marking_audit())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the quick experiment set and write a markdown report.

    Writes ``report.md`` plus one JSON file per experiment into ``--out``
    (created if missing).  A lighter-weight alternative to
    ``pytest benchmarks/ -s`` when only the artifact files are wanted.
    """
    import os

    from repro.harness.experiment import save_results, to_markdown
    from repro.net.network import LatencyModel

    os.makedirs(args.out, exist_ok=True)
    sections: list[str] = ["# O2PC experiment report", ""]

    def emit(name: str, title: str, rows: list[ExperimentResult]) -> None:
        save_results(rows, os.path.join(args.out, f"{name}.json"))
        sections.append(to_markdown(rows, title=title))
        sections.append("")
        print(f"  wrote {name} ({len(rows)} rows)")

    # CLAIM-LOCK (compact)
    rows = []
    for base in (0.5, 1.0, 2.0):
        measures: dict[str, float] = {}
        for scheme in (CommitScheme.TWO_PL, CommitScheme.O2PC):
            system = System(SystemConfig(
                scheme=scheme, n_sites=4, keys_per_site=100,
                latency=LatencyModel(base=base), seed=args.seed,
            ))
            gen = WorkloadGenerator(system, WorkloadConfig(
                n_transactions=40, read_fraction=0.3,
                arrival_mean=4.0 * base,
            ), seed=args.seed)
            elapsed = gen.run()
            report = system.metrics(elapsed)
            tag = "2pl" if scheme is CommitScheme.TWO_PL else "o2pc"
            measures[f"hold_{tag}"] = report.mean_lock_hold
        measures["gap"] = measures["hold_2pl"] - measures["hold_o2pc"]
        rows.append(ExperimentResult(params={"latency": base},
                                     measures=measures))
    emit("claim_lock", "CLAIM-LOCK: mean lock-hold vs latency", rows)

    # CLAIM-BLOCK (compact)
    rows = []
    for outage in (25.0, 100.0):
        measures = {}
        for scheme in (CommitScheme.TWO_PL, CommitScheme.O2PC):
            system = System(SystemConfig(scheme=scheme, seed=args.seed))
            proc = system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
                SubtxnSpec("S1", [SemanticOp("withdraw", "k0",
                                             {"amount": 1})]),
                SubtxnSpec("S2", [SemanticOp("deposit", "k0",
                                             {"amount": 1})]),
            ]))
            system.failures.schedule(
                CrashPlan(site_id="coord.T1", at=6.2, duration=outage)
            )
            system.env.run(proc)
            system.env.run()
            tag = "2pl" if scheme is CommitScheme.TWO_PL else "o2pc"
            measures[f"max_hold_{tag}"] = max(
                h.duration for s in system.sites.values()
                for h in s.locks.hold_log
            )
        rows.append(ExperimentResult(params={"outage": outage},
                                     measures=measures))
    emit("claim_block", "CLAIM-BLOCK: max lock-hold vs outage", rows)

    # CLAIM-MSG (compact)
    rows = []
    for label, scheme, protocol in (
        ("2PC/2PL", CommitScheme.TWO_PL, "none"),
        ("O2PC", CommitScheme.O2PC, "none"),
        ("O2PC/P1", CommitScheme.O2PC, "P1"),
    ):
        system = System(SystemConfig(
            scheme=scheme, protocol=protocol, n_sites=3,
            keys_per_site=100, seed=args.seed,
        ))
        gen = WorkloadGenerator(system, WorkloadConfig(
            n_transactions=20, arrival_mean=6.0, read_fraction=1.0,
        ), seed=args.seed)
        gen.run()
        rows.append(ExperimentResult(
            params={"scheme": label},
            measures=dict(system.network.counts_by_type()),
        ))
    emit("claim_msg", "CLAIM-MSG: wire messages by scheme", rows)

    path = os.path.join(args.out, "report.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))
    print(f"report: {path}")
    return 0


def _observed_run(args: argparse.Namespace) -> tuple[System, "WorkloadGenerator"]:
    """A system with observability on plus its (unrun) workload generator."""
    system = System(SystemConfig(
        n_sites=args.sites, scheme=CommitScheme[args.scheme],
        protocol=args.protocol, seed=args.seed, observability=True,
        metrics_window=getattr(args, "window", 10.0),
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=args.transactions, abort_probability=0.2,
        read_fraction=0.4, arrival_mean=3.0, zipf_theta=0.5,
    ), seed=args.seed)
    return system, gen


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a workload with the event bus on; emit the stream as JSONL.

    The stream is deterministic: the same ``--seed`` produces byte-identical
    output (events carry only simulation time, a gap-free sequence number,
    and primitive fields; the JSON encoding uses sorted keys and fixed
    separators).
    """
    failed = _require_backend(args, "sim")
    if failed is not None:
        return failed
    system, gen = _observed_run(args)
    gen.run()
    text = system.obs.jsonl()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{len(system.events())} events -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _print_metrics_report(report: Any) -> None:
    print("== metrics ==")
    for name in (
        "committed", "aborted", "abort_rate", "throughput",
        "mean_latency", "p50_latency", "p99_latency",
        "mean_lock_hold", "mean_lock_wait",
        "messages_total", "messages_per_txn",
        "compensations", "deadlocks", "rejections",
    ):
        value = getattr(report, name)
        shown = f"{value:.3f}" if isinstance(value, float) else str(value)
        print(f"{name:18} {shown}")


def _metrics_net(args: argparse.Namespace) -> int:
    """Aggregate a live cluster's per-site event streams into one report."""
    from repro.rt.config import load_cluster
    from repro.rt.obs_sink import aggregate_cluster

    if not args.cluster:
        print(
            "repro metrics: --backend net needs --cluster (the daemons' "
            "cluster file; start them with 'repro serve --obs')",
            file=sys.stderr,
        )
        return 2
    cluster = load_cluster(args.cluster)
    report, per_site = aggregate_cluster(cluster)
    print("== cluster event streams ==")
    for site_id in cluster.site_ids:
        path = cluster.events_path(site_id)
        print(f"{site_id:18} {per_site[site_id]:6d} events  ({path})")
    _print_metrics_report(report)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a workload with streaming metrics; report at the end or --watch.

    With ``--backend net --cluster c.json`` no workload is run: the
    command instead folds the JSONL event streams of a live (or stopped)
    ``--obs`` cluster into the same report.
    """
    if getattr(args, "backend", "sim") == "net":
        return _metrics_net(args)
    failed = _require_backend(args, "sim")
    if failed is not None:
        return failed
    system, gen = _observed_run(args)
    env = system.env
    if args.watch:
        stream = system.obs.stream
        system.submit_stream(
            gen.specs(), arrival_mean=gen.config.arrival_mean,
            seed=args.seed,
        )
        while env.peek() < float("inf"):
            env.run(until=env.now + args.window)
            snap = system.metrics()
            window_commits = stream.commit_series.value_at(
                env.now - args.window
            )
            print(
                f"t={env.now:8.1f}  committed={snap.committed:4d} "
                f"(+{window_commits:.0f})  aborted={snap.aborted:3d}  "
                f"msgs={snap.messages_total:5d}  "
                f"p50={snap.p50_latency:6.2f}  p99={snap.p99_latency:6.2f}"
            )
        elapsed = env.now
    else:
        elapsed = gen.run()
    report = system.metrics(elapsed)
    _print_metrics_report(report)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Model-check a scenario: explore schedules/crashes, run the oracles.

    Exit code 0 when every explored schedule satisfies the oracles (and,
    under ``--smoke``, when the exploration met its schedule quota); 1 when
    a counterexample was found.  Counterexamples print their replay vector:
    ``repro check --replay`` re-executes one byte-for-byte.
    """
    failed = _require_backend(args, "sim")
    if failed is not None:
        return failed
    from repro.check import (
        CheckConfig,
        ModelChecker,
        render_counterexample,
        replay,
    )

    config = CheckConfig(
        scenario=args.scenario,
        protocol=args.protocol,
        scheme=CommitScheme[args.scheme],
        seed=args.seed,
        depth=args.depth,
        crashes=args.crashes,
        max_schedules=args.max_schedules,
        bounded=args.bounded,
        prune=not args.no_prune,
        time_budget=args.budget,
        strict=args.strict,
        jobs=args.jobs,
        paranoid=args.paranoid,
    )
    smoke_quota = 0
    if args.smoke:
        # CI preset: the conflict scenario under P1 with crash injection
        # must clear >= 1000 distinct schedules, all violation-free.
        config.scenario = "conflict"
        config.protocol = "P1"
        config.depth = 14
        config.crashes = 2
        config.max_schedules = 1500
        config.time_budget = args.budget if args.budget else 55.0
        smoke_quota = 1000

    if args.replay is not None:
        choices = tuple(
            int(piece) for piece in args.replay.split(",") if piece != ""
        )
        outcome = replay(config, choices)
        sys.stdout.write(outcome.system.obs.jsonl())
        for violation in outcome.violations:
            print(violation, file=sys.stderr)
        return 1 if outcome.violations else 0

    report = ModelChecker(config).run()
    mode = f"bounded({config.bounded})" if config.bounded else "dfs"
    print(
        f"scenario={config.scenario} protocol={config.protocol} "
        f"scheme={config.scheme.name} mode={mode} depth={config.depth} "
        f"crashes={config.crashes} prune={config.prune} jobs={config.jobs}"
    )
    print(
        f"explored {report.explored} distinct schedules in "
        f"{report.elapsed:.1f}s "
        f"({'exhausted' if report.exhausted else 'budget-capped'}; "
        f"{report.first_run_choice_points} choice points on the default "
        f"schedule)"
    )
    if report.counterexamples:
        shown = report.counterexamples[: args.show]
        print(
            f"FOUND {len(report.counterexamples)} counterexample(s); "
            f"showing {len(shown)}:"
        )
        for counterexample in shown:
            print()
            print(render_counterexample(counterexample))
        return 1
    print("no oracle violations")
    if smoke_quota and report.explored < smoke_quota:
        print(
            f"SMOKE FAILURE: explored {report.explored} < {smoke_quota} "
            "required schedules"
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned performance workloads; write BENCH_*.json artifacts.

    With ``--baseline DIR`` the gated throughput metrics are compared to
    the committed baseline and the command exits 1 on a regression beyond
    ``--tolerance``.  ``--update-baseline`` rewrites the baseline files
    from this run instead (do this deliberately, on the reference host).
    """
    failed = _require_backend(args, "sim")
    if failed is not None:
        return failed
    import os

    from repro.harness.bench import (
        compare_to_baseline, run_net, run_scale, run_suite, to_json,
    )

    if args.net:
        payloads = run_net(smoke=args.smoke, seed=args.seed)
    elif args.scale:
        payloads = run_scale(smoke=args.smoke, seed=args.seed)
    else:
        payloads = run_suite(smoke=args.smoke, seed=args.seed, jobs=args.jobs)
    os.makedirs(args.out, exist_ok=True)
    for name, payload in payloads.items():
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_json(payload))
        print(f"wrote {path}")
        for bench_name, metrics in sorted(payload["results"].items()):
            shown = "  ".join(
                f"{metric}={value:.1f}"
                for metric, value in sorted(metrics.items())
                if metric.endswith("_per_s") or not metric.endswith("_s")
            )
            print(f"  {bench_name}: {shown}")

    if args.update_baseline:
        os.makedirs(args.baseline, exist_ok=True)
        for name, payload in payloads.items():
            path = os.path.join(args.baseline, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_json(payload))
            print(f"baseline updated: {path}")
        return 0

    regressions: list[str] = []
    import json as _json

    for name, payload in payloads.items():
        path = os.path.join(args.baseline, name)
        if not os.path.exists(path):
            print(f"no baseline {path}; skipping gate for {name}")
            continue
        with open(path, encoding="utf-8") as handle:
            baseline = _json.load(handle)
        regressions.extend(
            compare_to_baseline(payload, baseline, args.tolerance)
        )
    if regressions:
        print("PERF REGRESSION:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"within {args.tolerance:.0%} of baseline")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Head-to-head commit-scheme comparison; writes BENCH_compare.json.

    Every registered scheme runs the same seeded contention workload and
    the same coordinator-crash drill (see :mod:`repro.harness.compare`).
    ``--vote-timeout`` (repeatable) sweeps the coordinator's vote-collection
    timeout across every scheme.  Gated against the committed baseline
    exactly like ``repro bench``.
    """
    failed = _require_backend(args, "sim")
    if failed is not None:
        return failed
    import json as _json
    import os

    from repro.harness.bench import compare_to_baseline, to_json
    from repro.harness.compare import run_compare

    payloads = run_compare(
        smoke=args.smoke, seed=args.seed,
        vote_timeouts=tuple(args.vote_timeout or ()),
    )
    os.makedirs(args.out, exist_ok=True)
    for name, payload in payloads.items():
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_json(payload))
        print(f"wrote {path}")
        for block, metrics in sorted(payload["results"].items()):
            print(
                f"  {block}: txns_per_s={metrics['txns_per_s']:.1f}  "
                f"msgs/txn={metrics['messages_per_txn']:.1f}  "
                f"abort={metrics['abort_rate']:.2f}  "
                f"comp={metrics['compensation_rate']:.2f}  "
                f"hold_p99={metrics['lock_hold_p99']:.1f}  "
                f"blocking={metrics['blocking_time']:.1f}"
                f"{' (decided in outage)' if metrics['decided_in_outage'] else ''}"
            )

    if args.update_baseline:
        os.makedirs(args.baseline, exist_ok=True)
        for name, payload in payloads.items():
            path = os.path.join(args.baseline, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_json(payload))
            print(f"baseline updated: {path}")
        return 0

    regressions: list[str] = []
    for name, payload in payloads.items():
        path = os.path.join(args.baseline, name)
        if not os.path.exists(path):
            print(f"no baseline {path}; skipping gate for {name}")
            continue
        with open(path, encoding="utf-8") as handle:
            baseline = _json.load(handle)
        regressions.extend(
            compare_to_baseline(payload, baseline, args.tolerance)
        )
    if regressions:
        print("PERF REGRESSION:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"within {args.tolerance:.0%} of baseline")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzers; exit 1 when any rule fires.

    Six families (see ``docs/ANALYSIS.md``): repertoire/compensation
    soundness (inverse closure, Theorem 2 write coverage, Section 2 real
    actions), the commutativity matrix against the A1–A4 stratification
    preconditions, the determinism lint over ``src/repro``,
    coordinator/participant dispatch exhaustiveness, protocol-flow
    verification (force-before-send plus per-scheme message-flow graphs),
    and the event-loop blocking-call analyzer over ``repro.rt``.  Nothing
    is executed: no schedules, no simulation, no state.
    """
    from pathlib import Path

    from repro.analysis import render_json, render_text, run_all

    root = Path(args.root) if args.root else None
    report = run_all(root)
    if args.flow_dot:
        from repro.analysis import default_root, render_flow_dot

        out_dir = Path(args.flow_dot)
        out_dir.mkdir(parents=True, exist_ok=True)
        graphs = render_flow_dot(root if root is not None else default_root())
        for scheme, dot in sorted(graphs.items()):
            (out_dir / f"flow_{scheme}.dot").write_text(
                dot, encoding="utf-8"
            )
    if args.json:
        sys.stdout.write(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run one site daemon until an admin shutdown or Ctrl-C."""
    failed = _require_backend(args, "net")
    if failed is not None:
        return failed
    from repro.rt.config import load_cluster
    from repro.rt.daemon import SiteDaemon, serve_forever

    cluster = load_cluster(args.cluster)
    daemon = SiteDaemon(
        args.site,
        cluster,
        scheme=CommitScheme[args.scheme],
        protocol=args.protocol,
        time_scale=args.time_scale,
        keys_per_site=args.keys,
        initial_value=args.value,
        obs_path=(
            cluster.events_path(args.site) if args.obs else None
        ),
    )
    spec = cluster.site(args.site)
    print(
        f"repro serve: {args.site} on {spec.host}:{spec.port} "
        f"(wal: {cluster.wal_path(args.site)}, scheme={args.scheme}, "
        f"protocol={args.protocol})",
        flush=True,
    )
    try:
        serve_forever(daemon)
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Admin queries or a demo transfer against a live cluster."""
    import json

    failed = _require_backend(args, "net")
    if failed is not None:
        return failed
    from repro.rt.client import NetClient, site_shutdown, site_status
    from repro.rt.config import load_cluster

    cluster = load_cluster(args.cluster)
    if args.status:
        try:
            status = site_status(cluster, args.status)
        except OSError as exc:
            print(f"cannot reach {args.status}: {exc}", file=sys.stderr)
            return 1
        if status is None:
            print(f"no status reply from {args.status}", file=sys.stderr)
            return 1
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    if args.shutdown:
        try:
            reply = site_shutdown(cluster, args.shutdown)
        except OSError as exc:
            print(f"cannot reach {args.shutdown}: {exc}", file=sys.stderr)
            return 1
        print(f"{args.shutdown}: {'ok' if reply else 'no reply'}")
        return 0 if reply else 1

    sites = cluster.site_ids
    if len(sites) < 2:
        print("need at least two sites for the transfer demo",
              file=sys.stderr)
        return 2
    src, dst = sites[0], sites[1]
    client = NetClient(
        cluster, scheme=CommitScheme[args.scheme], protocol=args.protocol,
    )
    outcome = client.run_transaction(GlobalTxnSpec(
        txn_id=args.txn,
        subtxns=[
            SubtxnSpec(src, [SemanticOp("withdraw", args.key,
                                        {"amount": args.amount})]),
            SubtxnSpec(dst, [SemanticOp("deposit", args.key,
                                        {"amount": args.amount})]),
        ],
    ))
    print(
        f"{args.txn}: {'COMMIT' if outcome.committed else 'ABORT'} "
        f"({src} -> {dst}, {args.key} amount={args.amount}); "
        f"no_votes={outcome.no_votes} "
        f"compensated={outcome.compensated_sites}"
    )
    return 0 if outcome.committed else 1


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="O2PC reproduction (Levy, Korth & Silberschatz, "
                    "SIGMOD 1991)",
    )
    parser.add_argument("--seed", type=int, default=0)

    # Shared options are defined once and accepted after any subcommand
    # that lists them (``repro trace --seed 7``).  SUPPRESS keeps a
    # subparser from clobbering a top-level value and lets each verb pick
    # its own default via set_defaults.  The factories matter: argparse's
    # set_defaults mutates ``action.default`` on the action object, and
    # ``parents=`` shares actions by reference — a single shared parent
    # would leak one verb's default into every other verb.
    def seed_parent() -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
        return p

    def protocol_parent() -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument(
            "--protocol", default=argparse.SUPPRESS,
            choices=sorted(PROTOCOLS),
            help="marking protocol",
        )
        return p

    def backend_parent() -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument(
            "--backend", default=argparse.SUPPRESS,
            choices=list(BACKENDS),
            help="transport backend: discrete-event sim or TCP daemons",
        )
        return p

    def scheme_parent() -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument(
            "--scheme", default=argparse.SUPPRESS,
            choices=sorted(s.name for s in CommitScheme),
            help="commit scheme (engine registry)",
        )
        return p

    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", parents=[seed_parent(), protocol_parent()],
                          help="narrated end-to-end run")
    demo.set_defaults(fn=cmd_demo, protocol="P1")

    drill = sub.add_parser("drill", parents=[seed_parent()],
                           help="coordinator-failure drill")
    drill.add_argument("--outage", type=float, default=100.0)
    drill.set_defaults(fn=cmd_drill)

    sweep = sub.add_parser("sweep", parents=[seed_parent()],
                           help="abort-probability sweep")
    sweep.add_argument("--transactions", type=int, default=60)
    sweep.add_argument("--sites", type=int, default=4)
    sweep.set_defaults(fn=cmd_sweep)

    report = sub.add_parser("report", parents=[seed_parent()],
                            help="write experiment artifacts")
    report.add_argument("--out", default="results")
    report.set_defaults(fn=cmd_report)

    audit = sub.add_parser("audit", parents=[seed_parent(), protocol_parent()],
                           help="regular-cycle audit")
    audit.set_defaults(fn=cmd_audit, protocol="none")

    trace = sub.add_parser(
        "trace", parents=[seed_parent(), protocol_parent(), backend_parent(),
                          scheme_parent()],
        help="emit a deterministic JSONL event trace",
    )
    trace.add_argument("--transactions", type=int, default=20)
    trace.add_argument("--sites", type=int, default=3)
    trace.add_argument("--out", default=None,
                       help="write JSONL here instead of stdout")
    trace.set_defaults(fn=cmd_trace, protocol="P1", backend="sim",
                       scheme="O2PC")

    metrics = sub.add_parser(
        "metrics", parents=[seed_parent(), protocol_parent(), backend_parent(),
                            scheme_parent()],
        help="streaming metrics over a workload",
    )
    metrics.add_argument("--transactions", type=int, default=40)
    metrics.add_argument("--sites", type=int, default=3)
    metrics.add_argument("--watch", action="store_true",
                         help="print one snapshot per simulation window")
    metrics.add_argument("--window", type=_positive_float, default=10.0)
    metrics.add_argument("--cluster", default=None,
                         help="with --backend net: aggregate this live "
                              "cluster's --obs event streams instead of "
                              "running a workload")
    metrics.set_defaults(fn=cmd_metrics, protocol="P1", backend="sim",
                         scheme="O2PC")

    check = sub.add_parser(
        "check", parents=[seed_parent(), protocol_parent(), backend_parent(),
                          scheme_parent()],
        help="model-check protocol schedules and crash points",
    )
    check.add_argument("--scenario", default="conflict",
                       choices=["conflict", "crashcoord", "duel"])
    check.add_argument("--depth", type=int, default=12,
                       help="choice points eligible for DFS branching")
    check.add_argument("--crashes", type=int, default=0,
                       help="crash budget per run (0 = no crash injection)")
    check.add_argument("--max-schedules", type=int, default=2000)
    check.add_argument("--bounded", type=int, default=0,
                       help="N seeded random walks instead of the DFS")
    check.add_argument("--no-prune", action="store_true",
                       help="disable partial-order pruning (full search)")
    check.add_argument("--budget", type=_positive_float, default=None,
                       help="wall-clock budget in seconds")
    check.add_argument("--strict", action="store_true",
                       help="literal criterion instead of effective")
    check.add_argument("--jobs", type=int, default=1,
                       help="worker processes; report is byte-identical "
                            "to --jobs 1")
    check.add_argument("--paranoid", action="store_true",
                       help="cross-check the incremental conflict index "
                            "against the O(n^2) SG rebuild on every run")
    check.add_argument("--smoke", action="store_true",
                       help="CI preset: conflict/P1, crashes, 1k-schedule "
                            "quota")
    check.add_argument("--show", type=int, default=3,
                       help="max counterexamples to render")
    check.add_argument("--replay", default=None, metavar="V0,V1,...",
                       help="replay one choice vector; prints its JSONL "
                            "trace")
    check.set_defaults(fn=cmd_check, protocol="P1", backend="sim",
                       scheme="O2PC")

    bench = sub.add_parser(
        "bench", parents=[seed_parent(), backend_parent()],
        help="pinned perf workloads; BENCH_*.json + baseline gate",
    )
    bench.add_argument("--smoke", action="store_true",
                       help="CI-sized workloads (same metrics, smaller "
                            "pins)")
    bench.add_argument("--scale", action="store_true",
                       help="run the 64-site sharded scale workload "
                            "instead of the default suite "
                            "(BENCH_scale.json)")
    bench.add_argument("--net", action="store_true",
                       help="run the networked-runtime workload: real "
                            "daemons over localhost TCP, serial vs "
                            "pipelined coordinators (BENCH_net.json)")
    bench.add_argument("--out", default="bench-artifacts",
                       help="directory for the BENCH_*.json artifacts "
                            "(matches the CI artifact location; baselines "
                            "stay in benchmarks/baselines)")
    bench.add_argument("--baseline", default="benchmarks/baselines",
                       help="committed baseline directory for the "
                            "regression gate")
    bench.add_argument("--tolerance", type=_positive_float, default=0.25,
                       help="allowed fractional drop in gated metrics")
    bench.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline files from this run")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the check workload")
    bench.set_defaults(fn=cmd_bench, backend="sim")

    compare = sub.add_parser(
        "compare", parents=[seed_parent(), backend_parent()],
        help="head-to-head commit schemes; BENCH_compare.json + gate",
    )
    compare.add_argument("--smoke", action="store_true",
                         help="CI-sized workload (same metrics, smaller "
                              "pins)")
    compare.add_argument("--vote-timeout", type=_positive_float,
                         action="append", metavar="UNITS",
                         help="sweep the coordinator's vote-collection "
                              "timeout (repeatable; one result block per "
                              "scheme x value)")
    compare.add_argument("--out", default="bench-artifacts",
                         help="directory for BENCH_compare.json")
    compare.add_argument("--baseline", default="benchmarks/baselines",
                         help="committed baseline directory for the "
                              "regression gate")
    compare.add_argument("--tolerance", type=_positive_float, default=0.25,
                         help="allowed fractional drop in gated metrics")
    compare.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline file from this run")
    compare.set_defaults(fn=cmd_compare, backend="sim")

    lint = sub.add_parser(
        "lint",
        help="static compensation-soundness + determinism analyzers",
    )
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report (stable key order)")
    lint.add_argument("--root", default=None,
                      help="source tree to scan instead of the installed "
                           "package (AST families only)")
    lint.add_argument("--flow-dot", default=None, metavar="DIR",
                      help="also write one Graphviz flow_<SCHEME>.dot "
                           "message-flow graph per commit scheme to DIR")
    lint.set_defaults(fn=cmd_lint)

    serve = sub.add_parser(
        "serve", parents=[seed_parent(), protocol_parent(), backend_parent()],
        help="run one site as a TCP daemon (net backend)",
    )
    serve.add_argument("site", help="site id from the cluster file")
    serve.add_argument("--cluster", required=True,
                       help="cluster file (site addresses + data_dir)")
    serve.add_argument("--scheme", default="O2PC",
                       choices=sorted(s.name for s in CommitScheme))
    serve.add_argument("--time-scale", type=_positive_float, default=0.01,
                       help="real seconds per simulation unit")
    serve.add_argument("--keys", type=int, default=20,
                       help="keys preloaded on first boot")
    serve.add_argument("--value", type=int, default=100,
                       help="initial value of preloaded keys")
    serve.add_argument("--obs", action="store_true",
                       help="stream this site's events to "
                            "<data_dir>/<site>.events.jsonl (read back "
                            "with 'repro metrics --backend net')")
    serve.set_defaults(fn=cmd_serve, protocol="none", backend="net")

    client = sub.add_parser(
        "client", parents=[seed_parent(), protocol_parent(), backend_parent()],
        help="run a transaction / admin command against a live cluster",
    )
    client.add_argument("--cluster", required=True,
                        help="cluster file (site addresses + data_dir)")
    client.add_argument("--status", metavar="SITE", default=None,
                        help="print one daemon's status snapshot as JSON")
    client.add_argument("--shutdown", metavar="SITE", default=None,
                        help="ask one daemon to shut down cleanly")
    client.add_argument("--scheme", default="O2PC",
                        choices=sorted(s.name for s in CommitScheme))
    client.add_argument("--txn", default="T1", help="transaction id")
    client.add_argument("--key", default="k0",
                        help="key moved by the transfer demo")
    client.add_argument("--amount", type=int, default=10,
                        help="amount moved by the transfer demo")
    client.set_defaults(fn=cmd_client, protocol="none", backend="net")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
