"""In-memory key-value store: the data plane of one site.

Values are arbitrary Python objects; keys are strings.  The store itself is
oblivious to transactions — atomicity and isolation are layered on top by the
WAL, the recovery manager, and the lock manager.  A tombstone-free design is
used: deletion removes the key, and the WAL records ``TOMBSTONE`` as the
before/after image so undo/redo can restore deletions faithfully.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import KeyNotFound


class _Tombstone:
    """Marker object: "the key did not exist"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


class KVStore:
    """A single site's database state."""

    def __init__(self, site_id: str = "site") -> None:
        self.site_id = site_id
        self._data: dict[str, Any] = {}
        #: monotone count of physical writes (metrics)
        self.write_count = 0
        self.read_count = 0

    # -- reads -----------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Return the value at ``key``; raises :class:`KeyNotFound` if absent."""
        self.read_count += 1
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFound(key) from None

    def get_or(self, key: str, default: Any = None) -> Any:
        """Return the value at ``key`` or ``default`` if absent."""
        self.read_count += 1
        return self._data.get(key, default)

    def exists(self, key: str) -> bool:
        """True if ``key`` is present."""
        return key in self._data

    def snapshot_value(self, key: str) -> Any:
        """Before-image of ``key``: its value, or ``TOMBSTONE`` if absent.

        Unlike :meth:`get`, this does not count as a logical read — it is used
        by the WAL layer to capture undo information.
        """
        return self._data.get(key, TOMBSTONE)

    def snapshot_read(self, key: str) -> Any:
        """Before-image of ``key`` that *does* count as a logical read.

        The write path captures the before-image exactly once and reuses
        it for both the undo program and the WAL record; this variant
        keeps the read accounting of :meth:`get_or` while preserving the
        ``TOMBSTONE`` distinction :meth:`snapshot_value` provides.
        """
        self.read_count += 1
        return self._data.get(key, TOMBSTONE)

    # -- writes ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Set ``key`` to ``value``."""
        self.write_count += 1
        self._data[key] = value

    def delete(self, key: str) -> None:
        """Remove ``key`` (missing keys are ignored: idempotent delete)."""
        self.write_count += 1
        self._data.pop(key, None)

    def apply_image(self, key: str, image: Any) -> None:
        """Install an image captured by :meth:`snapshot_value` (undo/redo)."""
        if image is TOMBSTONE:
            self._data.pop(key, None)
        else:
            self._data[key] = image
        self.write_count += 1

    # -- bulk / introspection -------------------------------------------------------

    def keys(self) -> list[str]:
        """All keys, sorted (deterministic iteration for tests)."""
        return sorted(self._data)

    def items(self) -> Iterator[tuple[str, Any]]:
        """(key, value) pairs in sorted key order."""
        for key in self.keys():
            yield key, self._data[key]

    def snapshot(self) -> dict[str, Any]:
        """Shallow copy of the full state (checkpoints, test assertions)."""
        return dict(self._data)

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace the full state with ``snapshot`` (crash modeling)."""
        self._data = dict(snapshot)

    def wipe(self) -> None:
        """Lose all volatile state (what a crash does to main memory)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"<KVStore {self.site_id} keys={len(self._data)}>"
