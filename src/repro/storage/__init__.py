"""Per-site storage engine: key-value store, write-ahead log, recovery.

Each site owns one :class:`~repro.storage.kvstore.KVStore` guarded by a
:class:`~repro.storage.wal.WriteAheadLog`.  Transactions write before-images
to the log before updating the store; :class:`~repro.storage.recovery.RecoveryManager`
implements transaction rollback (undo from log — the paper's "standard
roll-back recovery") and full crash-restart recovery (redo committed work,
undo in-flight work).
"""

from repro.storage.kvstore import KVStore
from repro.storage.recovery import RecoveryManager
from repro.storage.wal import LogRecord, RecordType, WriteAheadLog

__all__ = [
    "KVStore",
    "LogRecord",
    "RecordType",
    "RecoveryManager",
    "WriteAheadLog",
]
