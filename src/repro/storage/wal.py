"""Write-ahead log with undo/redo records.

The log is the site's durable state: it survives crashes (the KV store does
not).  Records carry before- and after-images, so the recovery manager can
undo (transaction rollback, the paper's "standard roll-back recovery") and
redo (crash restart) any update.

2PC durability points are modeled faithfully with dedicated record types:
a participant force-writes ``PREPARE`` before voting YES, the coordinator
force-writes ``DECIDE`` before sending its decision, and ``COMMIT``/``ABORT``
mark local transaction termination.  O2PC participants write
``LOCAL_COMMIT`` when they release locks early (Section 2), which is what a
recovering site uses to know compensation — not state-based undo — is the
only way to revoke the transaction.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import WALError


class RecordType(enum.Enum):
    """Kinds of log records."""

    BEGIN = "BEGIN"
    UPDATE = "UPDATE"
    #: participant is prepared (voted YES) — 2PC durability point
    PREPARE = "PREPARE"
    #: participant locally committed under O2PC (locks released early)
    LOCAL_COMMIT = "LOCAL_COMMIT"
    #: coordinator decision record
    DECIDE = "DECIDE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    #: compensation completed for the given transaction
    COMPENSATION = "COMPENSATION"
    CHECKPOINT = "CHECKPOINT"


#: record types that terminate a transaction locally
_TERMINAL = {RecordType.COMMIT, RecordType.ABORT}


@dataclass
class LogRecord:
    """One entry in the write-ahead log."""

    lsn: int
    record_type: RecordType
    txn_id: str
    key: str | None = None
    before: Any = None
    after: Any = None
    #: LSN of this transaction's previous record (backward chain for undo)
    prev_lsn: int | None = None
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        core = f"LSN={self.lsn} {self.record_type.value} txn={self.txn_id}"
        if self.record_type is RecordType.UPDATE:
            core += f" key={self.key} {self.before!r}->{self.after!r}"
        return f"<{core}>"


class WriteAheadLog:
    """Append-only log for one site.

    The log also maintains the per-transaction backward chain (``prev_lsn``)
    and an index of each transaction's records so rollback does not scan the
    whole log.
    """

    def __init__(self, site_id: str = "site") -> None:
        self.site_id = site_id
        self._records: list[LogRecord] = []
        self._lsn = itertools.count(1)
        #: LSN of the first retained record minus one (grows on truncation)
        self._base = 0
        #: last LSN per transaction (head of the undo chain)
        self._last_lsn: dict[str, int] = {}
        #: force-write counter (metrics: 2PC forced log writes are the
        #: protocol's durability cost)
        self.forced_writes = 0

    # -- append -----------------------------------------------------------------

    def append(
        self,
        record_type: RecordType,
        txn_id: str,
        key: str | None = None,
        before: Any = None,
        after: Any = None,
        force: bool = False,
        **payload: Any,
    ) -> LogRecord:
        """Append a record; returns it.

        ``force=True`` models a forced (synchronous) log write; it only bumps
        the ``forced_writes`` counter since the simulated log is always
        durable.
        """
        record = LogRecord(
            lsn=next(self._lsn),
            record_type=record_type,
            txn_id=txn_id,
            key=key,
            before=before,
            after=after,
            prev_lsn=self._last_lsn.get(txn_id),
            payload=dict(payload),
        )
        self._records.append(record)
        self._last_lsn[txn_id] = record.lsn
        if force:
            self.forced_writes += 1
        return record

    # -- reading -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def record_at(self, lsn: int) -> LogRecord:
        """The record with the given LSN (dense; truncation shifts the base)."""
        index = lsn - 1 - self._base
        if not 0 <= index < len(self._records):
            raise WALError(f"no record with LSN {lsn}")
        record = self._records[index]
        if record.lsn != lsn:  # pragma: no cover - integrity guard
            raise WALError(f"log corrupted at LSN {lsn}")
        return record

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, snapshot: dict[str, Any], active: list[str]) -> LogRecord:
        """Append a CHECKPOINT record carrying a store snapshot.

        ``active`` lists the transactions in flight at checkpoint time;
        truncation is only legal at a *quiescent* checkpoint (empty
        ``active``), because truncating under it would sever live undo
        chains.
        """
        return self.append(
            RecordType.CHECKPOINT, txn_id="__checkpoint__", force=True,
            snapshot=dict(snapshot), active=list(active),
        )

    def last_checkpoint(self) -> LogRecord | None:
        """The most recent CHECKPOINT record still in the log, or None."""
        for record in reversed(self._records):
            if record.record_type is RecordType.CHECKPOINT:
                return record
        return None

    def truncate_at_checkpoint(self) -> int:
        """Drop every record before the latest quiescent checkpoint.

        Returns the number of records dropped.  Raises
        :class:`~repro.errors.WALError` if there is no checkpoint or the
        latest one was taken with transactions in flight (their undo
        chains would be severed).
        """
        checkpoint = self.last_checkpoint()
        if checkpoint is None:
            raise WALError("no checkpoint to truncate at")
        if checkpoint.payload.get("active"):
            raise WALError(
                "latest checkpoint is not quiescent: "
                f"{checkpoint.payload['active']}"
            )
        index = checkpoint.lsn - 1 - self._base
        dropped = self._records[:index]
        self._records = self._records[index:]
        self._base = checkpoint.lsn - 1
        # Per-transaction chains of dropped (terminated) transactions are
        # gone; purge stale heads so records_for() stops at the cut.
        dropped_lsns = {record.lsn for record in dropped}
        self._last_lsn = {
            txn: lsn for txn, lsn in self._last_lsn.items()
            if lsn not in dropped_lsns
        }
        for record in self._records:
            if record.prev_lsn is not None and record.prev_lsn <= self._base:
                record.prev_lsn = None
        return len(dropped)

    def records_for(self, txn_id: str) -> list[LogRecord]:
        """All records of one transaction, oldest first."""
        chain: list[LogRecord] = []
        lsn = self._last_lsn.get(txn_id)
        while lsn is not None:
            record = self.record_at(lsn)
            chain.append(record)
            lsn = record.prev_lsn
        chain.reverse()
        return chain

    def updates_for(self, txn_id: str) -> list[LogRecord]:
        """Only the UPDATE records of one transaction, oldest first."""
        return [
            r for r in self.records_for(txn_id)
            if r.record_type is RecordType.UPDATE
        ]

    def status_of(self, txn_id: str) -> RecordType | None:
        """The most decisive record type logged for ``txn_id``.

        Returns COMMIT/ABORT if terminated, else LOCAL_COMMIT if locally
        committed, else PREPARE if prepared, else BEGIN if started, else
        None if unknown at this site.
        """
        seen: set[RecordType] = {
            r.record_type for r in self.records_for(txn_id)
        }
        for decisive in (
            RecordType.COMMIT,
            RecordType.ABORT,
            RecordType.LOCAL_COMMIT,
            RecordType.PREPARE,
            RecordType.BEGIN,
        ):
            if decisive in seen:
                return decisive
        return None

    def is_terminated(self, txn_id: str) -> bool:
        """True if a COMMIT or ABORT record exists for ``txn_id``."""
        return any(
            r.record_type in _TERMINAL for r in self.records_for(txn_id)
        )

    def active_transactions(self) -> list[str]:
        """Transactions with a BEGIN but no terminal record (oldest first)."""
        begun: list[str] = []
        terminated: set[str] = set()
        for record in self._records:
            if record.record_type is RecordType.BEGIN:
                begun.append(record.txn_id)
            elif record.record_type in _TERMINAL:
                terminated.add(record.txn_id)
        return [t for t in begun if t not in terminated]
