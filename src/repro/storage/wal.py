"""Write-ahead log with undo/redo records.

The log is the site's durable state: it survives crashes (the KV store does
not).  Records carry before- and after-images, so the recovery manager can
undo (transaction rollback, the paper's "standard roll-back recovery") and
redo (crash restart) any update.

2PC durability points are modeled faithfully with dedicated record types:
a participant force-writes ``PREPARE`` before voting YES, the coordinator
force-writes ``DECIDE`` before sending its decision, and ``COMMIT``/``ABORT``
mark local transaction termination.  O2PC participants write
``LOCAL_COMMIT`` when they release locks early (Section 2), which is what a
recovering site uses to know compensation — not state-based undo — is the
only way to revoke the transaction.

File backing (the ``net`` backend): constructed with a ``path``, the log
appends every record to that file as a length-prefixed, CRC32-checked JSON
frame and ``fsync``\\ s on forced writes, so it survives ``kill -9`` of the
hosting daemon.  Reopening the same path replays the file; a torn or
corrupt final frame — the signature of a crash mid-append — is detected by
the length/checksum pair and truncated away (the record it belonged to was
never acknowledged as durable), matching what a real recovery pass does
with a torn tail.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import WALError

#: on-disk frame header: payload length + CRC32 of the payload
_FRAME_HEADER = struct.Struct(">II")


class RecordType(enum.Enum):
    """Kinds of log records."""

    BEGIN = "BEGIN"
    UPDATE = "UPDATE"
    #: participant is prepared (voted YES) — 2PC durability point
    PREPARE = "PREPARE"
    #: participant locally committed under O2PC (locks released early)
    LOCAL_COMMIT = "LOCAL_COMMIT"
    #: coordinator decision record
    DECIDE = "DECIDE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    #: compensation completed for the given transaction
    COMPENSATION = "COMPENSATION"
    CHECKPOINT = "CHECKPOINT"


#: record types that terminate a transaction locally
_TERMINAL = {RecordType.COMMIT, RecordType.ABORT}


def _record_to_json(record: "LogRecord") -> dict[str, Any]:
    """JSON form of one record (values must be JSON-serializable)."""
    return {
        "lsn": record.lsn,
        "type": record.record_type.value,
        "txn": record.txn_id,
        "key": record.key,
        "before": record.before,
        "after": record.after,
        "prev": record.prev_lsn,
        "payload": record.payload,
    }


def _record_from_json(data: dict[str, Any]) -> "LogRecord":
    """Inverse of :func:`_record_to_json`."""
    return LogRecord(
        lsn=data["lsn"],
        record_type=RecordType(data["type"]),
        txn_id=data["txn"],
        key=data["key"],
        before=data["before"],
        after=data["after"],
        prev_lsn=data["prev"],
        payload=data["payload"],
    )


@dataclass(slots=True)
class LogRecord:
    """One entry in the write-ahead log."""

    lsn: int
    record_type: RecordType
    txn_id: str
    key: str | None = None
    before: Any = None
    after: Any = None
    #: LSN of this transaction's previous record (backward chain for undo)
    prev_lsn: int | None = None
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        core = f"LSN={self.lsn} {self.record_type.value} txn={self.txn_id}"
        if self.record_type is RecordType.UPDATE:
            core += f" key={self.key} {self.before!r}->{self.after!r}"
        return f"<{core}>"


class WriteAheadLog:
    """Append-only log for one site.

    The log also maintains the per-transaction backward chain (``prev_lsn``)
    and an index of each transaction's records so rollback does not scan the
    whole log.
    """

    def __init__(self, site_id: str = "site", path: str | None = None) -> None:
        self.site_id = site_id
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        #: LSN of the first retained record minus one (grows on truncation)
        self._base = 0
        #: last LSN per transaction (head of the undo chain)
        self._last_lsn: dict[str, int] = {}
        #: force-write counter (metrics: 2PC forced log writes are the
        #: protocol's durability cost)
        self.forced_writes = 0
        #: actual ``fsync`` calls issued on the backing file; with group
        #: commit one fsync covers many force points, so fsyncs <
        #: forced_writes is the whole point of the optimization
        self.fsyncs = 0
        #: group-commit mode: a forced append marks the log *sync-needed*
        #: instead of fsyncing inline; an external flusher (the daemon's
        #: :class:`~repro.rt.group_commit.GroupCommitFlusher`) later calls
        #: :meth:`sync` once for the whole group.  The durability contract
        #: shifts, it does not weaken: the host must not acknowledge a
        #: forced record (send the frame that reveals it) before the
        #: covering sync — the transport's durability gate enforces that.
        self.group_commit = False
        #: force points appended since the last fsync (group-commit mode)
        self._pending_forces = 0
        #: backing file (None = purely in-memory, the sim backend)
        self.path = path
        #: torn/corrupt trailing frames dropped when the file was opened
        self.torn_records_truncated = 0
        self._file: Any = None
        #: encoded frames not yet handed to the file object — unforced
        #: appends batch here and are written in one call at the next
        #: forced write (or close), which is exactly the durability a WAL
        #: promises: only forced records are guaranteed to survive a kill.
        self._write_buffer: list[bytes] = []
        if path is not None:
            self._open_file(path)

    # -- file backing ------------------------------------------------------------

    def _open_file(self, path: str) -> None:
        """Open (and replay) the backing file; truncate any torn tail."""
        if os.path.exists(path):
            good_bytes = self._replay_file(path)
            self._file = open(path, "r+b")
            self._file.seek(0, os.SEEK_END)
            if self._file.tell() > good_bytes:
                # A frame was half-written when the daemon died: the record
                # was never durable, so recovery discards it.
                self._file.truncate(good_bytes)
                self._file.seek(good_bytes)
                self._file.flush()
                os.fsync(self._file.fileno())
        else:
            self._file = open(path, "w+b")

    def _replay_file(self, path: str) -> int:
        """Rebuild in-memory state from ``path``; returns intact byte count."""
        offset = 0
        records: list[LogRecord] = []
        with open(path, "rb") as handle:
            data = handle.read()
        while offset < len(data):
            header = data[offset:offset + _FRAME_HEADER.size]
            if len(header) < _FRAME_HEADER.size:
                self.torn_records_truncated += 1
                break
            length, checksum = _FRAME_HEADER.unpack(header)
            payload = data[
                offset + _FRAME_HEADER.size:
                offset + _FRAME_HEADER.size + length
            ]
            if len(payload) < length or zlib.crc32(payload) != checksum:
                self.torn_records_truncated += 1
                break
            try:
                records.append(_record_from_json(json.loads(payload)))
            except (ValueError, KeyError) as exc:
                raise WALError(
                    f"{path}: undecodable record at byte {offset}: {exc}"
                ) from exc
            offset += _FRAME_HEADER.size + length
        for record in records:
            self._install(record)
        return offset

    def _install(self, record: LogRecord) -> None:
        """Install one replayed record into the in-memory structures."""
        if not self._records:
            self._base = record.lsn - 1
        elif record.lsn != self._records[-1].lsn + 1:
            raise WALError(
                f"non-contiguous LSNs in {self.path}: "
                f"{self._records[-1].lsn} then {record.lsn}"
            )
        self._records.append(record)
        self._last_lsn[record.txn_id] = record.lsn
        self._next_lsn = record.lsn + 1

    def _persist(self, record: LogRecord, force: bool) -> None:
        payload = json.dumps(
            _record_to_json(record), sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self._write_buffer.append(
            _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        if force:
            if self.group_commit:
                self._pending_forces += 1
            else:
                self._flush_buffer()

    def _flush_buffer(self) -> None:
        """Write buffered frames in one call, then flush and fsync."""
        if self._write_buffer:
            self._file.write(b"".join(self._write_buffer))
            self._write_buffer.clear()
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._pending_forces = 0

    @property
    def needs_sync(self) -> bool:
        """True when deferred force points await their covering fsync."""
        return self._file is not None and self._pending_forces > 0

    def sync(self) -> int:
        """Flush every deferred force point in one fsync (group commit).

        Returns how many force points the fsync covered — the group size,
        which the flusher uses to adapt its hold window.
        """
        covered = self._pending_forces
        if self._file is not None and (covered or self._write_buffer):
            self._flush_buffer()
        return covered

    def _rewrite_file(self) -> None:
        """Rewrite the backing file from the retained records (truncation)."""
        self._write_buffer.clear()
        self._file.seek(0)
        self._file.truncate(0)
        for record in self._records:
            self._persist(record, force=False)
        self._flush_buffer()

    def close(self) -> None:
        """Flush and close the backing file (no-op when in-memory)."""
        if self._file is not None:
            self._flush_buffer()
            self._file.close()
            self._file = None

    # -- append -----------------------------------------------------------------

    def append(
        self,
        record_type: RecordType,
        txn_id: str,
        key: str | None = None,
        before: Any = None,
        after: Any = None,
        force: bool = False,
        **payload: Any,
    ) -> LogRecord:
        """Append a record; returns it.

        ``force=True`` models a forced (synchronous) log write; it only bumps
        the ``forced_writes`` counter since the simulated log is always
        durable.
        """
        lsn = self._next_lsn
        self._next_lsn = lsn + 1
        record = LogRecord(
            lsn=lsn,
            record_type=record_type,
            txn_id=txn_id,
            key=key,
            before=before,
            after=after,
            prev_lsn=self._last_lsn.get(txn_id),
            # ``**payload`` is already a fresh dict; no defensive copy
            payload=payload,
        )
        self._records.append(record)
        self._last_lsn[txn_id] = lsn
        if force:
            self.forced_writes += 1
        if self._file is not None:
            self._persist(record, force)
        return record

    # -- reading -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def record_at(self, lsn: int) -> LogRecord:
        """The record with the given LSN (dense; truncation shifts the base)."""
        index = lsn - 1 - self._base
        if not 0 <= index < len(self._records):
            raise WALError(f"no record with LSN {lsn}")
        record = self._records[index]
        if record.lsn != lsn:  # pragma: no cover - integrity guard
            raise WALError(f"log corrupted at LSN {lsn}")
        return record

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, snapshot: dict[str, Any], active: list[str]) -> LogRecord:
        """Append a CHECKPOINT record carrying a store snapshot.

        ``active`` lists the transactions in flight at checkpoint time;
        truncation is only legal at a *quiescent* checkpoint (empty
        ``active``), because truncating under it would sever live undo
        chains.
        """
        return self.append(
            RecordType.CHECKPOINT, txn_id="__checkpoint__", force=True,
            snapshot=dict(snapshot), active=list(active),
        )

    def last_checkpoint(self) -> LogRecord | None:
        """The most recent CHECKPOINT record still in the log, or None."""
        for record in reversed(self._records):
            if record.record_type is RecordType.CHECKPOINT:
                return record
        return None

    def truncate_at_checkpoint(self) -> int:
        """Drop every record before the latest quiescent checkpoint.

        Returns the number of records dropped.  Raises
        :class:`~repro.errors.WALError` if there is no checkpoint or the
        latest one was taken with transactions in flight (their undo
        chains would be severed).
        """
        checkpoint = self.last_checkpoint()
        if checkpoint is None:
            raise WALError("no checkpoint to truncate at")
        if checkpoint.payload.get("active"):
            raise WALError(
                "latest checkpoint is not quiescent: "
                f"{checkpoint.payload['active']}"
            )
        index = checkpoint.lsn - 1 - self._base
        dropped = self._records[:index]
        self._records = self._records[index:]
        self._base = checkpoint.lsn - 1
        # Per-transaction chains of dropped (terminated) transactions are
        # gone; purge stale heads so records_for() stops at the cut.
        dropped_lsns = {record.lsn for record in dropped}
        self._last_lsn = {
            txn: lsn for txn, lsn in self._last_lsn.items()
            if lsn not in dropped_lsns
        }
        for record in self._records:
            if record.prev_lsn is not None and record.prev_lsn <= self._base:
                record.prev_lsn = None
        if self._file is not None:
            self._rewrite_file()
        return len(dropped)

    def records_for(self, txn_id: str) -> list[LogRecord]:
        """All records of one transaction, oldest first."""
        chain: list[LogRecord] = []
        lsn = self._last_lsn.get(txn_id)
        while lsn is not None:
            record = self.record_at(lsn)
            chain.append(record)
            lsn = record.prev_lsn
        chain.reverse()
        return chain

    def updates_for(self, txn_id: str) -> list[LogRecord]:
        """Only the UPDATE records of one transaction, oldest first."""
        return [
            r for r in self.records_for(txn_id)
            if r.record_type is RecordType.UPDATE
        ]

    def status_of(self, txn_id: str) -> RecordType | None:
        """The most decisive record type logged for ``txn_id``.

        Returns COMMIT/ABORT if terminated, else LOCAL_COMMIT if locally
        committed, else PREPARE if prepared, else BEGIN if started, else
        None if unknown at this site.
        """
        seen: set[RecordType] = {
            r.record_type for r in self.records_for(txn_id)
        }
        for decisive in (
            RecordType.COMMIT,
            RecordType.ABORT,
            RecordType.LOCAL_COMMIT,
            RecordType.PREPARE,
            RecordType.BEGIN,
        ):
            if decisive in seen:
                return decisive
        return None

    def is_terminated(self, txn_id: str) -> bool:
        """True if a COMMIT or ABORT record exists for ``txn_id``."""
        return any(
            r.record_type in _TERMINAL for r in self.records_for(txn_id)
        )

    def active_transactions(self) -> list[str]:
        """Transactions with a BEGIN but no terminal record (oldest first)."""
        begun: list[str] = []
        terminated: set[str] = set()
        for record in self._records:
            if record.record_type is RecordType.BEGIN:
                begun.append(record.txn_id)
            elif record.record_type in _TERMINAL:
                terminated.add(record.txn_id)
        return [t for t in begun if t not in terminated]
