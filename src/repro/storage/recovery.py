"""Recovery: transaction rollback and crash-restart replay.

Two operations:

* :meth:`RecoveryManager.rollback` — undo one in-flight transaction from its
  log chain (before-images, newest first).  This is the paper's "standard
  roll-back recovery" used at sites that vote NO, and is modeled in the
  serialization-graph layer as a degenerate compensating subtransaction
  (Section 3.2).

* :meth:`RecoveryManager.restart` — rebuild the volatile store after a crash:
  redo every update of a transaction that reached COMMIT or LOCAL_COMMIT
  (an O2PC local commit exposes updates, so they must survive a crash), then
  undo every update of a transaction that did not.  Prepared-but-undecided
  transactions are reported to the caller: under standard 2PC they must stay
  blocked; under O2PC they do not exist (a YES vote locally commits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.storage.kvstore import KVStore
from repro.storage.wal import RecordType, WriteAheadLog


@dataclass
class RestartReport:
    """Outcome of a crash-restart recovery pass."""

    redone: list[str] = field(default_factory=list)
    undone: list[str] = field(default_factory=list)
    #: prepared (voted YES, no decision logged) — blocked under standard 2PC
    in_doubt: list[str] = field(default_factory=list)
    #: locally committed under O2PC with no decision — await decision, and
    #: compensate (not undo) if the decision turns out to be ABORT
    locally_committed: list[str] = field(default_factory=list)


class RecoveryManager:
    """Undo/redo engine over one site's store and log."""

    def __init__(self, store: KVStore, wal: WriteAheadLog) -> None:
        self.store = store
        self.wal = wal

    # -- transaction rollback -----------------------------------------------

    def rollback(self, txn_id: str) -> int:
        """Undo ``txn_id``'s updates from the log; returns #updates undone.

        Must not be called for a transaction that already terminated or that
        locally committed (those need compensation, not state-based undo).
        """
        status = self.wal.status_of(txn_id)
        if status in (RecordType.COMMIT, RecordType.ABORT):
            raise RecoveryError(
                f"cannot roll back terminated transaction {txn_id}"
            )
        if status is RecordType.LOCAL_COMMIT:
            raise RecoveryError(
                f"{txn_id} locally committed: requires compensation, not undo"
            )
        updates = self.wal.updates_for(txn_id)
        for record in reversed(updates):
            assert record.key is not None
            self.store.apply_image(record.key, record.before)
        self.wal.append(RecordType.ABORT, txn_id, force=True)
        return len(updates)

    # -- crash restart ------------------------------------------------------

    def restart(self) -> RestartReport:
        """Rebuild the (wiped) store from the log.

        The caller is expected to have invoked :meth:`KVStore.wipe` (or the
        failure injector did).  Replays in LSN order: redo updates of
        transactions whose outcome is COMMIT or LOCAL_COMMIT; undo the rest;
        classify undecided prepared transactions as in-doubt.
        """
        report = RestartReport()
        # Start from the latest checkpoint, if any: restore its snapshot
        # and replay only the suffix.  Site.checkpoint only takes
        # *quiescent* checkpoints (no transactions in flight), so the
        # snapshot is transaction-consistent and the suffix contains every
        # record of every transaction it mentions.
        checkpoint = self.wal.last_checkpoint()
        start_lsn = 0
        if checkpoint is not None:
            self.store.restore(checkpoint.payload["snapshot"])
            start_lsn = checkpoint.lsn

        suffix = [r for r in self.wal if r.lsn > start_lsn]
        outcomes: dict[str, RecordType] = {}
        for record in suffix:
            if record.record_type in (
                RecordType.COMMIT,
                RecordType.ABORT,
                RecordType.LOCAL_COMMIT,
                RecordType.PREPARE,
                RecordType.BEGIN,
            ):
                outcomes[record.txn_id] = self._stronger(
                    outcomes.get(record.txn_id), record.record_type
                )

        # Redo phase: replay after-images of winners in LSN order.
        winners = {
            t for t, o in outcomes.items()
            if o in (RecordType.COMMIT, RecordType.LOCAL_COMMIT)
        }
        for record in suffix:
            if (
                record.record_type is RecordType.UPDATE
                and record.txn_id in winners
            ):
                assert record.key is not None
                self.store.apply_image(record.key, record.after)

        for txn_id, outcome in outcomes.items():
            if outcome is RecordType.COMMIT:
                report.redone.append(txn_id)
            elif outcome is RecordType.LOCAL_COMMIT:
                report.redone.append(txn_id)
                report.locally_committed.append(txn_id)
            elif outcome is RecordType.PREPARE:
                report.in_doubt.append(txn_id)
            elif outcome is RecordType.BEGIN:
                # Losers: nothing was redone, and the wiped store already
                # reflects "never happened"; log the abort for completeness.
                self.wal.append(RecordType.ABORT, txn_id, force=True)
                report.undone.append(txn_id)
        return report

    @staticmethod
    def _stronger(current: RecordType | None, new: RecordType) -> RecordType:
        """Pick the more decisive of two per-transaction record types."""
        order = {
            RecordType.BEGIN: 0,
            RecordType.PREPARE: 1,
            RecordType.LOCAL_COMMIT: 2,
            RecordType.ABORT: 3,
            RecordType.COMMIT: 3,
        }
        if current is None or order[new] >= order[current]:
            return new
        return current
