"""Family 2: the commutativity matrix and stratification preconditions.

The stratification machinery (Section 5) guarantees no regular cycles when
S1 or S2 holds over every *active* pair of global transactions, and the
A1–A4 predicates those properties quantify over are about how a
compensation ``CT_i`` may interleave with another global transaction at
each shared site.  Two operations that **commute** on a data item can
never put an active pair in the dangerous configuration: either order of
the conflicting pair yields the same state, so exposure by an early lock
release is harmless.

The matrix is *declared* on the repertoire (``SemanticAction.commutes_with``,
closed symmetrically here) and *derived* for the generic operations: reads
commute with reads, blind writes commute with nothing.

Rules:

``commute/unknown-commute-ref``
    A declared ``commutes_with`` entry names an unregistered action — the
    matrix row is meaningless.

``commute/stratification-risk``
    Two workload transactions conflict **non-commutatively at two or more
    shared sites**.  That is the static shape of the paper's danger case:
    if either transaction aborts after locally committing, schedules exist
    where its compensation and the other transaction order differently at
    different sites, violating the A1–A4 preconditions of S1/S2 and
    admitting a regular cycle.  Run such workloads under a marking
    protocol (P1/P2), or restructure them onto commuting operations.
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis.findings import Finding, Severity
from repro.compensation.actions import ActionRegistry
from repro.txn.operations import Op, ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec

_A14 = "Section 5 (A1-A4 / S1-S2 preconditions)"


def build_matrix(registry: ActionRegistry) -> dict[str, set[str]]:
    """The symmetric closure of the declared commutes-with relation."""
    matrix: dict[str, set[str]] = {
        name: set() for name in registry.names()
    }
    for action in registry.actions():
        for partner in action.commutes_with:
            matrix[action.name].add(partner)
            if partner in matrix:
                matrix[partner].add(action.name)
    return matrix


def analyze_matrix(registry: ActionRegistry) -> list[Finding]:
    """Validate the declared relation itself."""
    findings: list[Finding] = []
    for action in registry.actions():
        for partner in sorted(action.commutes_with):
            if not registry.known(partner):
                findings.append(Finding(
                    rule="commute/unknown-commute-ref",
                    severity=Severity.ERROR,
                    location=f"registry:{action.name}",
                    message=(
                        f"commutes_with of {action.name!r} names "
                        f"unregistered action {partner!r}"
                    ),
                    anchor=_A14,
                ))
    return findings


def ops_commute(matrix: dict[str, set[str]], a: Op, b: Op) -> bool:
    """Do ``a`` and ``b`` commute on a shared data item?

    Reads commute with reads; a blind write commutes with nothing (not
    even another write — last-writer-wins is order-dependent); semantic
    operations commute exactly when the declared matrix says so.  Unknown
    action names are conservatively non-commuting.
    """
    if isinstance(a, ReadOp) and isinstance(b, ReadOp):
        return True
    if isinstance(a, ReadOp) or isinstance(b, ReadOp):
        return False
    if isinstance(a, WriteOp) or isinstance(b, WriteOp):
        return False
    assert isinstance(a, SemanticOp) and isinstance(b, SemanticOp)
    return b.name in matrix.get(a.name, set())


def _conflicting_pairs(
    matrix: dict[str, set[str]], left: SubtxnSpec, right: SubtxnSpec
) -> list[tuple[Op, Op]]:
    """Non-commuting op pairs on shared keys between two subtransactions."""
    pairs: list[tuple[Op, Op]] = []
    for op_l in left.ops:
        for op_r in right.ops:
            if op_l.key != op_r.key:
                continue
            if not ops_commute(matrix, op_l, op_r):
                pairs.append((op_l, op_r))
    return pairs


def analyze_workload_commutativity(
    registry: ActionRegistry,
    scenarios: dict[str, list[GlobalTxnSpec]],
) -> list[Finding]:
    """Warn on transaction pairs that can violate S1/S2 preconditions."""
    matrix = build_matrix(registry)
    findings: list[Finding] = []
    for name in sorted(scenarios):
        specs = scenarios[name]
        for spec_a, spec_b in combinations(specs, 2):
            subs_a = {sub.site_id: sub for sub in spec_a.subtxns}
            subs_b = {sub.site_id: sub for sub in spec_b.subtxns}
            shared = sorted(set(subs_a) & set(subs_b))
            risky: list[str] = []
            example = ""
            for site_id in shared:
                pairs = _conflicting_pairs(
                    matrix, subs_a[site_id], subs_b[site_id]
                )
                if pairs:
                    risky.append(site_id)
                    if not example:
                        op_a, op_b = pairs[0]
                        example = f"e.g. {op_a!r} vs {op_b!r} at {site_id}"
            if len(risky) >= 2:
                findings.append(Finding(
                    rule="commute/stratification-risk",
                    severity=Severity.WARNING,
                    location=(
                        f"workload:{name}/{spec_a.txn_id}+{spec_b.txn_id}"
                    ),
                    message=(
                        f"non-commuting conflicts at sites "
                        f"{','.join(risky)} ({example}); an abort after "
                        f"local commit admits schedules violating the "
                        f"S1/S2 stratification preconditions — use a "
                        f"marking protocol or commuting operations"
                    ),
                    anchor=_A14,
                ))
    return findings
