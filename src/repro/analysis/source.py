"""Shared AST plumbing for the source-level analyzers.

Parsing, deterministic file discovery, and a small import-aware name
resolver: ``resolve_call_name`` maps an attribute chain or bare name back
to the fully-qualified dotted name it refers to, honoring ``import x as
y`` and ``from x import y as z`` aliases collected from anywhere in the
module (function-local imports included).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.errors import AnalysisError


def parse_module(path: Path) -> ast.Module:
    """Parse one source file; :class:`AnalysisError` if it does not parse."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        return ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc


def iter_py_files(root: Path) -> list[Path]:
    """Every ``.py`` file under ``root``, in sorted (deterministic) order."""
    return sorted(root.rglob("*.py"))


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local alias → fully-qualified dotted name for every import.

    ``import time`` → ``{"time": "time"}``; ``import datetime as dt`` →
    ``{"dt": "datetime"}``; ``from datetime import datetime as d`` →
    ``{"d": "datetime.datetime"}``.  Imports are collected from the whole
    tree, so function-local imports resolve too.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib entropy
            for alias in node.names:
                table[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return table


def resolve_name(node: ast.expr, table: dict[str, str]) -> str | None:
    """Resolve an attribute chain / name to its imported dotted name.

    ``dt.now`` with ``import datetime as dt`` → ``datetime.datetime.now``
    is *not* produced (``dt`` maps to ``datetime``, so the result is
    ``datetime.now``) — callers match against every spelling they care
    about.  Returns None for anything that is not a name chain.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(table.get(node.id, node.id))
    return ".".join(reversed(parts))
