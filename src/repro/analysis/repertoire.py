"""Family 1: repertoire and compensation soundness.

Everything here is derivable from the :class:`ActionRegistry` declarations
and the declarative :class:`SemanticOp` workloads — no schedule is run and
no state is touched.  The rules and their paper anchors:

``repertoire/inconsistent-inverse``
    An action declares ``inverse_name`` without an ``inverse`` constructor
    (or vice versa) — the declarative and executable halves disagree.

``repertoire/unknown-inverse``
    A declared inverse names an action that is not registered: the
    compensating subtransaction ``CT_i`` could never be built (Section 3.2,
    the counter-task must be supplied in advance).

``repertoire/open-inverse-chain``
    Following declared inverses transitively escapes the registry.  The
    direct link is checked by ``unknown-inverse``; this rule catches a
    broken link further down the chain (the inverse's inverse, ...).

``repertoire/uncovered-write``
    Theorem 2's write-coverage precondition: atomicity of compensation
    requires ``CT_i`` to write a superset of ``T_i``'s writes at the site.
    The compensation key-set is derived declaratively — semantic inverses
    target the key of their forward operation, generic writes compensate by
    before-image — and any forward write key it misses is flagged.

``repertoire/real-action-unlocked``
    A subtransaction contains a real (``inverse=None``) action but is not
    declared ``real_action`` (lock-holding).  Section 2: non-compensatable
    subtransactions must hold their locks until the decision, as in
    distributed 2PL; executing one optimistically could never be undone.

``repertoire/unknown-action``
    A workload operation names an action outside the repertoire.

``repertoire/inverse-constructor-error``
    The inverse constructor crashes on the operation's declared parameters
    — compensation would fail at the worst possible time (after the global
    ABORT, when persistence of compensation demands it complete).

``repertoire/inverse-name-mismatch``
    The constructor, probed with the workload's declared parameters,
    produces a different action than the declared ``inverse_name``.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.findings import Finding, Severity
from repro.compensation.actions import ActionRegistry, SemanticAction
from repro.txn.operations import ReadOp, SemanticOp, WriteOp
from repro.txn.transaction import GlobalTxnSpec

#: Theorem 2 anchor string used by the coverage rules
_T2 = "Theorem 2 (atomicity of compensation)"
_S2 = "Section 2 (real actions hold locks)"
_S32 = "Section 3.2 (predeclared counter-task)"


def analyze_registry(registry: ActionRegistry) -> list[Finding]:
    """Inverse-closure checks over the registry declarations alone."""
    findings: list[Finding] = []
    for action in registry.actions():
        location = f"registry:{action.name}"
        has_fn = action.inverse is not None
        has_name = action.inverse_name is not None
        if has_fn != has_name:
            findings.append(Finding(
                rule="repertoire/inconsistent-inverse",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"action {action.name!r} declares "
                    f"inverse_name={action.inverse_name!r} but "
                    f"{'has' if has_fn else 'lacks'} an inverse constructor"
                ),
                anchor=_S32,
            ))
            continue
        if action.inverse_name is None:
            continue
        if not registry.known(action.inverse_name):
            findings.append(Finding(
                rule="repertoire/unknown-inverse",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"inverse of {action.name!r} is "
                    f"{action.inverse_name!r}, which is not registered"
                ),
                anchor=_S32,
            ))
            continue
        findings.extend(_walk_chain(registry, action))
    return findings


def _walk_chain(
    registry: ActionRegistry, action: SemanticAction
) -> list[Finding]:
    """Follow declared inverses from ``action``; flag a transitive escape."""
    seen = {action.name}
    current = action.inverse_name
    chain = [action.name]
    while current is not None:
        chain.append(current)
        if not registry.known(current):
            return [Finding(
                rule="repertoire/open-inverse-chain",
                severity=Severity.ERROR,
                location=f"registry:{action.name}",
                message=(
                    f"inverse chain {' -> '.join(chain)} leaves the "
                    f"registry at {current!r}"
                ),
                anchor=_S32,
            )]
        if current in seen:
            return []  # closed cycle (deposit <-> withdraw): sound
        seen.add(current)
        current = registry.get(current).inverse_name
    return []  # chain ends at a real action: nothing further to build


def _probe_inverse(
    action: SemanticAction, op: SemanticOp
) -> tuple[str, dict[str, Any]] | Exception:
    """Run the inverse *constructor* (never ``apply``) on declared params.

    The before-value is unknowable statically; constructors may embed it in
    the compensating call's params but must not compute on it, so probing
    with a neutral ``0`` and then ``None`` covers well-behaved inverses.
    """
    assert action.inverse is not None
    last: Exception
    for before in (0, None):
        try:
            return action.inverse(dict(op.params), before)
        except Exception as exc:  # noqa: BLE001 - any crash is the finding
            last = exc
    return last


def analyze_workloads(
    registry: ActionRegistry,
    scenarios: dict[str, list[GlobalTxnSpec]],
) -> list[Finding]:
    """Per-transaction checks over declarative workloads."""
    findings: list[Finding] = []
    for name in sorted(scenarios):
        for spec in scenarios[name]:
            for sub in spec.subtxns:
                location = f"workload:{name}/{spec.txn_id}@{sub.site_id}"
                findings.extend(
                    _analyze_subtxn(registry, location, sub.ops,
                                    lock_holding=sub.real_action)
                )
    return findings


def _analyze_subtxn(
    registry: ActionRegistry,
    location: str,
    ops: list[Any],
    *,
    lock_holding: bool,
) -> list[Finding]:
    findings: list[Finding] = []
    forward_writes: set[str] = set()
    compensation_keys: set[str] = set()
    for op in ops:
        if isinstance(op, ReadOp):
            continue
        if isinstance(op, WriteOp):
            # generic model: compensated by installing the before-image
            forward_writes.add(op.key)
            compensation_keys.add(op.key)
            continue
        assert isinstance(op, SemanticOp)
        forward_writes.add(op.key)
        if not registry.known(op.name):
            findings.append(Finding(
                rule="repertoire/unknown-action",
                severity=Severity.ERROR,
                location=location,
                message=f"operation {op!r} names an unregistered action",
                anchor=_S32,
            ))
            continue
        action = registry.get(op.name)
        if action.inverse is None:
            if not lock_holding:
                findings.append(Finding(
                    rule="repertoire/real-action-unlocked",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"{op!r} is a real action but the subtransaction "
                        f"is not declared real_action (lock-holding)"
                    ),
                    anchor=_S2,
                ))
            continue
        if lock_holding:
            # locks held until the decision: rollback, not compensation
            compensation_keys.add(op.key)
            continue
        probed = _probe_inverse(action, op)
        if isinstance(probed, Exception):
            findings.append(Finding(
                rule="repertoire/inverse-constructor-error",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"inverse constructor of {op!r} failed on its declared "
                    f"params: {probed!r}"
                ),
                anchor=_T2,
            ))
            continue
        inv_name, _inv_params = probed
        if action.inverse_name is not None and inv_name != action.inverse_name:
            findings.append(Finding(
                rule="repertoire/inverse-name-mismatch",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"{op!r}: constructor produced {inv_name!r} but the "
                    f"action declares inverse_name={action.inverse_name!r}"
                ),
                anchor=_S32,
            ))
        if not registry.known(inv_name):
            findings.append(Finding(
                rule="repertoire/unknown-inverse",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"{op!r}: constructed inverse {inv_name!r} is not "
                    f"registered"
                ),
                anchor=_S32,
            ))
            continue
        # ActionRegistry.invert pins the compensating op to the forward key,
        # so a sound semantic inverse covers exactly its forward write.
        compensation_keys.add(op.key)
    if not lock_holding:
        uncovered = forward_writes - compensation_keys
        if uncovered:
            findings.append(Finding(
                rule="repertoire/uncovered-write",
                severity=Severity.ERROR,
                location=location,
                message=(
                    f"compensation write-set misses forward write keys "
                    f"{sorted(uncovered)}; CT must write a superset of the "
                    f"forward writes"
                ),
                anchor=_T2,
            ))
    return findings
