"""Family 5: protocol-flow verification (force-before-send + message flow).

The paper's recovery argument rests on an ordering discipline the code
previously enforced only by convention: a force-log point must
happen-before the message that *reveals* its outcome.  A participant
forces PREPARE (or LOCAL_COMMIT under O2PC) before voting YES, the
coordinator appends to its decision log before any non-presumed DECISION
leaves, and a Paxos acceptor persists its promise/accept state before the
PAXOS_ACCEPTED reply.  Swap a force past a send and every test still
passes — the bug only exists in the crash window between them.

This module checks the discipline statically, per engine, plus the
message-flow graph the engines induce:

``flow/unforced-send``
    An AST dataflow pass over each registered engine class.  Per handler
    it tracks, along every path, whether a *covering force point* has
    definitely executed, splicing same-class helper calls (with literal
    argument mapping, so ``self._send_ballot_zero(txn, "NO", ...)`` is
    recognized as the exempt NO vote) and flags any outcome-revealing
    send reachable with the force not yet guaranteed.  Presumed-abort
    sends (``DECISION`` carrying a literal ``"ABORT"``) and NO votes are
    exempt by the protocol's own argument.  Loops and ``try`` blocks are
    handled conservatively (coverage gained inside is not trusted
    afterwards); branch merges require the force on *all* live arms.
    Suppress a deliberate exception with ``# lint: allow-unforced-send``.

``flow/rt-durability-gate``
    The networked runtime moves durability to the transport: under group
    commit the WAL buffers forced appends and every outbound frame must
    pass ``durability_gate`` (the group-commit barrier) before it reaches
    the socket.  The rule requires ``TcpTransport._flush_outbound`` to
    await the gate before any ``writer.write`` and ``SiteDaemon`` to
    install the gate (``self.transport.durability_gate = ...``).

``flow/force-point-drift``
    ``LocalTransactionManager._FORCE_POINTS`` declares which methods are
    force points.  The rule checks the declaration against the method
    bodies in both directions: a declared method must contain a
    ``wal.append(..., force=True)`` and every method containing one must
    be declared — so a refactor that silently drops a force shows up.

``msgflow/orphan-send`` / ``msgflow/dead-handler``
    Per scheme, the role→MsgType→role flow graph built from send-site
    extraction and the ``_HANDLERS``/``_COLLECTS`` declarations must be
    closed: every sent type has a receiving role, every handled type has
    a sender.  This generalizes the dispatch family's set-equality check
    to actual flow — a handler deleted from *one* engine is caught even
    while the union over all engines still covers the type.

``msgflow/runtime-unroutable`` / ``msgflow/runtime-dead-inbound``
    Every flow edge must be routable over TCP: edges into participant or
    acceptor roles must appear in ``SiteDaemon._INBOUND``, edges into the
    coordinator in ``NetClient._INBOUND``.  Inbound entries no scheme's
    flow ever produces are flagged as warnings (dead wire surface).

``msgflow/unmapped-scheme``
    A :class:`~repro.commit.base.CommitScheme` member this analyzer has
    no role map for — adding a fifth engine requires declaring its flow.

The per-scheme graphs are exported as Graphviz DOT via ``repro lint
--flow-dot`` (see :func:`render_flow_dot`) for the docs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.dispatch import _class_body, _declaration
from repro.analysis.findings import Finding, Severity
from repro.analysis.source import parse_module
from repro.errors import AnalysisError

_ANCHOR = "Section 4 (force the log record before revealing the outcome)"

PRAGMA = "lint: allow-unforced-send"

#: splice depth bound for helper/super resolution (cycle-guarded anyway)
_MAX_DEPTH = 8


# -- AST utilities ---------------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    """``self.site.ltm.prepare`` as a dotted string, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _msgtype_name(node: ast.expr | None) -> str | None:
    """The ``X`` of a literal ``MsgType.X`` reference."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MsgType"
    ):
        return node.attr
    return None


def _tag_value(
    node: ast.expr | None, bindings: dict[str, str | None]
) -> str | None:
    """A payload value as a literal string, through parameter bindings.

    Returns the literal when statically known, None when dynamic — the
    caller must treat None conservatively (obligated).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    return None


def _payload_tags(
    node: ast.expr | None, bindings: dict[str, str | None]
) -> dict[str, str | None]:
    """String-keyed payload entries resolved to literals where possible."""
    tags: dict[str, str | None] = {}
    if isinstance(node, ast.Dict):
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                tags[key.value] = _tag_value(value, bindings)
    return tags


def _extract_send(
    call: ast.Call, bindings: dict[str, str | None]
) -> tuple[str, dict[str, str | None]] | None:
    """(msg type name, payload tags) when ``call`` is a protocol send.

    Recognized shapes — the only two the engines use:

    * ``<anything>.send(Message(msg_type=MsgType.X, ..., payload={...}))``
    * ``<anything>._reply(msg, MsgType.X, {...})``

    A send whose message type is not a literal ``MsgType.X`` (e.g. the
    generic forward inside ``_reply`` itself) is not an event; the call
    *sites* carry the literal and are extracted instead.
    """
    func = call.func
    name = _dotted(func)
    if name is not None and (name == "send" or name.endswith(".send")):
        if (
            call.args
            and isinstance(call.args[0], ast.Call)
            and isinstance(call.args[0].func, ast.Name)
            and call.args[0].func.id == "Message"
        ):
            message = call.args[0]
            msg_type: ast.expr | None = None
            payload: ast.expr | None = None
            for kw in message.keywords:
                if kw.arg == "msg_type":
                    msg_type = kw.value
                elif kw.arg == "payload":
                    payload = kw.value
            member = _msgtype_name(msg_type)
            if member is not None:
                return member, _payload_tags(payload, bindings)
        return None
    if name is not None and (name == "_reply" or name.endswith("._reply")):
        if len(call.args) >= 2:
            member = _msgtype_name(call.args[1])
            if member is not None:
                payload = call.args[2] if len(call.args) >= 3 else None
                return member, _payload_tags(payload, bindings)
    return None


# -- class / module models -------------------------------------------------------


FnDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class _ClassModel:
    """One engine class: its methods and the module around it."""

    name: str
    path: Path
    rel: str
    methods: dict[str, FnDef]
    module_functions: dict[str, FnDef]
    lines: list[str]

    def suppressed(self, lineno: int) -> bool:
        return 0 < lineno <= len(self.lines) and PRAGMA in self.lines[lineno - 1]


def _load_class(root: Path, rel: str, class_name: str) -> _ClassModel:
    path = root / rel
    tree = parse_module(path)
    cls = _class_body(tree, class_name, path)
    methods = {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    module_functions = {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return _ClassModel(
        name=class_name,
        path=path,
        rel=rel,
        methods=methods,
        module_functions=module_functions,
        lines=path.read_text(encoding="utf-8").splitlines(),
    )


# -- rule 1: force-before-send ---------------------------------------------------


@dataclass(frozen=True)
class Obligation:
    """One force-before-send contract on one engine class."""

    #: what the contract protects, for the finding message
    what: str
    class_name: str
    rel: str  # path relative to the scanned root
    msg_type: str
    #: payload key carrying the outcome (None: every send is obligated)
    tag_key: str | None
    #: literal tag values exempt from the rule (presumed outcomes)
    exempt: frozenset[str]
    #: dotted suffixes; executing any one of them satisfies the contract
    covering: tuple[str, ...]


#: the discipline, straight from the paper's recovery argument (and Gray &
#: Lamport's for the Paxos rows)
OBLIGATIONS: tuple[Obligation, ...] = (
    Obligation(
        what="a YES vote reveals the prepare/local-commit force point",
        class_name="Participant",
        rel="commit/participant.py",
        msg_type="VOTE",
        tag_key="vote",
        exempt=frozenset({"NO"}),
        covering=("ltm.prepare", "ltm.local_commit"),
    ),
    Obligation(
        what="a Short-Commit YES vote reveals the prepare force point",
        class_name="ShortParticipant",
        rel="protocols/short.py",
        msg_type="VOTE",
        tag_key="vote",
        exempt=frozenset({"NO"}),
        covering=("ltm.prepare",),
    ),
    Obligation(
        what="a ballot-0 YES accept reveals the prepare force point",
        class_name="PaxosParticipant",
        rel="protocols/paxos.py",
        msg_type="PAXOS_ACCEPT",
        tag_key="value",
        exempt=frozenset({"NO"}),
        covering=("ltm.prepare",),
    ),
    Obligation(
        what="a DECISION reveals the decision-log force point",
        class_name="Coordinator",
        rel="commit/coordinator.py",
        msg_type="DECISION",
        tag_key="decision",
        # presumed abort: an ABORT decision needs no log record — a
        # coordinator that forgot the transaction answers ABORT anyway
        exempt=frozenset({"ABORT"}),
        covering=("decision_log.append",),
    ),
    Obligation(
        what="PAXOS_ACCEPTED reveals the acceptor's durable accept",
        class_name="Acceptor",
        rel="protocols/acceptor.py",
        msg_type="PAXOS_ACCEPTED",
        tag_key=None,
        exempt=frozenset(),
        covering=("_persist",),
    ),
)


@dataclass
class _SendEvent:
    msg_type: str
    tags: dict[str, str | None]
    covered: bool
    lineno: int
    chain: str


class _ForceFlow:
    """The per-class dataflow pass behind ``flow/unforced-send``.

    State is a single boolean — "some member of the covering set has
    definitely executed on every path to here" — threaded through the
    statement list.  If-merges AND the arms still live; loop and try
    bodies are analyzed for their send events but any coverage they gain
    is discarded (they may run zero times / raise early).
    """

    def __init__(self, model: _ClassModel, covering: tuple[str, ...]) -> None:
        self.model = model
        self.covering = covering
        self.sends: list[_SendEvent] = []

    # entry point -----------------------------------------------------------

    def run(self, method_name: str) -> None:
        fn = self.model.methods[method_name]
        self._block(fn.body, False, {}, (method_name,))

    def roots(self) -> list[str]:
        """Methods never invoked as ``self.X(...)`` by a class peer."""
        called: set[str] = set()
        for fn in self.model.methods.values():
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    helper = self._helper_name(node)
                    if helper is not None:
                        called.add(helper)
        return sorted(set(self.model.methods) - called)

    # statement dispatch ----------------------------------------------------

    def _block(
        self,
        stmts: list[ast.stmt],
        covered: bool,
        bindings: dict[str, str | None],
        stack: tuple[str, ...],
    ) -> tuple[bool, bool]:
        terminated = False
        for stmt in stmts:
            if terminated:
                break
            covered, terminated = self._stmt(stmt, covered, bindings, stack)
        return covered, terminated

    def _stmt(
        self,
        stmt: ast.stmt,
        covered: bool,
        bindings: dict[str, str | None],
        stack: tuple[str, ...],
    ) -> tuple[bool, bool]:
        if isinstance(stmt, ast.If):
            covered = self._scan(stmt.test, covered, bindings, stack)
            c1, t1 = self._block(stmt.body, covered, bindings, stack)
            c2, t2 = self._block(stmt.orelse, covered, bindings, stack)
            if t1 and t2:
                return covered, True
            if t1:
                return c2, False
            if t2:
                return c1, False
            return c1 and c2, False
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            covered = self._scan(head, covered, bindings, stack)
            # conservative: the body may run zero times, so its events are
            # checked at entry coverage and its gains are discarded
            self._block(stmt.body, covered, bindings, stack)
            self._block(stmt.orelse, covered, bindings, stack)
            return covered, False
        if isinstance(stmt, ast.Try):
            # conservative: the body may raise between any two statements
            self._block(stmt.body, covered, bindings, stack)
            for handler in stmt.handlers:
                self._block(handler.body, covered, bindings, stack)
            self._block(stmt.orelse, covered, bindings, stack)
            _c, t = self._block(stmt.finalbody, covered, bindings, stack)
            return covered, t
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                covered = self._scan(
                    item.context_expr, covered, bindings, stack
                )
            return self._block(stmt.body, covered, bindings, stack)
        if isinstance(stmt, ast.Return):
            covered = self._scan(stmt.value, covered, bindings, stack)
            return covered, True
        if isinstance(stmt, ast.Raise):
            covered = self._scan(stmt.exc, covered, bindings, stack)
            return covered, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return covered, True
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return covered, False
        return self._scan(stmt, covered, bindings, stack), False

    # expression-level events -----------------------------------------------

    def _scan(
        self,
        node: ast.AST | None,
        covered: bool,
        bindings: dict[str, str | None],
        stack: tuple[str, ...],
    ) -> bool:
        if node is None:
            return covered
        for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
            send = _extract_send(call, bindings)
            if send is not None:
                msg_type, tags = send
                self.sends.append(_SendEvent(
                    msg_type=msg_type,
                    tags=tags,
                    covered=covered,
                    lineno=call.lineno,
                    chain=" -> ".join(stack),
                ))
                continue
            if self._is_force(call):
                covered = True
                continue
            helper = self._helper_name(call)
            if (
                helper is not None
                and helper not in stack
                and len(stack) < _MAX_DEPTH
            ):
                fn = self.model.methods[helper]
                child = self._bind(fn, call, bindings)
                gained, _t = self._block(
                    fn.body, covered, child, stack + (helper,)
                )
                covered = covered or gained
        return covered

    def _is_force(self, call: ast.Call) -> bool:
        name = _dotted(call.func)
        if name is None:
            return False
        return any(
            name == member or name.endswith("." + member)
            for member in self.covering
        )

    def _helper_name(self, call: ast.Call) -> str | None:
        name = _dotted(call.func)
        if (
            name is not None
            and name.startswith("self.")
            and name.count(".") == 1
            and name[5:] in self.model.methods
        ):
            return name[5:]
        return None

    def _bind(
        self,
        fn: FnDef,
        call: ast.Call,
        caller_bindings: dict[str, str | None],
    ) -> dict[str, str | None]:
        """Map the helper's parameters to literal argument values."""
        params = [a.arg for a in fn.args.args[1:]]  # skip self
        bindings: dict[str, str | None] = {}
        for param, arg in zip(params, call.args):
            bindings[param] = _tag_value(arg, caller_bindings)
        for kw in call.keywords:
            if kw.arg is not None:
                bindings[kw.arg] = _tag_value(kw.value, caller_bindings)
        return bindings


def analyze_force_before_send(root: Path) -> list[Finding]:
    """Run every :data:`OBLIGATIONS` row; one finding per unforced path."""
    findings: list[Finding] = []
    for ob in OBLIGATIONS:
        model = _load_class(root, ob.rel, ob.class_name)
        flow = _ForceFlow(model, ob.covering)
        for method in flow.roots():
            flow.run(method)
        for send in flow.sends:
            if send.msg_type != ob.msg_type:
                continue
            if ob.tag_key is not None:
                tag = send.tags.get(ob.tag_key)
                if tag is not None and tag in ob.exempt:
                    continue
            if send.covered:
                continue
            if model.suppressed(send.lineno):
                continue
            findings.append(Finding(
                rule="flow/unforced-send",
                severity=Severity.ERROR,
                location=f"{ob.rel}:{send.lineno}",
                message=(
                    f"{ob.class_name}.{send.chain} sends "
                    f"MsgType.{ob.msg_type} on a path where no covering "
                    f"force point ({', '.join(ob.covering)}) is guaranteed "
                    f"to have executed — {ob.what}"
                ),
                anchor=_ANCHOR,
            ))
    return findings


# -- rule 2: the rt durability gate ----------------------------------------------


def analyze_rt_gate(root: Path) -> list[Finding]:
    """Sends in the networked runtime route through ``durability_gate``."""
    findings: list[Finding] = []
    transport = _load_class(root, "rt/transport.py", "TcpTransport")
    flush = transport.methods.get("_flush_outbound")
    if flush is None:
        raise AnalysisError(
            f"TcpTransport._flush_outbound not found in {transport.path}"
        )
    gate_lineno: int | None = None
    write_linenos: list[int] = []
    for node in ast.walk(flush):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            if _dotted(node.value.func) == "self.durability_gate":
                if gate_lineno is None or node.lineno < gate_lineno:
                    gate_lineno = node.lineno
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None and name.endswith(".write"):
                write_linenos.append(node.lineno)
    if gate_lineno is None:
        findings.append(Finding(
            rule="flow/rt-durability-gate",
            severity=Severity.ERROR,
            location=f"rt/transport.py:{flush.lineno}",
            message=(
                "TcpTransport._flush_outbound never awaits "
                "self.durability_gate() — under group commit a frame could "
                "reveal a force point still sitting in the WAL buffer"
            ),
            anchor=_ANCHOR,
        ))
    else:
        for lineno in write_linenos:
            if lineno < gate_lineno:
                findings.append(Finding(
                    rule="flow/rt-durability-gate",
                    severity=Severity.ERROR,
                    location=f"rt/transport.py:{lineno}",
                    message=(
                        f"frame written to the socket at line {lineno}, "
                        f"before the durability gate awaited at line "
                        f"{gate_lineno}"
                    ),
                    anchor=_ANCHOR,
                ))
    daemon = _load_class(root, "rt/daemon.py", "SiteDaemon")
    installed = False
    for fn in daemon.methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _dotted(target) == "self.transport.durability_gate":
                        installed = True
    if not installed:
        findings.append(Finding(
            rule="flow/rt-durability-gate",
            severity=Severity.ERROR,
            location="rt/daemon.py:1",
            message=(
                "SiteDaemon never installs the group-commit barrier as "
                "self.transport.durability_gate — buffered force points "
                "would never gate outbound frames"
            ),
            anchor=_ANCHOR,
        ))
    return findings


# -- rule 3: force-point drift ---------------------------------------------------


def analyze_force_points(root: Path) -> list[Finding]:
    """``_FORCE_POINTS`` ⟺ methods containing ``wal.append(force=True)``."""
    rel = "txn/local_manager.py"
    path = root / rel
    tree = parse_module(path)
    cls = _class_body(tree, "LocalTransactionManager", path)

    declared: dict[str, int] = {}
    decl_lineno: int | None = None
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_FORCE_POINTS"
            for t in stmt.targets
        ):
            if not isinstance(stmt.value, (ast.Tuple, ast.List)):
                raise AnalysisError(
                    f"_FORCE_POINTS in {path} is not a literal tuple"
                )
            decl_lineno = stmt.lineno
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    declared[elt.value] = elt.lineno
    if decl_lineno is None:
        raise AnalysisError(
            f"LocalTransactionManager._FORCE_POINTS not found in {path}"
        )

    forcing: dict[str, int] = {}
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None or not name.endswith("wal.append"):
                    continue
                for kw in node.keywords:
                    if (
                        kw.arg == "force"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        forcing.setdefault(stmt.name, stmt.lineno)

    findings: list[Finding] = []
    for method, lineno in sorted(declared.items()):
        if method not in forcing:
            findings.append(Finding(
                rule="flow/force-point-drift",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=(
                    f"_FORCE_POINTS declares {method!r} but the method "
                    f"contains no wal.append(..., force=True) — the "
                    f"declared durability contract is no longer met"
                ),
                anchor=_ANCHOR,
            ))
    for method, lineno in sorted(forcing.items()):
        if method not in declared:
            findings.append(Finding(
                rule="flow/force-point-drift",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=(
                    f"{method!r} contains a wal.append(..., force=True) "
                    f"but is not declared in _FORCE_POINTS — declare it "
                    f"(and audit its callers' send ordering)"
                ),
                anchor=_ANCHOR,
            ))
    return findings


def analyze_flow(root: Path) -> list[Finding]:
    """The force-before-send family: all three rules."""
    findings = analyze_force_before_send(root)
    findings.extend(analyze_rt_gate(root))
    findings.extend(analyze_force_points(root))
    return findings


# -- the message-flow graph ------------------------------------------------------


#: role → (path, class) chains, subclass first, per scheme.  Adding a
#: scheme to :class:`CommitScheme` requires a row here (enforced by
#: ``msgflow/unmapped-scheme``).
_BASE_COORD = ("commit/coordinator.py", "Coordinator")
_BASE_PART = ("commit/participant.py", "Participant")

SCHEME_ROLES: dict[str, dict[str, tuple[tuple[str, str], ...]]] = {
    "TWO_PL": {
        "coordinator": (_BASE_COORD,),
        "participant": (_BASE_PART,),
    },
    "O2PC": {
        "coordinator": (_BASE_COORD,),
        "participant": (_BASE_PART,),
    },
    "PAXOS": {
        "coordinator": (
            ("protocols/paxos.py", "PaxosCommitCoordinator"),
            _BASE_COORD,
        ),
        "participant": (
            ("protocols/paxos.py", "PaxosParticipant"),
            _BASE_PART,
        ),
        "acceptor": (("protocols/acceptor.py", "Acceptor"),),
    },
    "SHORT": {
        "coordinator": (_BASE_COORD,),
        "participant": (
            ("protocols/short.py", "ShortParticipant"),
            _BASE_PART,
        ),
    },
}


@dataclass
class RoleFlow:
    """One role's receive surface and send sites within a scheme."""

    role: str
    #: MsgType member → declaration lineno (from _HANDLERS/_COLLECTS)
    receives: dict[str, int] = field(default_factory=dict)
    #: where the declaration lives, for finding locations
    receives_rel: str = ""
    #: MsgType member → sorted list of "rel:lineno" send sites
    sends: dict[str, list[str]] = field(default_factory=dict)


def _try_declaration(
    path: Path, class_name: str, attr: str
) -> list[tuple[str, int]] | None:
    try:
        return _declaration(path, class_name, attr)
    except AnalysisError:
        return None


def _collect_sends(
    chain: list[_ClassModel], sink: dict[str, list[str]]
) -> None:
    """Union of send sites over the chain's *effective* methods.

    Effective = subclass-first method resolution; a ``super().m()`` call
    splices the next definition of ``m`` up the chain (Short-Commit
    delegates SUBTXN_REQ/DECISION handling to the base participant), and
    a bare call to a module-level function of the defining class's module
    splices that function (the Paxos termination protocol lives in one).
    """
    effective: dict[str, tuple[int, FnDef]] = {}
    for idx, model in enumerate(chain):
        for name, fn in model.methods.items():
            effective.setdefault(name, (idx, fn))

    def emit(model: _ClassModel, node: ast.AST) -> None:
        for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
            send = _extract_send(call, {})
            if send is not None:
                sink.setdefault(send[0], []).append(
                    f"{model.rel}:{call.lineno}"
                )

    def visit(idx: int, fn: FnDef, seen: frozenset[tuple[int, str]]) -> None:
        model = chain[idx]
        emit(model, fn)
        for call in (n for n in ast.walk(fn) if isinstance(n, ast.Call)):
            func = call.func
            # super().m(...): resolve up the chain past the defining class
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                for nxt in range(idx + 1, len(chain)):
                    target = chain[nxt].methods.get(func.attr)
                    if target is not None:
                        key = (nxt, func.attr)
                        if key not in seen and len(seen) < _MAX_DEPTH:
                            visit(nxt, target, seen | {key})
                        break
            # bare module-function call in the defining class's module
            elif isinstance(func, ast.Name):
                target = model.module_functions.get(func.id)
                if target is not None:
                    key = (idx, f"module:{func.id}")
                    if key not in seen and len(seen) < _MAX_DEPTH:
                        # module functions send directly; no further
                        # super resolution applies inside them
                        emit(model, target)

    for name, (idx, fn) in sorted(effective.items()):
        visit(idx, fn, frozenset({(idx, name)}))


def build_flow_graphs(root: Path) -> dict[str, list[RoleFlow]]:
    """Per scheme, each role's receive surface and send sites."""
    graphs: dict[str, list[RoleFlow]] = {}
    models: dict[tuple[str, str], _ClassModel] = {}

    def load(rel: str, class_name: str) -> _ClassModel:
        key = (rel, class_name)
        if key not in models:
            models[key] = _load_class(root, rel, class_name)
        return models[key]

    for scheme, roles in sorted(SCHEME_ROLES.items()):
        flows: list[RoleFlow] = []
        for role, chain_spec in sorted(roles.items()):
            chain = [load(rel, cls) for rel, cls in chain_spec]
            flow = RoleFlow(role=role)
            for model in chain:
                for attr in ("_HANDLERS", "_COLLECTS"):
                    decl = _try_declaration(model.path, model.name, attr)
                    if decl is not None:
                        flow.receives = dict(decl)
                        flow.receives_rel = model.rel
                        break
                if flow.receives:
                    break
            if not flow.receives:
                raise AnalysisError(
                    f"no _HANDLERS/_COLLECTS declaration found for role "
                    f"{role!r} of scheme {scheme} (chain "
                    f"{[c.name for c in chain]})"
                )
            _collect_sends(chain, flow.sends)
            for sites in flow.sends.values():
                sites.sort()
            flows.append(flow)
        graphs[scheme] = flows
    return graphs


def flow_edges(flows: list[RoleFlow]) -> list[tuple[str, str, str]]:
    """Deterministic (sender role, MsgType, receiver role) edge list."""
    edges: set[tuple[str, str, str]] = set()
    for sender in flows:
        for msg_type in sender.sends:
            for receiver in flows:
                if msg_type in receiver.receives:
                    edges.add((sender.role, msg_type, receiver.role))
    return sorted(edges)


def analyze_message_flow(root: Path) -> list[Finding]:
    """Orphan sends, dead handlers, and runtime routability per scheme."""
    graphs = build_flow_graphs(root)
    daemon_inbound = {
        name for name, _ in
        _declaration(root / "rt" / "daemon.py", "SiteDaemon", "_INBOUND")
    }
    client_inbound = {
        name for name, _ in
        _declaration(root / "rt" / "client.py", "NetClient", "_INBOUND")
    }

    findings: list[Finding] = []
    delivered_daemon: set[str] = set()
    delivered_client: set[str] = set()
    for scheme, flows in sorted(graphs.items()):
        receivable: dict[str, list[str]] = {}
        sent: dict[str, list[str]] = {}
        for flow in flows:
            for msg_type in flow.receives:
                receivable.setdefault(msg_type, []).append(flow.role)
            for msg_type in flow.sends:
                sent.setdefault(msg_type, []).append(flow.role)

        for flow in flows:
            for msg_type, sites in sorted(flow.sends.items()):
                if msg_type not in receivable:
                    findings.append(Finding(
                        rule="msgflow/orphan-send",
                        severity=Severity.ERROR,
                        location=sites[0],
                        message=(
                            f"scheme {scheme}: role {flow.role!r} sends "
                            f"MsgType.{msg_type} but no role of the scheme "
                            f"has a handler for it — the message is "
                            f"silently dropped"
                        ),
                        anchor=_ANCHOR,
                    ))
            for msg_type, lineno in sorted(flow.receives.items()):
                if msg_type not in sent:
                    findings.append(Finding(
                        rule="msgflow/dead-handler",
                        severity=Severity.ERROR,
                        location=f"{flow.receives_rel}:{lineno}",
                        message=(
                            f"scheme {scheme}: role {flow.role!r} declares "
                            f"a handler for MsgType.{msg_type} but no role "
                            f"of the scheme ever sends it"
                        ),
                        anchor=_ANCHOR,
                    ))

        for sender_role, msg_type, receiver_role in flow_edges(flows):
            if receiver_role in ("participant", "acceptor"):
                delivered_daemon.add(msg_type)
                if msg_type not in daemon_inbound:
                    findings.append(Finding(
                        rule="msgflow/runtime-unroutable",
                        severity=Severity.ERROR,
                        location="rt/daemon.py:1",
                        message=(
                            f"scheme {scheme}: flow edge {sender_role} "
                            f"-[{msg_type}]-> {receiver_role} is not "
                            f"routable over TCP — SiteDaemon._INBOUND "
                            f"does not list MsgType.{msg_type}"
                        ),
                        anchor=_ANCHOR,
                    ))
            if receiver_role == "coordinator":
                delivered_client.add(msg_type)
                if msg_type not in client_inbound:
                    findings.append(Finding(
                        rule="msgflow/runtime-unroutable",
                        severity=Severity.ERROR,
                        location="rt/client.py:1",
                        message=(
                            f"scheme {scheme}: flow edge {sender_role} "
                            f"-[{msg_type}]-> {receiver_role} is not "
                            f"routable over TCP — NetClient._INBOUND "
                            f"does not list MsgType.{msg_type}"
                        ),
                        anchor=_ANCHOR,
                    ))

    for msg_type in sorted(daemon_inbound - delivered_daemon):
        findings.append(Finding(
            rule="msgflow/runtime-dead-inbound",
            severity=Severity.WARNING,
            location="rt/daemon.py:1",
            message=(
                f"SiteDaemon._INBOUND lists MsgType.{msg_type} but no "
                f"scheme's flow graph ever delivers it to a daemon-hosted "
                f"role — dead wire surface"
            ),
            anchor=_ANCHOR,
        ))
    for msg_type in sorted(client_inbound - delivered_client):
        findings.append(Finding(
            rule="msgflow/runtime-dead-inbound",
            severity=Severity.WARNING,
            location="rt/client.py:1",
            message=(
                f"NetClient._INBOUND lists MsgType.{msg_type} but no "
                f"scheme's flow graph ever delivers it to the coordinator "
                f"role — dead wire surface"
            ),
            anchor=_ANCHOR,
        ))

    from repro.commit.base import CommitScheme

    for scheme_member in CommitScheme:
        if scheme_member.name not in SCHEME_ROLES:
            findings.append(Finding(
                rule="msgflow/unmapped-scheme",
                severity=Severity.ERROR,
                location=f"base.py:CommitScheme.{scheme_member.name}",
                message=(
                    f"CommitScheme.{scheme_member.name} has no role map in "
                    f"repro.analysis.flow.SCHEME_ROLES — declare the new "
                    f"engine's message flow so it is verified"
                ),
                anchor=_ANCHOR,
            ))
    return findings


def render_flow_dot(root: Path) -> dict[str, str]:
    """One deterministic Graphviz digraph per scheme (for the docs/CI)."""
    graphs = build_flow_graphs(root)
    rendered: dict[str, str] = {}
    for scheme, flows in sorted(graphs.items()):
        lines = [
            f"digraph flow_{scheme} {{",
            "  rankdir=LR;",
            '  node [shape=box, fontname="Helvetica"];',
        ]
        for flow in flows:
            lines.append(f'  "{flow.role}";')
        for sender, msg_type, receiver in flow_edges(flows):
            lines.append(
                f'  "{sender}" -> "{receiver}" [label="{msg_type}"];'
            )
        lines.append("}")
        rendered[scheme] = "\n".join(lines) + "\n"
    return rendered
