"""Family 3: the determinism lint over the protocol/sim/check sources.

The model checker's replay (``repro check --replay``) and the byte-identity
of parallel reports (``--jobs N`` vs ``--jobs 1``) rest on a property
nothing previously enforced: protocol code must take **no input outside
the simulation** — no wall clock, no unseeded randomness, no OS entropy,
and no iteration over unordered containers (string hashing is salted per
process, so bare-set order differs between the workers that must produce
identical shards).

This is an AST pass — nothing is imported or executed — over every module
under ``src/repro/``, with the seeded RNG wrapper (``sim/rng.py``)
allowlisted as the one place the stdlib ``random`` module may appear.

Rules:

``determinism/wall-clock``
    ``time.time``/``time.time_ns``/``time.monotonic``/``datetime.now``-family
    calls.  The only clock protocol code may read is ``Environment.now``.
    (``time.perf_counter`` is tolerated: it feeds wall-budget *accounting*,
    never a schedule.)  The realtime harness's legitimate deadline polling
    carries per-line pragmas.

``determinism/unseeded-random``
    Any use of the stdlib ``random`` module: module-level functions draw
    from the process-global generator, and ``random.Random()`` with no seed
    seeds from the OS.  ``random.Random(seed)`` is tolerated; protocol code
    should use :class:`repro.sim.rng.Rng`.

``determinism/entropy``
    ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, or anything from
    ``secrets`` — OS entropy by definition.

``determinism/set-iteration``
    A ``for`` loop or comprehension iterating directly over a set literal
    or a ``set(...)``/``frozenset(...)`` call.  Iteration order of a set is
    salted per process; sort first.

A line ending in ``# lint: allow-nondeterminism`` suppresses its findings
(use sparingly, with a justification in the surrounding comment).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import (
    import_table,
    iter_py_files,
    parse_module,
    resolve_name,
)

_ANCHOR = "checker replay / parallel byte-identity (docs/CHECKER.md)"

PRAGMA = "lint: allow-nondeterminism"

#: files (relative to the scanned root) where stdlib randomness is the point
DEFAULT_ALLOWLIST = frozenset({"sim/rng.py"})

#: resolved dotted name → rule (exact matches)
_FORBIDDEN_EXACT: dict[str, str] = {
    "time.time": "determinism/wall-clock",
    "time.time_ns": "determinism/wall-clock",
    "time.localtime": "determinism/wall-clock",
    "time.gmtime": "determinism/wall-clock",
    "time.ctime": "determinism/wall-clock",
    "time.monotonic": "determinism/wall-clock",
    "time.monotonic_ns": "determinism/wall-clock",
    "datetime.now": "determinism/wall-clock",
    "datetime.utcnow": "determinism/wall-clock",
    "datetime.today": "determinism/wall-clock",
    "datetime.datetime.now": "determinism/wall-clock",
    "datetime.datetime.utcnow": "determinism/wall-clock",
    "datetime.datetime.today": "determinism/wall-clock",
    "datetime.date.today": "determinism/wall-clock",
    "os.urandom": "determinism/entropy",
    "uuid.uuid1": "determinism/entropy",
    "uuid.uuid4": "determinism/entropy",
}

#: resolved dotted-name prefixes → rule
_FORBIDDEN_PREFIX: dict[str, str] = {
    "secrets.": "determinism/entropy",
    "random.": "determinism/unseeded-random",
}


def _match(name: str) -> str | None:
    """The rule a resolved dotted name violates, if any."""
    rule = _FORBIDDEN_EXACT.get(name)
    if rule is not None:
        return rule
    for prefix, prefix_rule in _FORBIDDEN_PREFIX.items():
        if name.startswith(prefix):
            return prefix_rule
    return None


def _is_seeded_random_call(node: ast.AST, name: str) -> bool:
    """``random.Random(seed)`` is deterministic; only the bare call is not."""
    if name != "random.Random":
        return False
    return (
        isinstance(node, ast.Call)
        and bool(node.args or node.keywords)
    )


def _is_bare_set(node: ast.expr) -> bool:
    """A set literal or a direct ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def analyze_file(path: Path, rel: str) -> list[Finding]:
    """Run the determinism rules over one source file."""
    tree = parse_module(path)
    table = import_table(tree)
    lines = path.read_text(encoding="utf-8").splitlines()

    def suppressed(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and PRAGMA in lines[lineno - 1]

    findings: list[Finding] = []

    def add(rule: str, lineno: int, message: str) -> None:
        if suppressed(lineno):
            return
        findings.append(Finding(
            rule=rule,
            severity=Severity.ERROR,
            location=f"{rel}:{lineno}",
            message=message,
            anchor=_ANCHOR,
        ))

    # Attribute chains that are the prefix of a longer chain are skipped so
    # ``datetime.datetime.now`` reports once, at the full resolution.
    inner_attrs = {
        id(node.value)
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and id(node) not in inner_attrs:
            name = resolve_name(node, table)
            if name is None:
                continue
            rule = _match(name)
            if rule is None:
                continue
            parent_call = getattr(node, "_repro_call", None)
            if _is_seeded_random_call(parent_call or node, name):
                continue
            add(rule, node.lineno, f"reference to {name}()")
        elif isinstance(node, ast.Call):
            # remember the call so the func attribute can see its arguments
            if isinstance(node.func, ast.Attribute):
                node.func._repro_call = node  # type: ignore[attr-defined]
            elif isinstance(node.func, ast.Name):
                name = resolve_name(node.func, table)
                if name is None:
                    continue
                rule = _match(name)
                if rule is None:
                    continue
                if _is_seeded_random_call(node, name):
                    continue
                add(rule, node.lineno, f"call to {name}()")
        elif isinstance(node, ast.For):
            if _is_bare_set(node.iter):
                add(
                    "determinism/set-iteration", node.lineno,
                    "for-loop over a bare set; iteration order is salted "
                    "per process — sort first",
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                if _is_bare_set(gen.iter):
                    add(
                        "determinism/set-iteration", gen.iter.lineno,
                        "comprehension over a bare set; iteration order is "
                        "salted per process — sort first",
                    )
    return findings


def analyze_tree(
    root: Path, allowlist: frozenset[str] = DEFAULT_ALLOWLIST
) -> list[Finding]:
    """Scan every ``.py`` file under ``root`` (allowlist paths skipped)."""
    findings: list[Finding] = []
    for path in iter_py_files(root):
        rel = path.relative_to(root).as_posix()
        if rel in allowlist:
            continue
        findings.extend(analyze_file(path, rel))
    return findings
