"""Static analysis for the protocol kernel (``repro lint``).

O2PC's correctness rests on facts that are checkable *before* any schedule
runs, and this package checks them without executing anything:

* **repertoire/compensation soundness** (:mod:`repro.analysis.repertoire`)
  — inverse closure over the :class:`~repro.compensation.actions.ActionRegistry`,
  Theorem 2 write-coverage per workload transaction, and Section 2's
  real-action lock-holding requirement;
* **commutativity** (:mod:`repro.analysis.commute`) — the declared/derived
  commutes-with matrix and warnings for workloads that can violate the
  A1–A4 stratification preconditions;
* **determinism** (:mod:`repro.analysis.determinism`) — an AST lint
  forbidding wall-clock, unseeded randomness, OS entropy, and bare-set
  iteration in protocol code, protecting checker replay and parallel
  report byte-identity;
* **dispatch exhaustiveness** (:mod:`repro.analysis.dispatch`) — every
  :class:`~repro.net.message.MsgType` has a receiving side;
* **protocol flow** (:mod:`repro.analysis.flow`) — every outcome-revealing
  send is dominated by its covering WAL force point (force-before-send),
  the networked runtime's frames route through the group-commit durability
  gate, the declared force points match the method bodies, and each
  scheme's role→MsgType→role flow graph is closed (no orphan sends, no
  dead handlers, every edge routable over TCP);
* **event-loop blocking** (:mod:`repro.analysis.blocking`) — no sync
  fsync/file-IO/sleep/subprocess/busy loop reachable from the runtime's
  coroutines.

See ``docs/ANALYSIS.md`` for each rule with its paper anchor.
"""

from repro.analysis.blocking import analyze_rt_blocking
from repro.analysis.commute import (
    analyze_matrix,
    analyze_workload_commutativity,
    build_matrix,
    ops_commute,
)
from repro.analysis.determinism import analyze_file, analyze_tree
from repro.analysis.dispatch import (
    analyze_dispatch,
    analyze_runtime_dispatch,
)
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.flow import (
    analyze_flow,
    analyze_message_flow,
    build_flow_graphs,
    render_flow_dot,
)
from repro.analysis.repertoire import analyze_registry, analyze_workloads
from repro.analysis.runner import (
    LintReport,
    default_root,
    render_json,
    render_text,
    run_all,
)

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "analyze_dispatch",
    "analyze_file",
    "analyze_flow",
    "analyze_matrix",
    "analyze_message_flow",
    "analyze_registry",
    "analyze_rt_blocking",
    "analyze_runtime_dispatch",
    "analyze_tree",
    "analyze_workload_commutativity",
    "analyze_workloads",
    "build_flow_graphs",
    "build_matrix",
    "default_root",
    "render_flow_dot",
    "ops_commute",
    "render_json",
    "render_text",
    "run_all",
    "sort_findings",
]
