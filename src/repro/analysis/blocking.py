"""Family 6: blocking calls reachable from the event loop (``repro.rt``).

The networked runtime is a single asyncio loop per process.  One
synchronous ``fsync`` (or ``time.sleep``, or a file rename) on that loop
stalls *every* connection the daemon serves — and silently defeats the
group-commit design, whose whole point is that force points queue behind
one shared barrier instead of blocking their callers.  Nothing catches
this dynamically: the call succeeds, the daemon just gets slow in a way
that only shows under concurrent load.

This is an AST pass over ``src/repro/rt/``.  Seeds are every coroutine
(``async def``) and every generator function (the sim-engine handlers the
pump thread drives share the process); from the seeds it traverses
same-class method calls (``self.helper()``) and same-module function
calls, so a sync helper extracted from a coroutine stays covered.  Calls
into other packages are not traversed — instead the known blocking
surfaces of the storage layer (the WAL chain) are matched directly at the
call site.

Rules (all errors):

``blocking/sync-sleep``
    ``time.sleep`` on the loop.  Use ``asyncio.sleep``.

``blocking/sync-fsync``
    ``os.fsync``, or a WAL-chain durability call — ``*.wal.sync()``,
    ``*.wal.close()``, ``*.checkpoint()`` — each of which fsyncs.  The
    group-commit flusher's ``barrier`` is the one designated site (it
    coalesces everyone else's force points); it carries the pragma.

``blocking/sync-file-io``
    Builtin ``open()`` or a synchronous ``os`` filesystem call
    (``replace``/``rename``/``remove``/``unlink``/``makedirs``/``rmdir``).

``blocking/subprocess``
    ``subprocess.*`` or ``os.system`` — process spawns block and belong
    in the harness (``rt/system.py``), never on the loop.

``blocking/busy-loop``
    ``while True:`` with no ``await``/``yield`` in its body: the loop
    never yields control back, starving every other task.

A line ending in ``# lint: allow-blocking`` suppresses its findings; the
surrounding comment must say why the block is safe there (boot/shutdown
paths before/after serving, or the designated group-commit fsync).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import (
    import_table,
    iter_py_files,
    parse_module,
    resolve_name,
)

_ANCHOR = "event-loop liveness (docs/RUNTIME.md: one loop per daemon)"

PRAGMA = "lint: allow-blocking"

#: resolved dotted name → rule
_FORBIDDEN: dict[str, str] = {
    "time.sleep": "blocking/sync-sleep",
    "os.fsync": "blocking/sync-fsync",
    "os.fdatasync": "blocking/sync-fsync",
    "os.system": "blocking/subprocess",
    "os.replace": "blocking/sync-file-io",
    "os.rename": "blocking/sync-file-io",
    "os.remove": "blocking/sync-file-io",
    "os.unlink": "blocking/sync-file-io",
    "os.makedirs": "blocking/sync-file-io",
    "os.rmdir": "blocking/sync-file-io",
}

_SUBPROCESS_PREFIX = "subprocess."

#: attribute-call suffixes on the WAL chain that hit the disk.  Matched
#: only when the receiver chain names the WAL (``self.wal.sync``,
#: ``self.site.wal.close``) so an asyncio ``writer.close()`` stays clean;
#: ``*.checkpoint()`` always fsyncs (it appends a forced CHECKPOINT).
_WAL_SUFFIXES = (".sync", ".close")


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


FnDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class _Fn:
    """One function in the rt tree, with its traversal edges."""

    rel: str
    qualname: str
    node: FnDef
    class_name: str | None
    is_seed: bool
    #: names callable from this body: same-class methods + module funcs
    calls: list[str] = field(default_factory=list)


def _own_nodes(fn: FnDef) -> list[ast.AST]:
    """Every AST node of ``fn``'s body, excluding nested function/class
    definitions (a nested ``def`` runs only when called — it is its own
    unit, seeded separately if async/generator)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            stack.append(child)
    return nodes


def _is_generator(fn: FnDef) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_nodes(fn)
    )


def _yields_control(stmts: list[ast.stmt]) -> bool:
    """True when the block awaits or yields (excluding nested defs)."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            stack.append(child)
    return False


def _index_module(path: Path, rel: str) -> tuple[
    list[_Fn], dict[str, dict[str, _Fn]], dict[str, _Fn], ast.Module
]:
    """All functions of one module, keyed for traversal."""
    tree = parse_module(path)
    fns: list[_Fn] = []
    by_class: dict[str, dict[str, _Fn]] = {}
    module_fns: dict[str, _Fn] = {}

    def make(node: FnDef, class_name: str | None) -> _Fn:
        qual = (
            f"{class_name}.{node.name}" if class_name else node.name
        )
        is_seed = isinstance(node, ast.AsyncFunctionDef) or _is_generator(
            node
        )
        fn = _Fn(
            rel=rel, qualname=qual, node=node,
            class_name=class_name, is_seed=is_seed,
        )
        for sub in _own_nodes(node):
            if isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                if name is None:
                    continue
                if name.startswith("self.") and name.count(".") == 1:
                    fn.calls.append(name[5:])
                elif "." not in name:
                    fn.calls.append(name)
        return fn

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = make(stmt, None)
            fns.append(fn)
            module_fns[stmt.name] = fn
        elif isinstance(stmt, ast.ClassDef):
            methods: dict[str, _Fn] = {}
            for member in stmt.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    fn = make(member, stmt.name)
                    fns.append(fn)
                    methods[member.name] = fn
            by_class[stmt.name] = methods
    return fns, by_class, module_fns, tree


def analyze_rt_blocking(root: Path) -> list[Finding]:
    """Run the blocking-call rules over every module under ``rt/``."""
    rt_root = root / "rt"
    findings: list[Finding] = []
    for path in iter_py_files(rt_root):
        rel = f"rt/{path.relative_to(rt_root).as_posix()}"
        findings.extend(_analyze_module(path, rel))
    return findings


def _analyze_module(path: Path, rel: str) -> list[Finding]:
    fns, by_class, module_fns, tree = _index_module(path, rel)
    table = import_table(tree)
    lines = path.read_text(encoding="utf-8").splitlines()

    # reachability: seeds, then same-class / same-module sync callees
    reachable: dict[int, tuple[_Fn, str]] = {}
    queue: list[tuple[_Fn, str]] = [
        (fn, fn.qualname) for fn in fns if fn.is_seed
    ]
    while queue:
        fn, via = queue.pop(0)
        if id(fn.node) in reachable:
            continue
        reachable[id(fn.node)] = (fn, via)
        for callee in fn.calls:
            target: _Fn | None = None
            if fn.class_name is not None:
                target = by_class.get(fn.class_name, {}).get(callee)
            if target is None:
                target = module_fns.get(callee)
            if target is not None and id(target.node) not in reachable:
                queue.append((target, via))

    def suppressed(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and PRAGMA in lines[lineno - 1]

    findings: list[Finding] = []

    def add(rule: str, lineno: int, message: str) -> None:
        if suppressed(lineno):
            return
        findings.append(Finding(
            rule=rule,
            severity=Severity.ERROR,
            location=f"{rel}:{lineno}",
            message=message,
            anchor=_ANCHOR,
        ))

    for fn, via in reachable.values():
        origin = (
            f"{fn.qualname} (runs on the event loop)"
            if fn.is_seed
            else f"{fn.qualname} (reachable from {via})"
        )
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                resolved = (
                    resolve_name(node.func, table)
                    if isinstance(node.func, (ast.Attribute, ast.Name))
                    else None
                )
                if resolved is not None:
                    rule = _FORBIDDEN.get(resolved)
                    if rule is None and resolved.startswith(
                        _SUBPROCESS_PREFIX
                    ):
                        rule = "blocking/subprocess"
                    if rule is not None:
                        add(
                            rule, node.lineno,
                            f"{origin} calls {resolved}() — blocks the "
                            f"loop; move it off-thread or behind the "
                            f"group-commit barrier",
                        )
                        continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                ):
                    add(
                        "blocking/sync-file-io", node.lineno,
                        f"{origin} calls builtin open() — synchronous "
                        f"file IO on the loop",
                    )
                    continue
                if name is not None:
                    on_wal = name.startswith("wal.") or ".wal." in name
                    if (
                        on_wal and name.endswith(_WAL_SUFFIXES)
                    ) or name.endswith(".checkpoint"):
                        add(
                            "blocking/sync-fsync", node.lineno,
                            f"{origin} calls {name}() — a WAL-chain "
                            f"durability call that fsyncs on the loop; "
                            f"route force points through the "
                            f"group-commit barrier",
                        )
            elif isinstance(node, ast.While):
                test = node.test
                is_true = isinstance(test, ast.Constant) and bool(
                    test.value
                ) and test.value in (True, 1)
                if is_true and not _yields_control(node.body):
                    add(
                        "blocking/busy-loop", node.lineno,
                        f"{origin} contains `while True:` with no "
                        f"await/yield in the body — starves every other "
                        f"task on the loop",
                    )
    return findings
