"""The ``repro lint`` runner: all four analyzer families over the repo.

``run_all`` assembles the default inputs — the standard repertoire, the
declarative domain scenarios, and the package's own source tree — runs
every analyzer, and returns a :class:`LintReport` whose findings are in a
deterministic order.  Rendering is split out so the CLI, the CI job, and
the tests consume the same report object.

This is the repo's first correctness tool that runs with **zero schedules
explored**: everything it checks is a precondition the model checker and
the simulator otherwise only probe dynamically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.blocking import analyze_rt_blocking
from repro.analysis.commute import (
    analyze_matrix,
    analyze_workload_commutativity,
)
from repro.analysis.determinism import analyze_tree
from repro.analysis.flow import analyze_flow, analyze_message_flow
from repro.analysis.dispatch import (
    analyze_dispatch,
    analyze_engines,
    analyze_runtime_dispatch,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.repertoire import analyze_registry, analyze_workloads
from repro.compensation.actions import standard_registry
from repro.workload.scenarios import standard_scenarios


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: what was analyzed, for the report header (counts by input kind)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run produced no findings."""
        return not self.findings


def default_root() -> Path:
    """The installed ``repro`` package directory (the tree to scan)."""
    return Path(__file__).resolve().parent.parent


def run_all(root: Path | None = None) -> LintReport:
    """Run every analyzer family; findings come back deterministically
    sorted."""
    scan_root = root if root is not None else default_root()
    registry = standard_registry()
    scenarios = standard_scenarios()

    findings: list[Finding] = []
    findings.extend(analyze_registry(registry))
    findings.extend(analyze_workloads(registry, scenarios))
    findings.extend(analyze_matrix(registry))
    findings.extend(analyze_workload_commutativity(registry, scenarios))
    findings.extend(analyze_tree(scan_root))
    paxos_py = scan_root / "protocols" / "paxos.py"
    short_py = scan_root / "protocols" / "short.py"
    acceptor_py = scan_root / "protocols" / "acceptor.py"
    participant_surfaces = (
        (paxos_py, "PaxosParticipant", "_HANDLERS"),
        (short_py, "ShortParticipant", "_HANDLERS"),
        (acceptor_py, "Acceptor", "_HANDLERS"),
    )
    coordinator_surfaces = (
        (paxos_py, "PaxosCommitCoordinator", "_COLLECTS"),
    )
    findings.extend(analyze_dispatch(
        scan_root / "net" / "message.py",
        scan_root / "commit" / "coordinator.py",
        scan_root / "commit" / "participant.py",
        extra_surfaces=participant_surfaces + coordinator_surfaces,
    ))
    findings.extend(analyze_runtime_dispatch(
        scan_root / "net" / "message.py",
        scan_root / "commit" / "coordinator.py",
        scan_root / "commit" / "participant.py",
        scan_root / "rt" / "daemon.py",
        scan_root / "rt" / "client.py",
        extra_participant_surfaces=participant_surfaces,
        extra_coordinator_surfaces=coordinator_surfaces,
    ))
    findings.extend(analyze_engines())
    findings.extend(analyze_flow(scan_root))
    findings.extend(analyze_message_flow(scan_root))
    findings.extend(analyze_rt_blocking(scan_root))

    stats = {
        "actions": len(registry.names()),
        "workloads": len(scenarios),
        "transactions": sum(len(specs) for specs in scenarios.values()),
        "files_scanned": len(list(scan_root.rglob("*.py"))),
    }
    return LintReport(findings=sort_findings(findings), stats=stats)


def render_text(report: LintReport) -> str:
    """The human-readable report."""
    stats = report.stats
    lines = [
        f"repro lint: {stats.get('actions', 0)} actions, "
        f"{stats.get('workloads', 0)} workloads "
        f"({stats.get('transactions', 0)} transactions), "
        f"{stats.get('files_scanned', 0)} source files",
    ]
    for finding in report.findings:
        lines.append(finding.render())
    lines.append(
        "no findings" if report.ok
        else f"{len(report.findings)} finding(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report (stable key order, deterministic)."""
    payload = {
        "version": 1,
        "ok": report.ok,
        "stats": {k: report.stats[k] for k in sorted(report.stats)},
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.value,
                "location": f.location,
                "message": f.message,
                "anchor": f.anchor,
            }
            for f in report.findings
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
