"""The finding model shared by every ``repro lint`` analyzer.

A :class:`Finding` is one rule violation: a stable rule identifier
(``family/rule-name``), a severity, a location pointer (source ``file:line``
or a logical ``registry:action`` / ``workload:...`` path), a human message,
and the paper anchor the rule reproduces (Theorem 2, Section 2, A1–A4, ...).

Findings are plain data — analyzers return lists of them, the runner sorts
and renders them — so the same results drive the human output, ``--json``,
and the tests that assert a seeded violation is caught.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class Severity(enum.Enum):
    """How a finding gates: both levels fail the lint, the label differs."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation discovered statically."""

    #: stable rule id, ``family/rule-name`` (e.g. ``repertoire/uncovered-write``)
    rule: str
    severity: Severity
    #: ``path:line`` for source findings; ``registry:<action>`` or
    #: ``workload:<name>/<txn>@<site>`` for declaration findings
    location: str
    message: str
    #: where in the paper the violated fact comes from
    anchor: str = ""

    def render(self) -> str:
        """One human-readable line."""
        tail = f"  [{self.anchor}]" if self.anchor else ""
        return (
            f"{self.severity.value.upper():7} {self.rule}  {self.location}\n"
            f"        {self.message}{tail}"
        )


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: by rule, then location, then message."""
    return sorted(
        findings, key=lambda f: (f.rule, f.location, f.message)
    )
