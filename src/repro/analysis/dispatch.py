"""Family 4: handler exhaustiveness over the wire vocabulary.

Every :class:`~repro.net.message.MsgType` must have a receiving side:
either the participant's dispatch table (``Participant._HANDLERS``) or the
coordinator's collect surface (``Coordinator._COLLECTS``).  Both are
class-level literals that the runtime actually binds — the participant
builds its handler map from ``_HANDLERS`` and the coordinator asserts every
``_collect`` against ``_COLLECTS`` — so this check reads the single source
of truth, statically.

A message type outside both sets would be *silently dropped* by the
participant's dispatch loop, which is exactly how a protocol extension
(say, a termination-protocol inquiry round) rots: the sender compiles, the
receiver ignores, and only a timeout-shaped symptom remains.

Rules:

``dispatch/missing-handler``
    An enum member neither handled by the participant nor collected by the
    coordinator.

``dispatch/unknown-msg-type``
    A dispatch declaration references an enum member that does not exist.

``dispatch/duplicate-handler``
    The same member appears twice in one declaration.

``dispatch/runtime-mismatch``
    The networked runtime's wire entry points (``SiteDaemon._INBOUND``,
    ``NetClient._INBOUND``) disagree with the simulation-side dispatch
    surfaces they must mirror — the *union* of every participant-side
    engine's ``_HANDLERS`` (base, Paxos, Short, plus the acceptor the
    daemon co-hosts) and of every coordinator-side engine's ``_COLLECTS``.
    The daemon and client run the *same* protocol engines over TCP; a type
    accepted in one world and not the other is a frame that commits in the
    simulator and vanishes in production (or vice versa).

``dispatch/missing-engine``
    A :class:`~repro.commit.base.CommitScheme` member has no engine
    registered in :mod:`repro.protocols` — a scheme added to the enum but
    not to the registry would pass configuration validation and then crash
    (or worse, silently fall back) at system construction.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import parse_module
from repro.errors import AnalysisError

_ANCHOR = "Section 2 (2PC message vocabulary)"


def _class_body(tree: ast.Module, class_name: str, path: Path) -> ast.ClassDef:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    raise AnalysisError(f"class {class_name} not found in {path}")


def enum_members(message_path: Path) -> list[tuple[str, int]]:
    """``MsgType`` member names (with line numbers), read from the AST."""
    tree = parse_module(message_path)
    cls = _class_body(tree, "MsgType", message_path)
    members: list[tuple[str, int]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    members.append((target.id, stmt.lineno))
    return members


def _msgtype_keys(nodes: list[ast.expr]) -> list[tuple[str, int]]:
    """``MsgType.X`` attribute references among ``nodes``."""
    keys: list[tuple[str, int]] = []
    for node in nodes:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "MsgType"
        ):
            keys.append((node.attr, node.lineno))
    return keys


def _declaration(
    path: Path, class_name: str, attr_name: str
) -> list[tuple[str, int]]:
    """The ``MsgType`` members declared in a class-level dict/tuple literal."""
    tree = parse_module(path)
    cls = _class_body(tree, class_name, path)
    for stmt in cls.body:
        value: ast.expr | None = None
        if isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == attr_name
            ):
                value = stmt.value
        elif isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == attr_name
                for t in stmt.targets
            ):
                value = stmt.value
        if value is None:
            continue
        if isinstance(value, ast.Dict):
            return _msgtype_keys([k for k in value.keys if k is not None])
        if isinstance(value, (ast.Tuple, ast.List)):
            return _msgtype_keys(list(value.elts))
        raise AnalysisError(
            f"{class_name}.{attr_name} in {path} is not a literal "
            f"dict/tuple"
        )
    raise AnalysisError(
        f"{class_name}.{attr_name} declaration not found in {path}"
    )


#: a dispatch declaration site: (file, class name, attribute name)
Surface = tuple[Path, str, str]


def analyze_dispatch(
    message_path: Path,
    coordinator_path: Path,
    participant_path: Path,
    extra_surfaces: tuple[Surface, ...] = (),
) -> list[Finding]:
    """Exhaustiveness of the coordinator + participant receive surfaces.

    ``extra_surfaces`` adds the competitor engines' declarations (Paxos
    coordinator/participant, acceptor, Short participant) to the receivable
    set; each is also individually checked for unknown members and
    duplicates.
    """
    members = enum_members(message_path)
    member_names = {name for name, _ in members}
    handled = _declaration(participant_path, "Participant", "_HANDLERS")
    collected = _declaration(coordinator_path, "Coordinator", "_COLLECTS")
    surfaces: list[tuple[list[tuple[str, int]], Path]] = [
        (handled, participant_path),
        (collected, coordinator_path),
    ]
    for path, class_name, attr_name in extra_surfaces:
        surfaces.append((_declaration(path, class_name, attr_name), path))

    findings: list[Finding] = []
    for declared, source_path in surfaces:
        seen: set[str] = set()
        for name, lineno in declared:
            location = f"{source_path.name}:{lineno}"
            if name not in member_names:
                findings.append(Finding(
                    rule="dispatch/unknown-msg-type",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"declaration references MsgType.{name}, which is "
                        f"not an enum member"
                    ),
                    anchor=_ANCHOR,
                ))
            if name in seen:
                findings.append(Finding(
                    rule="dispatch/duplicate-handler",
                    severity=Severity.ERROR,
                    location=location,
                    message=f"MsgType.{name} is declared twice",
                    anchor=_ANCHOR,
                ))
            seen.add(name)

    receivable: set[str] = set()
    for declared, _source_path in surfaces:
        receivable.update(name for name, _ in declared)
    for name, lineno in members:
        if name not in receivable:
            findings.append(Finding(
                rule="dispatch/missing-handler",
                severity=Severity.ERROR,
                location=f"{message_path.name}:{lineno}",
                message=(
                    f"MsgType.{name} has no participant handler and no "
                    f"coordinator collect — a message of this type would "
                    f"be silently dropped"
                ),
                anchor=_ANCHOR,
            ))
    return findings


def analyze_runtime_dispatch(
    message_path: Path,
    coordinator_path: Path,
    participant_path: Path,
    daemon_path: Path,
    client_path: Path,
    extra_participant_surfaces: tuple[Surface, ...] = (),
    extra_coordinator_surfaces: tuple[Surface, ...] = (),
) -> list[Finding]:
    """The runtime's wire entry points mirror the sim dispatch surfaces.

    The daemon hosts every participant-side engine (plus the co-hosted
    acceptor), the client every coordinator-side engine, so each
    ``_INBOUND`` must equal the *union* of its engines' declarations.
    """
    member_names = {name for name, _ in enum_members(message_path)}

    def union(
        base: list[tuple[str, int]], extras: tuple[Surface, ...]
    ) -> list[tuple[str, int]]:
        merged = list(base)
        for path, class_name, attr_name in extras:
            merged.extend(_declaration(path, class_name, attr_name))
        return merged

    pairs = (
        (
            _declaration(daemon_path, "SiteDaemon", "_INBOUND"),
            daemon_path,
            "SiteDaemon._INBOUND",
            union(
                _declaration(participant_path, "Participant", "_HANDLERS"),
                extra_participant_surfaces,
            ),
            "the participant-side _HANDLERS union",
        ),
        (
            _declaration(client_path, "NetClient", "_INBOUND"),
            client_path,
            "NetClient._INBOUND",
            union(
                _declaration(coordinator_path, "Coordinator", "_COLLECTS"),
                extra_coordinator_surfaces,
            ),
            "the coordinator-side _COLLECTS union",
        ),
    )

    findings: list[Finding] = []
    for inbound, source_path, inbound_name, mirrored, mirrored_name in pairs:
        seen: set[str] = set()
        decl_line = inbound[0][1] if inbound else 1
        for name, lineno in inbound:
            location = f"{source_path.name}:{lineno}"
            if name not in member_names:
                findings.append(Finding(
                    rule="dispatch/unknown-msg-type",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"{inbound_name} references MsgType.{name}, which "
                        f"is not an enum member"
                    ),
                    anchor=_ANCHOR,
                ))
            if name in seen:
                findings.append(Finding(
                    rule="dispatch/duplicate-handler",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"MsgType.{name} is declared twice in {inbound_name}"
                    ),
                    anchor=_ANCHOR,
                ))
            seen.add(name)

        mirrored_names = {name for name, _ in mirrored}
        for name, lineno in inbound:
            if name in member_names and name not in mirrored_names:
                findings.append(Finding(
                    rule="dispatch/runtime-mismatch",
                    severity=Severity.ERROR,
                    location=f"{source_path.name}:{lineno}",
                    message=(
                        f"{inbound_name} accepts MsgType.{name} but "
                        f"{mirrored_name} has no entry for it — the frame "
                        f"would be read off the wire and silently ignored"
                    ),
                    anchor=_ANCHOR,
                ))
        for name in sorted(mirrored_names - seen):
            findings.append(Finding(
                rule="dispatch/runtime-mismatch",
                severity=Severity.ERROR,
                location=f"{source_path.name}:{decl_line}",
                message=(
                    f"{mirrored_name} handles MsgType.{name} but "
                    f"{inbound_name} does not list it — over TCP that "
                    f"message can never reach its handler"
                ),
                anchor=_ANCHOR,
            ))
    return findings


def analyze_engines() -> list[Finding]:
    """Every :class:`CommitScheme` member has a registered engine.

    This is the one check in the family that imports the runtime instead
    of reading the AST: the registry *is* runtime state (populated by
    module import), and importing it is exactly what the harness does —
    so a member missing here is a member the harness cannot construct.
    """
    from repro.commit.base import CommitScheme
    from repro.protocols import ENGINES

    findings: list[Finding] = []
    for scheme in CommitScheme:
        if scheme not in ENGINES:
            findings.append(Finding(
                rule="dispatch/missing-engine",
                severity=Severity.ERROR,
                location=f"base.py:CommitScheme.{scheme.name}",
                message=(
                    f"CommitScheme.{scheme.name} has no engine registered "
                    f"in repro.protocols — the harness cannot construct a "
                    f"system for it"
                ),
                anchor=_ANCHOR,
            ))
    return findings
