"""Generator-backed processes.

A :class:`Process` wraps a generator that yields :class:`~repro.sim.events.Event`
objects.  Each time a yielded event triggers, the kernel resumes the generator
with the event's value (or throws the event's failure exception into it).

A process is itself an event: it triggers when the generator returns (its
value is the generator's return value) or fails if the generator raises.  This
lets processes wait on other processes, which protocols use constantly
("spawn subtransaction, wait for it to finish").
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProcessInterrupted
from repro.sim.events import Event, Initialize, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A running generator inside the simulation."""

    __slots__ = ("_generator", "name", "_target")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
        _started_on: Event | None = None,
    ) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or generator.__name__
        #: the event this process is currently waiting on (None when running
        #: or finished)
        self._target: Event | None = None
        if _started_on is None:
            Initialize(env, self)
        elif _started_on.processed:
            # The adopted generator suspended on an event that has already
            # run: continue it inline with that event's outcome.
            prev = env._active_process
            self._resume(_started_on)
            env._active_process = prev
        else:
            _started_on.callbacks.append(self._resume)
            self._target = _started_on

    @classmethod
    def eager(
        cls,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> "Process | None":
        """Run ``generator``'s first segment inline; return its Process.

        A regular spawn schedules an :class:`Initialize` and runs the first
        segment one kernel dispatch later.  Eager spawning runs it *now*,
        saving that dispatch — and, for generators that finish without ever
        suspending, the Process object and its termination dispatch too
        (``None`` is returned).  Only safe when the caller does not rely on
        the spawned process starting strictly after the current event's
        remaining callbacks.
        """
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        try:
            first = generator.send(None)
        except StopIteration:
            return None
        if not isinstance(first, Event):  # pragma: no cover - defensive
            generator.throw(RuntimeError(
                f"process {name or generator.__name__!r} yielded "
                f"non-event {first!r}"
            ))
            return None
        return cls(env, generator, name=name, _started_on=first)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process.

        The interrupt is delivered at the current simulation time (urgently),
        detaching the process from whatever event it was waiting on.  The
        interrupted event stays valid and can be re-yielded afterwards.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupted(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    # -- kernel interface ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome (kernel callback)."""
        self.env._active_process = self

        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target must no longer resume us).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._terminate_ok(exc.value)
                break
            except BaseException as exc:
                self._terminate_fail(exc)
                break

            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._terminate_ok(stop.value)
                except BaseException as err:
                    self._terminate_fail(err)
                break

            if next_event.processed:
                # Already done: loop immediately with its outcome.
                event = next_event
                continue

            next_event.callbacks.append(self._resume)
            self._target = next_event
            break

        self.env._active_process = None

    def _terminate_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=URGENT)

    def _terminate_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._value = exc
        self.env.schedule(self, priority=URGENT)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
