"""Deterministic discrete-event simulation kernel.

A small, simpy-like kernel: an :class:`~repro.sim.engine.Environment` drives a
heap of timestamped events; protocol logic is written as Python generators
that ``yield`` events (:class:`~repro.sim.events.Timeout`,
:class:`~repro.sim.events.Event`, :class:`~repro.sim.events.AnyOf`,
:class:`~repro.sim.events.AllOf`) and are resumed when those events trigger.

Determinism: given a fixed seed for :class:`~repro.sim.rng.Rng` and identical
process creation order, two runs produce identical event orderings.
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import Rng
from repro.sim.store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Rng",
    "Store",
    "Timeout",
]
