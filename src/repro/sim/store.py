"""FIFO store: the producer/consumer channel used for site inboxes.

``put`` never blocks (stores are unbounded); ``get`` returns an event that
triggers with the oldest item as soon as one is available.  Delivery order is
strictly FIFO for both items and waiting getters, which keeps message
processing deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Store:
    """Unbounded FIFO channel of items."""

    def __init__(self, env: "Environment", name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter, if any."""
        # Skip over getters that were cancelled/triggered elsewhere.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> None:
        """Withdraw a waiting getter (e.g. after losing a timeout race).

        A triggered getter cannot be withdrawn — it already consumed an
        item; callers must check ``event.triggered`` first.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def clear(self) -> list[Any]:
        """Drop and return all queued items (used on site crash)."""
        dropped = list(self._items)
        self._items.clear()
        return dropped

    def __repr__(self) -> str:
        return (
            f"<Store {self.name!r} items={len(self._items)} "
            f"waiting={len(self._getters)}>"
        )
