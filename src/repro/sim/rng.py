"""Seeded random-number utilities for simulations and workloads.

A thin wrapper over :class:`random.Random` adding the distributions used by
the workload generators and the network latency models.  Keeping one ``Rng``
per simulation run (or one per named stream, via :meth:`fork`) makes every
experiment reproducible from its seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """Deterministic random source with simulation-oriented helpers."""

    def __init__(self, seed: int | None = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, stream: str) -> "Rng":
        """Return an independent, deterministic sub-stream.

        Two forks with the same parent seed and stream name always produce
        the same sequence, regardless of how much the parent was consumed —
        and regardless of the process: the sub-seed comes from a stable
        digest, not Python's per-process string hash.
        """
        import hashlib

        digest = hashlib.sha256(f"{self.seed}:{stream}".encode()).digest()
        sub_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return Rng(sub_seed)

    # -- basic draws ---------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform draw on [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer on [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform draw on [0, 1)."""
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw: True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} outside [0, 1]")
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """k distinct items drawn uniformly without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle ``items`` in place and return it."""
        self._random.shuffle(items)
        return items

    # -- simulation distributions ---------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (inter-arrival times)."""
        if mean <= 0:
            raise ValueError(f"mean {mean} must be positive")
        return self._random.expovariate(1.0 / mean)

    def normal(self, mu: float, sigma: float, minimum: float = 0.0) -> float:
        """Normal draw truncated below at ``minimum`` (latency jitter)."""
        return max(minimum, self._random.gauss(mu, sigma))

    def zipf_index(self, n: int, theta: float = 0.99) -> int:
        """Draw an index in [0, n) under a Zipf-like skew.

        ``theta`` = 0 degenerates to uniform; larger values skew access toward
        low indices.  Uses the standard inverse-CDF construction over the
        generalized harmonic numbers, cached per (n, theta).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if theta == 0.0:
            return self._random.randrange(n)
        cdf = self._zipf_cdf(n, theta)
        u = self._random.random()
        # Binary search for the first cdf entry >= u.
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] >= u:
                hi = mid
            else:
                lo = mid + 1
        return lo

    _zipf_cache: dict[tuple[int, float], list[float]] = {}

    @classmethod
    def _zipf_cdf(cls, n: int, theta: float) -> list[float]:
        key = (n, theta)
        cached = cls._zipf_cache.get(key)
        if cached is not None:
            return cached
        weights = [1.0 / math.pow(i + 1, theta) for i in range(n)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        cls._zipf_cache[key] = cdf
        return cdf
