"""The discrete-event simulation environment.

:class:`Environment` owns the virtual clock and the event queue.  Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events process
in a deterministic order, and process resumptions (URGENT) run before ordinary
events scheduled at the same instant.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator

from repro.errors import SimulationDeadlock
from repro.obs.events import EventBus
from repro.sim.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.sim.process import Process


class Environment:
    """Execution environment for a single simulation run."""

    #: whether the network should attach reorderable-delivery annotations
    #: to arrival events.  Only the model checker's controlled scheduler
    #: consumes them, so the plain kernel skips building the per-message
    #: label strings entirely (they were the last unconditional payload
    #: construction on the message hot path).
    annotate_deliveries = False

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Process | None = None
        #: observability event bus (disabled by default; instrumented
        #: layers guard emission on ``bus.enabled``)
        self.bus = EventBus(clock=self)
        #: diagnostic providers consulted when a deadlock is raised; each
        #: returns a text block (or "") appended to the exception message —
        #: the System registers one that snapshots the lock managers'
        #: wait-for graphs so a drained queue is self-explanatory
        self._deadlock_diagnostics: list[Callable[[], str]] = []

    # -- clock & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Enqueue ``event`` to be processed ``delay`` time units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------------

    def add_deadlock_diagnostic(self, provider: Callable[[], str]) -> None:
        """Register a provider whose text is appended to deadlock messages."""
        self._deadlock_diagnostics.append(provider)

    def _raise_deadlock(self, message: str) -> None:
        parts = [message]
        for provider in self._deadlock_diagnostics:
            try:
                text = provider()
            except Exception:  # diagnostics must never mask the deadlock
                continue
            if text:
                parts.append(text)
        raise SimulationDeadlock("\n".join(parts))

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationDeadlock` if the queue is empty, and re-raises
        an event's failure if the event failed and nothing was waiting on it
        (so programming errors inside processes surface instead of vanishing).
        """
        if not self._queue:
            self._raise_deadlock("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's callbacks (shared by step variants)."""
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise RuntimeError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # Unhandled failure: a process crashed and nobody was watching.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning its
          value (or raising its failure).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    self._raise_deadlock(
                        f"event queue drained before {stop!r} triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value

        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline)
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"
