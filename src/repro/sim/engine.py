"""The discrete-event simulation environment.

:class:`Environment` owns the virtual clock and the event queue.  Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events process
in a deterministic order, and process resumptions (URGENT) run before ordinary
events scheduled at the same instant.

Two queue kernels implement that contract:

* the **calendar queue** (default): one hot *slot* for the current tick —
  a pair of FIFO deques (URGENT, NORMAL) holding bare events — plus an
  overflow heap of ``(time, priority, seq, event)`` tuples for future times.
  Profiling the bench workload shows ~62% of all ``schedule`` calls land at
  the current simulation time (``succeed``/resume/terminate chains), while
  future timestamps are dominated by unique random latencies; so the hot
  slot absorbs the majority of traffic with a plain ``deque.append`` — no
  tuple, no sequence number, no heap rebalance — and the overflow heap stays
  small.  FIFO deques reproduce the sequence-number tiebreak exactly (a heap
  entry at the current tick always predates every slot entry, so only the
  priority needs comparing), keeping dispatch order identical to the heap
  kernel — ``repro trace`` stays byte-deterministic across the swap.
* the **legacy heap** (``REPRO_LEGACY_QUEUE=1``): the original single binary
  heap for *all* events.  Kept for the determinism corpus test, which asserts
  byte-identical traces across the kernel swap.

The model checker's :class:`~repro.check.scheduler.ControlledEnvironment`
forces the heap kernel (``_FORCE_HEAP``): it re-sorts the ready set at every
step to steer delivery choices, which wants the flat tuple representation.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterator

from repro.errors import SimulationDeadlock
from repro.obs.events import EventBus
from repro.sim.events import AllOf, AnyOf, Event, NORMAL, Timeout, URGENT
from repro.sim.process import Process

_INF = float("inf")
_heappush = heapq.heappush
_heappop = heapq.heappop


class Environment:
    """Execution environment for a single simulation run."""

    #: whether the network should attach reorderable-delivery annotations
    #: to arrival events.  Only the model checker's controlled scheduler
    #: consumes them, so the plain kernel skips building the per-message
    #: label strings entirely (they were the last unconditional payload
    #: construction on the message hot path).
    annotate_deliveries = False

    #: subclasses that manipulate ``self._queue`` directly (the controlled
    #: scheduler) set this to keep the flat-heap representation regardless
    #: of ``REPRO_LEGACY_QUEUE``.
    _FORCE_HEAP = False

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._legacy = (
            self._FORCE_HEAP or os.environ.get("REPRO_LEGACY_QUEUE") == "1"
        )
        #: overflow heap of (time, priority, seq, event); in legacy mode it
        #: is the *only* queue (the slot deques stay empty)
        self._queue: list[tuple[float, int, int, Event]] = []
        #: current-tick slot: bare events at time == now, FIFO per priority
        self._slot_urgent: deque[Event] = deque()
        self._slot_normal: deque[Event] = deque()
        #: monotonically increasing count of ``schedule`` calls.  Doubles as
        #: the heap sequence tiebreak, and the network uses it as a watermark
        #: to prove nothing was interleaved between two sends before merging
        #: them into one batched arrival.
        self.schedule_count = 0
        self._active_process: Process | None = None
        #: observability event bus (disabled by default; instrumented
        #: layers guard emission on ``bus.enabled``)
        self.bus = EventBus(clock=self)
        #: diagnostic providers consulted when a deadlock is raised; each
        #: returns a text block (or "") appended to the exception message —
        #: the System registers one that snapshots the lock managers'
        #: wait-for graphs so a drained queue is self-explanatory
        self._deadlock_diagnostics: list[Callable[[], str]] = []

    # -- clock & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if self._slot_urgent or self._slot_normal:
            return self._now
        return self._queue[0][0] if self._queue else _INF

    @property
    def queued(self) -> int:
        """Number of scheduled-but-unprocessed events.

        Deliberately a property, not ``__len__``: an ``Environment`` must
        stay truthy when its queue is empty (``env or Environment()`` is a
        live idiom for optional-env parameters).
        """
        return (
            len(self._queue)
            + len(self._slot_urgent)
            + len(self._slot_normal)
        )

    def queued_events(self) -> Iterator[Event]:
        """Iterate scheduled events (introspection; unspecified order)."""
        yield from self._slot_urgent
        yield from self._slot_normal
        for _when, _prio, _seq, event in self._queue:
            yield event

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Enqueue ``event`` to be processed ``delay`` time units from now."""
        self.schedule_count += 1
        when = self._now + delay
        if when == self._now and not self._legacy:
            # Hot slot: current-tick events in schedule (== sequence) order.
            if priority == NORMAL:
                self._slot_normal.append(event)
            elif priority == URGENT:
                self._slot_urgent.append(event)
            else:
                # Exotic priority (never in-tree): the heap orders it.
                _heappush(
                    self._queue,
                    (when, priority, self.schedule_count, event),
                )
            return
        _heappush(
            self._queue, (when, priority, self.schedule_count, event)
        )

    def _pop(self) -> tuple[float, Event]:
        """Remove and return the next ``(time, event)`` (calendar kernel).

        Heap entries at the current tick were necessarily scheduled before
        every slot entry (a same-tick schedule lands in the slot), so their
        sequence numbers are smaller and only priorities need comparing.
        Raises ``IndexError`` when everything is empty.
        """
        queue = self._queue
        now = self._now
        slot_urgent = self._slot_urgent
        if slot_urgent:
            if queue and queue[0][0] == now and queue[0][1] <= URGENT:
                return now, _heappop(queue)[3]
            return now, slot_urgent.popleft()
        slot_normal = self._slot_normal
        if queue and queue[0][0] == now and (
            queue[0][1] <= NORMAL or not slot_normal
        ):
            return now, _heappop(queue)[3]
        if slot_normal:
            return now, slot_normal.popleft()
        entry = _heappop(queue)  # IndexError here == queue drained
        return entry[0], entry[3]

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------------

    def add_deadlock_diagnostic(self, provider: Callable[[], str]) -> None:
        """Register a provider whose text is appended to deadlock messages."""
        self._deadlock_diagnostics.append(provider)

    def _raise_deadlock(self, message: str) -> None:
        parts = [message]
        for provider in self._deadlock_diagnostics:
            try:
                text = provider()
            except Exception:  # diagnostics must never mask the deadlock
                continue
            if text:
                parts.append(text)
        raise SimulationDeadlock("\n".join(parts))

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationDeadlock` if the queue is empty, and re-raises
        an event's failure if the event failed and nothing was waiting on it
        (so programming errors inside processes surface instead of vanishing).
        """
        if self._legacy:
            if not self._queue:
                self._raise_deadlock("no scheduled events")
            self._now, _, _, event = _heappop(self._queue)
        else:
            try:
                self._now, event = self._pop()
            except IndexError:
                self._raise_deadlock("no scheduled events")
                raise  # pragma: no cover - _raise_deadlock always raises
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's callbacks (shared by step variants)."""
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise RuntimeError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # Unhandled failure: a process crashed and nobody was watching.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning its
          value (or raising its failure).
        """
        if until is None:
            while self.queued:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self.queued:
                    self._raise_deadlock(
                        f"event queue drained before {stop!r} triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value

        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self.queued and self.peek() <= deadline:
            self.step()
        self._now = max(self._now, deadline)
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={self.queued}>"
