"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait on
events by yielding them; the kernel resumes the process with the event's value
(or throws the event's exception into it).

Composite events :class:`AnyOf` and :class:`AllOf` let a process wait on
several events at once — the idiom protocols use to race a message arrival
against a timeout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Environment


class _Pending:
    """Sentinel for "event has no value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()

# Scheduling priorities: lower runs first at equal timestamps.  Process
# resumptions are URGENT so that a process observes the world state produced
# by the event that woke it before any same-time event fires.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Life cycle: *pending* → *triggered* (``succeed``/``fail`` called, value
    set, scheduled on the event queue) → *processed* (callbacks ran).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "annotation")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: set True once a process has observed (or will observe) a failure,
        #: used to surface unhandled failures loudly instead of silently.
        self.defused: bool = False
        #: optional ``(kind, subject, label)`` tag identifying this event as
        #: an externally reorderable occurrence (e.g. a message delivery).
        #: The plain kernel ignores it; the model checker's controlled
        #: scheduler treats same-time annotated events as a choice point.
        self.annotation: tuple[str, str, str] | None = None

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("value of event is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception, if it failed)."""
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        A waiting process will have ``exception`` thrown into it.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Kick-starts a freshly created process (internal)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Condition(Event):
    """Base for composite events over a fixed set of sub-events.

    Triggers when ``evaluate`` says enough sub-events have fired; its value is
    an ordered dict of the *triggered* sub-events and their values.
    """

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one Environment")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count as "has happened": a Timeout carries
        # its value from creation (triggered), but it has not occurred until
        # the kernel processes it.
        return {e: e._value for e in self._events if e.processed}

    def evaluate(self, count: int, total: int) -> bool:
        """Return True when the condition is satisfied."""
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Late-arriving failures must not vanish silently.
            if not event._ok and not event.defused:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self.evaluate(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers once *all* sub-events have triggered."""

    __slots__ = ()

    def evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers as soon as *any* sub-event triggers."""

    __slots__ = ()

    def evaluate(self, count: int, total: int) -> bool:
        return count >= 1
