"""Marking data structures: sitemarks, execution sites, UDUM1 witnesses.

The :class:`MarkingDirectory` holds, for every site, its
:class:`~repro.core.marking.MarkingStateMachine` (whose undone-set is the
paper's ``sitemarks.k``), plus the augmented structures Section 6.2 calls
for: the set of execution sites of each global transaction and, per
(transaction, site), the witnesses that executed there while the site was
undone — exactly what's needed to detect UDUM1:

    *UDUM1*: for each site in which ``T_i`` executes, there is a transaction
    that has also executed at that site while that site was undone with
    respect to ``T_i``.

The directory is one in-memory object shared by all sites of a simulation.
That is a modeling shortcut for the paper's statement that "managing these
structures does not incur any extra messages" — the information piggybacks
on messages that already flow; the simulation likewise sends nothing extra
for it (the message counters prove this in the CLAIM-MSG experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.marking import MarkingEvent, MarkingStateMachine
from repro.obs.events import EventBus, MarkApplied, MarkCleared

#: reserved data-item name for a site's marking set when it is stored "as
#: part of the database" and locked under 2PL (Section 6.2's first option —
#: the configuration that exhibits the marking-set deadlock)
MARKS_KEY = "__sitemarks__"


@dataclass
class MarkingDirectory:
    """Shared marking state for one simulation run."""

    machines: dict[str, MarkingStateMachine] = field(default_factory=dict)
    #: sites where each global transaction executed (set at spawn time)
    exec_sites: dict[str, set[str]] = field(default_factory=dict)
    #: txn -> site -> witnesses that executed there while undone wrt txn
    witnesses: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    #: audit of UDUM unmarkings: (txn, enabling witness)
    udum_log: list[tuple[str, str]] = field(default_factory=list)
    #: global transactions currently in flight
    active: set[str] = field(default_factory=set)
    #: transactions that have executed at least one subtransaction
    executed_any: set[str] = field(default_factory=set)
    #: txn -> sites where its subtransactions completed execution
    executed_sites: dict[str, set[str]] = field(default_factory=dict)
    #: txn -> sites that have fired an undone marking for it
    marked_sites: dict[str, set[str]] = field(default_factory=dict)
    #: marked txn -> still-active transactions that overlapped its marking
    #: (the transactions UDUM0 worries about); when the set drains, the
    #: marks are safe to clear
    blockers: dict[str, set[str]] = field(default_factory=dict)
    #: audit of quiescence-based unmarkings: (txn, last blocker)
    quiescence_log: list[tuple[str, str]] = field(default_factory=list)
    #: transactions whose marks were cleared (by UDUM or quiescence) —
    #: stale copies of these marks in a transaction's ``transmarks`` are
    #: ignored by the protocols' checks
    cleared: set[str] = field(default_factory=set)
    #: ablation switch: disable the quiescence-based clearing rule, leaving
    #: UDUM1 as the only way marks dissolve (the paper's literal setup)
    quiescence_enabled: bool = True
    #: observability bus (attached by the System; None when standalone)
    bus: EventBus | None = None

    def machine(self, site_id: str) -> MarkingStateMachine:
        """The marking state machine of ``site_id``."""
        if site_id not in self.machines:
            self.machines[site_id] = MarkingStateMachine(site_id)
        return self.machines[site_id]

    def sitemarks(self, site_id: str) -> set[str]:
        """``sitemarks.k``: transactions ``site_id`` is undone wrt."""
        return self.machine(site_id).undone_set()

    def lc_marks(self, site_id: str) -> set[str]:
        """Transactions ``site_id`` is locally-committed wrt (for P2)."""
        return self.machine(site_id).locally_committed_set()

    # -- registration ----------------------------------------------------------

    def register_execution(self, txn_id: str, site_ids: list[str]) -> None:
        """Record where a global transaction executes (augmented structure).

        Also marks the transaction in flight for the quiescence rule.
        """
        self.exec_sites.setdefault(txn_id, set()).update(site_ids)
        self.active.add(txn_id)

    # -- quiescence-based clearing (the UDUM0-derived rule) -----------------------

    def note_marked(self, txn_id: str, site_id: str) -> None:
        """A site just became undone with respect to ``txn_id``.

        Snapshot the in-flight transactions that have already executed
        somewhere: only they can have accessed a site while it was locally
        committed with respect to ``txn_id`` (UDUM0's concern), so once
        they all terminate the marks are safe to clear.  A transaction
        still waiting to place its first subtransaction has observed
        nothing and need not block the clearing.  Called on every per-site
        marking event, so the blocker set accumulates across ``txn_id``'s
        sites (a site can be locally committed with respect to ``txn_id``
        while another is already undone — late observers are caught by the
        later site's marking event).
        """
        if txn_id in self.cleared:
            # A straggler marking after the transaction's marks were
            # cleared (e.g. a lock-blocked compensation finishing long
            # after the coordinator gave up waiting for its ACK).  The
            # clearing was sound — a roll-back that late exposed nothing —
            # so remove the stale mark immediately rather than resurrect
            # bookkeeping for a finished transaction.
            machine = self.machine(site_id)
            if txn_id in machine.undone_set():
                machine.fire(txn_id, MarkingEvent.UDUM)
            return
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.publish(MarkApplied(txn_id=txn_id, site_id=site_id))
        self.marked_sites.setdefault(txn_id, set()).add(site_id)
        self.blockers.setdefault(txn_id, set()).update(
            (self.active & self.executed_any) - {txn_id}
        )
        # A long-delayed compensation may be the last thing holding the
        # clearing back (the blockers may have drained long ago).
        if self._clearable(txn_id):
            self._clear(txn_id, enabler=txn_id)

    def _clearable(self, marked: str) -> bool:
        if not self.quiescence_enabled:
            return False
        if marked in self.active:
            return False
        if self.blockers.get(marked):
            return False
        if marked not in self.blockers:
            return False
        pending = (
            self.executed_sites.get(marked, set())
            - self.marked_sites.get(marked, set())
        )
        return not pending

    def _clear(self, marked: str, enabler: str) -> None:
        self.blockers.pop(marked, None)
        still_marked = False
        for machine in self.machines.values():
            if marked in machine.undone_set():
                machine.fire(marked, MarkingEvent.UDUM)
                still_marked = True
        if still_marked:
            self.quiescence_log.append((marked, enabler))
            bus = self.bus
            if bus is not None and bus.enabled:
                bus.publish(MarkCleared(
                    txn_id=marked, rule="quiescence", enabler=enabler,
                ))
        self.cleared.add(marked)

    def note_terminated(self, txn_id: str) -> list[str]:
        """A global transaction terminated (committed, or aborted with all
        roll-backs/compensations done).  Returns the marked transactions
        whose marks this termination allowed to clear.

        Transactions that *started after* a mark was placed can never have
        seen a locally-committed state of the marked transaction, and a
        local transaction cannot relay an inconsistency across sites, so
        draining the blocker set satisfies UDUM0 directly.  (This is the
        kind of alternative clearing rule the paper defers to [KLS90b];
        it uses the same augmented structures and no extra messages.)
        """
        self.active.discard(txn_id)
        for blocker_set in self.blockers.values():
            blocker_set.discard(txn_id)
        cleared = [
            marked for marked in sorted(self.blockers)
            if self._clearable(marked)
        ]
        for marked in cleared:
            # Every site where the marked transaction actually executed
            # must have fired its undone marking (checked by _clearable: a
            # compensation can still be lock-blocked long after the
            # coordinator gave up waiting for its ACK — clearing before it
            # runs would let a concurrent transaction see both worlds).
            self._clear(marked, enabler=txn_id)
        return cleared

    # -- witness recording and UDUM detection ------------------------------------

    def record_witness(self, observer_txn: str, site_id: str) -> list[str]:
        """Record that ``observer_txn`` executed at ``site_id``.

        Also feeds the quiescence rule's "has executed somewhere" set.

        For every transaction the site is currently undone with respect to,
        the observer becomes a witness (it executed "while that site was
        undone").  Returns the transactions for which UDUM1 became detectable
        — rule R3 then unmarks them, attributed to this observer.
        """
        self.executed_any.add(observer_txn)
        self.executed_sites.setdefault(observer_txn, set()).add(site_id)
        enabled: list[str] = []
        for marked_txn in sorted(self.sitemarks(site_id)):
            per_site = self.witnesses.setdefault(marked_txn, {})
            per_site.setdefault(site_id, set()).add(observer_txn)
            if self._udum1_holds(marked_txn):
                enabled.append(marked_txn)
        return enabled

    def _udum1_holds(self, txn_id: str) -> bool:
        sites = self.exec_sites.get(txn_id)
        if not sites:
            return False
        per_site = self.witnesses.get(txn_id, {})
        return all(per_site.get(site) for site in sites)

    def apply_udum(self, txn_id: str, enabling_witness: str) -> None:
        """Rule R3: unmark ``txn_id`` at every site still undone wrt it.

        Executed "as part of the transaction that enabled the transition".
        """
        for machine in self.machines.values():
            if txn_id in machine.undone_set():
                machine.fire(txn_id, MarkingEvent.UDUM)
        self.udum_log.append((txn_id, enabling_witness))
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.publish(MarkCleared(
                txn_id=txn_id, rule="UDUM1", enabler=enabling_witness,
            ))
        self.witnesses.pop(txn_id, None)
        self.cleared.add(txn_id)
