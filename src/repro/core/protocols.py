"""Enforcement protocols P1, P2, and SIMPLE (Section 6).

All three share one interface (:class:`MarkingProtocol`) consumed by the
commit layer:

* ``check_spawn`` — rule R1: may transaction ``T_j``, with accumulated marks
  ``transmarks.j``, start a subtransaction at this site?
* ``merge_marks`` — R1's update ``transmarks.j ← transmarks.j ∪ sitemarks.k``;
* ``validate_at_vote`` — the paper's "the check is validated again as the
  last action of the subtransaction": the final ``transmarks.j`` (complete
  once every subtransaction has executed) is re-checked at each site when
  the VOTE-REQ arrives, and the site votes NO on failure.  This catches the
  mirror-image violation the spawn-time check cannot see (a site visited
  *before* the mark was picked up elsewhere), and piggybacks on an existing
  2PC message;
* marking-transition hooks (``on_vote_commit`` / ``on_vote_abort`` /
  ``on_decision``) driving the Figure 2 state machine, with the undone
  marking applied **after** compensation completes (rule R2: the last
  operation of ``CT_ik`` adds ``T_i`` to ``sitemarks.k``);
* ``on_executed`` — witness recording for UDUM1 and rule R3 (unmark).

Marks cleared by UDUM are remembered: a transaction still carrying a cleared
mark in its ``transmarks`` passes checks for it (Lemma 4/6 establish the
cleared state is safe to mix with anything).

The protocols restrict **only global transactions** — local transactions
never consult them — so site autonomy is untouched (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.marking import MarkingEvent
from repro.core.marks import MarkingDirectory
from repro.obs.events import MarkingRejected


@dataclass
class CheckResult:
    """Outcome of an R1 compatibility check."""

    ok: bool
    #: when rejected: may the coordinator retry later, or must it abort?
    retriable: bool = False
    reason: str = ""


@dataclass
class MarkingProtocol:
    """Base protocol: common marking transitions, permissive checks."""

    directory: MarkingDirectory = field(default_factory=MarkingDirectory)
    #: count of R1 rejections (metrics)
    rejections: int = 0

    name = "none"

    # -- checks (overridden by concrete protocols) ------------------------------

    def check_spawn(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> CheckResult:
        """Rule R1 at subtransaction start."""
        return CheckResult(ok=True)

    def merge_marks(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> set[str]:
        """Marks the coordinator should add to ``transmarks.j``."""
        return set()

    def validate_at_vote(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> bool:
        """Final re-validation with the complete ``transmarks.j``."""
        return True

    # -- marking transitions (Figure 2) -------------------------------------------

    def register_execution(self, txn_id: str, site_ids: list[str]) -> None:
        """Record a global transaction's execution sites (for UDUM1)."""
        self.directory.register_execution(txn_id, site_ids)

    def on_vote_commit(self, txn_id: str, site_id: str) -> None:
        """Site voted YES (O2PC: locally committed)."""
        self.directory.machine(site_id).fire(txn_id, MarkingEvent.VOTE_COMMIT)

    def on_vote_abort(self, txn_id: str, site_id: str) -> None:
        """Site voted NO and rolled back (the degenerate ``CT_ik`` is done,
        so per R2 the undone mark is applied now)."""
        self.directory.machine(site_id).fire(txn_id, MarkingEvent.VOTE_ABORT)
        self.directory.note_marked(txn_id, site_id)

    def on_decision_commit(self, txn_id: str, site_id: str) -> None:
        """Decision COMMIT arrived at a locally-committed site."""
        self.directory.machine(site_id).fire(
            txn_id, MarkingEvent.DECISION_COMMIT
        )

    def on_decision_abort_compensated(self, txn_id: str, site_id: str) -> None:
        """Decision ABORT arrived and ``CT_ik`` has completed (R2)."""
        self.directory.machine(site_id).fire(
            txn_id, MarkingEvent.DECISION_ABORT
        )
        self.directory.note_marked(txn_id, site_id)

    def restore_locally_committed(self, txn_id: str, site_id: str) -> None:
        """Crash recovery re-derived a locally-committed subtransaction.

        The WAL proves the site voted to commit ``txn_id`` before the
        crash, so its marking must be LOCALLY_COMMITTED for the pending
        decision's Figure 2 transition to fire legally.  Idempotent: in
        the simulator the directory survives a modeled crash and the
        marking is already in place.
        """
        from repro.core.marking import Marking

        machine = self.directory.machine(site_id)
        if machine.state(txn_id) is Marking.UNMARKED:
            machine.restore(txn_id, Marking.LOCALLY_COMMITTED)

    def on_transaction_terminated(self, txn_id: str) -> None:
        """The global transaction fully terminated (coordinator hook).

        Drives the quiescence-based clearing rule: marks whose blocker set
        drained are removed everywhere (they cannot participate in any new
        inconsistency — UDUM0's condition is met).
        """
        self.directory.note_terminated(txn_id)

    def on_executed(self, observer_txn: str, site_id: str) -> None:
        """Witness recording; applies rule R3 when UDUM1 becomes true."""
        for enabled in self.directory.record_witness(observer_txn, site_id):
            self.directory.apply_udum(enabled, observer_txn)

    # -- helpers ---------------------------------------------------------------------

    def _reject(
        self, txn_id: str, site_id: str, retriable: bool, reason: str
    ) -> CheckResult:
        """Count (and report) one R1 rejection."""
        self.rejections += 1
        bus = self.directory.bus
        if bus is not None and bus.enabled:
            bus.publish(MarkingRejected(
                protocol=self.name, txn_id=txn_id, site_id=site_id,
                retriable=retriable, reason=reason,
            ))
        return CheckResult(ok=False, retriable=retriable, reason=reason)

    def _live(self, marks: set[str]) -> set[str]:
        """Marks not yet cleared (by UDUM or the quiescence rule)."""
        return {m for m in marks if m not in self.directory.cleared}

    def sitemarks(self, site_id: str) -> set[str]:
        """``sitemarks.k`` (undone set) of a site."""
        return self.directory.sitemarks(site_id)


class NoProtocol(MarkingProtocol):
    """Baseline: O2PC without a complementary protocol (or plain 2PL).

    Regular cycles are possible; the CLAIM-CORRECT experiments use this to
    show the violations P1 exists to prevent.
    """

    name = "none"


class SagaMode(NoProtocol):
    """Saga semantics: O2PC "as presented, without any further adjustments".

    Section 4's closing remark: "the loss of serializability would not be
    worrisome if sagas, or their generalization — multi-transactions — are
    used."  In a saga application the programmer accepts that concurrent
    transactions may observe intermediate states; the only guarantees kept
    are *semantic atomicity* (every global transaction either commits
    everywhere or is compensated everywhere) and the local serializability
    of each site.  Operationally identical to :class:`NoProtocol`; the
    separate name exists so a system's configuration states its intent.
    """

    name = "saga"


class P1Protocol(MarkingProtocol):
    """Protocol P1: once a transaction touches a site undone with respect to
    ``T_i``, **every** site it touches must be undone with respect to
    ``T_i`` (rule P1(a)) — including sites where ``T_i`` never executed.

    The full strictness is necessary, not pedantry: a relaxed variant that
    binds marks only at ``T_i``'s own sites is unsound, because a third
    transaction that read ``T_i``'s exposed updates can *relay* the
    inconsistency into a ``T_i``-free site and close a regular cycle there
    (``T_j → T_m`` at the free site, ``T_m → CT_i`` and ``CT_i → T_j``
    elsewhere).  The relaxed variant was tried during development and the
    randomized-correctness benchmark found exactly such a three-party
    cycle; see EXPERIMENTS.md (CLAIM-CORRECT).

    What this protocol guarantees on executions (latch-mode marking sets,
    the paper's "acceptable compromise"): **atomicity of compensation**
    holds unconditionally — no transaction ever reads both a forward
    transaction's exposed updates and its compensation's — and regular
    cycles through committed transactions are prevented pairwise.  Cycles
    threaded through *two or more* compensations' mutual data orderings are
    outside the marking machinery's reach without fully 2PL-locked marking
    sets (which the paper's own Section 6.2 remark shows to be
    deadlock-prone); the ``eager_rule`` evaluation below empirically
    suppresses the residue (zero occurrences in the 24-run reference sweep,
    versus one without it) at a ~10% commit cost.
    """

    name = "P1"

    #: ablation switch: evaluate the full P1(a) rule eagerly at spawn (the
    #: default) or run only the paper's one-directional compatible() check
    #: and rely on the vote-time re-validation
    eager_rule: bool = True

    def _missing(self, site_id: str, transmarks: set[str]) -> set[str]:
        """Live marks in ``transmarks`` not present at ``site_id``."""
        return self._live(transmarks) - self.sitemarks(site_id)

    def check_spawn(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> CheckResult:
        """Rule R1 plus the eager full-rule evaluation (see class doc)."""
        # The one-directional compatible() check of the paper, first.
        missing = self._missing(site_id, transmarks)
        # Eager evaluation of the *full* P1(a) rule: the coordinator knows
        # T_j's complete site list (it is registered before spawning), so a
        # mark visible here can be checked against every site T_j will
        # touch immediately — rejecting retriably *before* the doomed
        # subtransaction executes and exposes updates, instead of letting
        # the vote-time re-validation abort it after the fact.  The
        # required information (which sites are undone with respect to the
        # marked transaction) lives in the same augmented structures the
        # markings themselves use; no extra messages.
        doomed: set[str] = set()
        txn_sites = self.directory.exec_sites.get(txn_id, set())
        candidates = (
            self._live(transmarks) | self._live(self.sitemarks(site_id))
            if self.eager_rule else set()
        )
        for mark in candidates:
            # Sites of T_j where the mark can *never* appear (the marked
            # transaction did not execute there): only a UDUM clearing can
            # reconcile those, so wait for it here rather than executing a
            # doomed subtransaction.  Sites inside the marked transaction's
            # own execution set will be marked as its roll-backs and
            # compensations complete — proceeding is fine, the vote-time
            # validation will find the marks in place.
            mark_sites = self.directory.exec_sites.get(mark, set())
            if not txn_sites <= mark_sites:
                doomed.add(mark)
        if not missing and not doomed:
            return CheckResult(ok=True)
        # Always retriable: the marked transaction's remaining roll-backs /
        # compensations will extend its undone set, or rule R3 (UDUM) will
        # clear the mark once witnesses cover its execution sites.  The
        # coordinator's bounded retry budget converts a persistent
        # incompatibility into the abort Section 6.2 describes.
        return self._reject(
            txn_id, site_id, retriable=True,
            reason=(
                f"marks {sorted(missing)} absent at {site_id}; "
                f"marks {sorted(doomed)} not satisfiable at all sites"
            ),
        )

    def merge_marks(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> set[str]:
        return self.sitemarks(site_id)

    def validate_at_vote(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> bool:
        return not self._missing(site_id, transmarks)


class P2Protocol(MarkingProtocol):
    """Protocol P2 (the dual of P1): a transaction's sites must be either
    all locally-committed with respect to ``T_i``, or all undone/unmarked.

    P2 uses the locally-committed marking, which clears deterministically
    when the decision message arrives, so it needs no UDUM machinery — but
    it restricts transactions during the vote-to-decision window instead of
    after aborts.
    """

    name = "P2"

    def __init__(self, directory: MarkingDirectory | None = None) -> None:
        super().__init__(directory=directory or MarkingDirectory())
        #: transactions whose global decision was COMMIT (marks cleared)
        self._committed: set[str] = set()

    def _lc(self, site_id: str) -> set[str]:
        return self.directory.lc_marks(site_id)

    def _missing(self, site_id: str, transmarks: set[str]) -> set[str]:
        """LC marks carried by the transaction and absent at ``site_id``.

        Strict, like P1: a transaction that saw ``T_i`` locally committed
        somewhere must find it locally committed at *every* site it
        touches, unless ``T_i``'s global decision was COMMIT (the marks
        cleared benignly everywhere).
        """
        here = self._lc(site_id)
        return {
            m for m in transmarks
            if m not in self._committed and m not in here
        }

    def check_spawn(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> CheckResult:
        missing = self._missing(site_id, transmarks)
        if not missing:
            return CheckResult(ok=True)
        # Retriable only while every missing mark can still appear here:
        # the marked transaction executed at this site and has not been
        # rolled back here (a site undone with respect to it will never be
        # locally committed with respect to it again).
        retriable = all(
            site_id in self.directory.exec_sites.get(m, set())
            and m not in self.sitemarks(site_id)
            for m in missing
        )
        return self._reject(
            txn_id, site_id, retriable=retriable,
            reason=f"LC marks {sorted(missing)} absent at {site_id}",
        )

    def merge_marks(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> set[str]:
        return self._lc(site_id)

    def validate_at_vote(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> bool:
        return not self._missing(site_id, transmarks)

    def on_decision_commit(self, txn_id: str, site_id: str) -> None:
        super().on_decision_commit(txn_id, site_id)
        self._committed.add(txn_id)


class SimpleProtocol(MarkingProtocol):
    """The "very simple protocol" of Section 6.2's closing remark: all of a
    transaction's sites must be undone with respect to exactly the same
    transactions, and locally-committed with respect to none.

    Maximally simple, minimally concurrent — the CLAIM-P1CONC experiment
    quantifies the trade-off against P1/P2.
    """

    name = "SIMPLE"

    def __init__(self, directory: MarkingDirectory | None = None) -> None:
        super().__init__(directory=directory or MarkingDirectory())
        #: transactions that have joined at least one site (whose undone-set
        #: baseline is therefore fixed)
        self._joined: set[str] = set()

    def check_spawn(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> CheckResult:
        if self.directory.lc_marks(site_id):
            return self._reject(
                txn_id, site_id, retriable=True,
                reason=f"{site_id} is locally-committed wrt some transaction",
            )
        here = self.sitemarks(site_id)
        if txn_id in self._joined and self._live(transmarks) != self._live(here):
            return self._reject(
                txn_id, site_id, retriable=True,
                reason=f"undone sets differ at {site_id}",
            )
        return CheckResult(ok=True)

    def merge_marks(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> set[str]:
        self._joined.add(txn_id)
        return self.sitemarks(site_id)

    def validate_at_vote(
        self, txn_id: str, site_id: str, transmarks: set[str]
    ) -> bool:
        if self.directory.lc_marks(site_id):
            return False
        return self._live(transmarks) == self._live(self.sitemarks(site_id))
