"""The paper's core contribution: site marking and protocols P1/P2/SIMPLE.

* :mod:`repro.core.marking` — the per-(site, transaction) marking state
  machine of Figure 2;
* :mod:`repro.core.marks` — ``sitemarks``/``transmarks`` sets and the
  UDUM1 bookkeeping (execution sites, witnesses);
* :mod:`repro.core.protocols` — the enforcement protocols P1 (rules R1-R3),
  its dual P2, and the stricter SIMPLE variant, all behind one interface
  consumed by the commit layer.

The O2PC commit protocol itself lives in :mod:`repro.commit.o2pc`; these
protocols complement it by preventing regular cycles (Section 6).
"""

from repro.core.marking import Marking, MarkingEvent, MarkingStateMachine
from repro.core.marks import MarkingDirectory
from repro.core.protocols import (
    CheckResult,
    MarkingProtocol,
    NoProtocol,
    P1Protocol,
    P2Protocol,
    SagaMode,
    SimpleProtocol,
)

__all__ = [
    "CheckResult",
    "Marking",
    "MarkingDirectory",
    "MarkingEvent",
    "MarkingProtocol",
    "MarkingStateMachine",
    "NoProtocol",
    "P1Protocol",
    "P2Protocol",
    "SagaMode",
    "SimpleProtocol",
]
