"""The marking state machine of Figure 2.

With respect to a specific global transaction ``T_i``, a site is *unmarked*,
*locally-committed*, or *undone*.  The transitions (all triggered by local
events or by messages already part of 2PC — no extra messages):

=====================  ==================================  ==================
from                   trigger                             to
=====================  ==================================  ==================
unmarked               site votes to commit ``T_i``        locally-committed
unmarked               site votes to abort ``T_i``         undone
locally-committed      decision message: COMMIT            unmarked
locally-committed      decision message: ABORT             undone
undone                 UDUM condition detected             unmarked
=====================  ==================================  ==================

Any other transition is illegal and raises
:class:`~repro.errors.ProtocolViolation` — the FIG2 tests and benchmark
exercise the full matrix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProtocolViolation


class Marking(enum.Enum):
    """Marking of a site with respect to one global transaction."""

    UNMARKED = "unmarked"
    LOCALLY_COMMITTED = "locally-committed"
    UNDONE = "undone"


class MarkingEvent(enum.Enum):
    """Triggers of marking transitions (Figure 2 edge labels)."""

    VOTE_COMMIT = "vote-commit"
    VOTE_ABORT = "vote-abort"
    DECISION_COMMIT = "decision-commit"
    DECISION_ABORT = "decision-abort"
    UDUM = "udum"


#: the legal transition relation of Figure 2
TRANSITIONS: dict[tuple[Marking, MarkingEvent], Marking] = {
    (Marking.UNMARKED, MarkingEvent.VOTE_COMMIT): Marking.LOCALLY_COMMITTED,
    (Marking.UNMARKED, MarkingEvent.VOTE_ABORT): Marking.UNDONE,
    (Marking.LOCALLY_COMMITTED, MarkingEvent.DECISION_COMMIT): Marking.UNMARKED,
    (Marking.LOCALLY_COMMITTED, MarkingEvent.DECISION_ABORT): Marking.UNDONE,
    (Marking.UNDONE, MarkingEvent.UDUM): Marking.UNMARKED,
}


@dataclass
class MarkingStateMachine:
    """Markings of one site with respect to every global transaction.

    The default state for an unseen transaction is UNMARKED (the paper's
    initial state), so the machine needs no registration step.
    """

    site_id: str
    _states: dict[str, Marking] = field(default_factory=dict)
    #: audit log of transitions: (time-ordering index implied by position)
    transitions: list[tuple[str, Marking, MarkingEvent, Marking]] = field(
        default_factory=list
    )

    def state(self, txn_id: str) -> Marking:
        """Current marking with respect to ``txn_id``."""
        return self._states.get(txn_id, Marking.UNMARKED)

    def fire(self, txn_id: str, event: MarkingEvent) -> Marking:
        """Apply a transition; returns the new marking.

        Raises :class:`ProtocolViolation` for transitions not in Figure 2.
        """
        current = self.state(txn_id)
        try:
            new = TRANSITIONS[(current, event)]
        except KeyError:
            raise ProtocolViolation(
                f"site {self.site_id}: illegal marking transition "
                f"{current.value} --{event.value}--> ? (txn {txn_id})"
            ) from None
        if new is Marking.UNMARKED:
            self._states.pop(txn_id, None)
        else:
            self._states[txn_id] = new
        self.transitions.append((txn_id, current, event, new))
        return new

    def restore(self, txn_id: str, marking: Marking) -> None:
        """Re-seed a marking re-derived from durable state after a crash.

        Crash recovery re-establishes markings from the WAL's transaction
        classification rather than by re-firing Figure 2 events, so this
        bypasses the transition relation and leaves no audit entry.  A
        no-op when the machine already holds that marking (the simulator's
        directory survives a modeled crash; a real daemon's does not).
        """
        if self.state(txn_id) is marking:
            return
        if marking is Marking.UNMARKED:
            self._states.pop(txn_id, None)
        else:
            self._states[txn_id] = marking

    def undone_set(self) -> set[str]:
        """Transactions this site is undone with respect to (sitemarks)."""
        return {
            t for t, m in self._states.items() if m is Marking.UNDONE
        }

    def locally_committed_set(self) -> set[str]:
        """Transactions this site is locally-committed with respect to."""
        return {
            t for t, m in self._states.items()
            if m is Marking.LOCALLY_COMMITTED
        }
