"""Local and global serialization graphs.

A local :class:`SG` is the serialization graph of one site's history: nodes
are global transactions, compensating transactions, and *committed* local
transactions; there is an edge ``A → B`` when an operation of ``A`` precedes
and conflicts with an operation of ``B`` (Section 5).

A :class:`GlobalSG` is the union of local SGs:
:math:`SG_{global} = (\\bigcup V_a, \\bigcup E_a)`.  It keeps the local SGs
accessible because the paper's machinery (local paths, minimal
representations, the predicates A1–A4) quantifies over individual sites.

SGs can also be built directly (``add_edge``) to encode the paper's figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import ids
from repro.errors import HistoryError
from repro.sg.conflicts import conflicts
from repro.sg.history import GlobalHistory, SiteHistory


class TxnKind(enum.Enum):
    """Population a transaction id belongs to."""

    GLOBAL = "global"
    LOCAL = "local"
    COMPENSATING = "compensating"


def classify(txn_id: str) -> TxnKind:
    """Classify a transaction id by the library's naming convention.

    ``CT*`` ids are compensating, ``L*`` ids are local, everything else is a
    regular global transaction.
    """
    if ids.is_compensation_id(txn_id):
        return TxnKind.COMPENSATING
    if txn_id.startswith(ids.LOCAL_PREFIX):
        return TxnKind.LOCAL
    return TxnKind.GLOBAL


@dataclass
class SG:
    """The serialization graph of one site."""

    site_id: str
    nodes: set[str] = field(default_factory=set)
    _adj: dict[str, set[str]] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_history(cls, history: SiteHistory) -> "SG":
        """Build the local SG of a site history.

        Node set: transactions with operations here that were *exposed* at
        this site — committed or locally-committed transactions, still-active
        transactions, and compensating transactions.  Operations of
        transactions rolled back at this site are excluded: under strict 2PL
        the roll-back completes before any lock is released, so nothing here
        was ever exposed (this covers aborted local transactions and
        subtransactions undone at a NO-voting site alike).  The exposure the
        paper's theory accounts for — updates of a *locally-committed*
        transaction later compensated-for — is exactly what remains: such a
        transaction is in the committed set of its site, and its roll-back
        at other sites appears only through the degenerate ``CT_i``'s
        restoring writes.

        The edge set is read from the history's incremental
        :class:`~repro.sg.index.ConflictIndex` — O(edges) instead of the
        O(n²) pairwise rescan, which survives as
        :meth:`from_history_scan` for the ``--paranoid`` cross-check.
        """
        from repro.core.marks import MARKS_KEY

        sg = cls(site_id=history.site_id)
        included = cls._included_nodes(history)
        for txn_id in included:
            sg.add_node(txn_id)
        # Marking-set accesses are protocol bookkeeping, not data (see
        # from_history_scan): edges induced only by MARKS_KEY are skipped.
        for (src, dst), keys in history.index.edges():
            if (
                src in included
                and dst in included
                and any(key != MARKS_KEY for key in keys)
            ):
                sg.add_edge(src, dst)
        return sg

    @classmethod
    def from_history_scan(cls, history: SiteHistory) -> "SG":
        """Reference builder: the original O(n²) pairwise conflict scan.

        Kept as the oracle for :func:`verify_conflict_index` (the checker's
        ``--paranoid`` flag) and the property tests; produces the same graph
        as :meth:`from_history` by construction.
        """
        from repro.core.marks import MARKS_KEY

        sg = cls(site_id=history.site_id)
        included = cls._included_nodes(history)
        for txn_id in included:
            sg.add_node(txn_id)
        # Marking-set accesses are protocol bookkeeping, not data: their
        # conflicts order transactions against compensations only under a
        # full 2PL discipline on the marking sets themselves (which the
        # paper's Section 6.2 remark shows to be deadlock-prone and which
        # the practical compromise abandons).  Recorded without that
        # discipline they inject non-2PL-consistent edges and fabricate
        # cycles, so the serialization graph is built over data items only.
        ops = [
            op for op in history.ops
            if op.txn_id in included and op.key != MARKS_KEY
        ]
        for i, earlier in enumerate(ops):
            for later in ops[i + 1:]:
                if conflicts(earlier, later):
                    sg.add_edge(earlier.txn_id, later.txn_id)
        return sg

    @staticmethod
    def _included_nodes(history: SiteHistory) -> set[str]:
        """Transactions whose operations were exposed at this site."""
        included: set[str] = set()
        for txn_id in history.transactions():
            if txn_id in history.aborted:
                continue
            kind = classify(txn_id)
            if kind is TxnKind.LOCAL and txn_id not in history.committed:
                continue
            included.add(txn_id)
        return included

    def add_node(self, node: str) -> None:
        """Add a node (idempotent)."""
        self.nodes.add(node)
        self._adj.setdefault(node, set())

    def add_edge(self, src: str, dst: str) -> None:
        """Add a directed edge ``src → dst`` (adds missing nodes)."""
        if src == dst:
            raise ValueError(f"self-loop {src} -> {dst} is not a conflict edge")
        self.add_node(src)
        self.add_node(dst)
        self._adj[src].add(dst)

    def add_path(self, *nodes: str) -> None:
        """Add the chain of edges ``nodes[0] → nodes[1] → ...`` (figure helper)."""
        for src, dst in zip(nodes, nodes[1:]):
            self.add_edge(src, dst)

    # -- queries -----------------------------------------------------------------

    def has_node(self, node: str) -> bool:
        """True if ``node`` is in the graph."""
        return node in self.nodes

    def has_edge(self, src: str, dst: str) -> bool:
        """True if the direct edge ``src → dst`` exists."""
        return dst in self._adj.get(src, ())

    def successors(self, node: str) -> set[str]:
        """Direct successors of ``node``."""
        return set(self._adj.get(node, ()))

    def edges(self) -> list[tuple[str, str]]:
        """All edges, sorted (deterministic)."""
        return sorted(
            (src, dst) for src, targets in self._adj.items() for dst in targets
        )

    def reachable(
        self, src: str, dst: str, avoid: str | None = None
    ) -> bool:
        """True if a (non-empty) local path ``src → dst`` exists.

        ``avoid`` excludes an intermediate node: "a path without having X on
        that path".  The endpoints themselves are never excluded.
        """
        if src not in self.nodes or dst not in self.nodes:
            return False
        stack = [src]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            for succ in self._adj.get(node, ()):
                if succ == dst:
                    return True
                if succ in seen or succ == avoid:
                    continue
                seen.add(succ)
                stack.append(succ)
        return False

    def connected_either_direction(self, a: str, b: str) -> bool:
        """True if a local path exists between ``a`` and ``b`` in either
        direction (the paper's "path (in either direction)")."""
        return self.reachable(a, b) or self.reachable(b, a)

    def find_local_cycle(self) -> list[str] | None:
        """Return a cycle within this local SG (first == last), or None."""
        state: dict[str, int] = {}
        path: list[str] = []

        def visit(node: str) -> list[str] | None:
            state[node] = 1
            path.append(node)
            for succ in sorted(self._adj.get(node, ())):
                mark = state.get(succ, 0)
                if mark == 1:
                    return path[path.index(succ):] + [succ]
                if mark == 0:
                    found = visit(succ)
                    if found:
                        return found
            path.pop()
            state[node] = 2
            return None

        for node in sorted(self.nodes):
            if state.get(node, 0) == 0:
                found = visit(node)
                if found:
                    return found
        return None

    def __repr__(self) -> str:
        return (
            f"<SG {self.site_id} nodes={len(self.nodes)} "
            f"edges={len(self.edges())}>"
        )


@dataclass
class GlobalSG:
    """The union of local SGs for one run."""

    locals: dict[str, SG] = field(default_factory=dict)

    @classmethod
    def from_history(cls, history: GlobalHistory) -> "GlobalSG":
        """Build local SGs for every site of a global history."""
        return cls(
            locals={
                site_id: SG.from_history(site_history)
                for site_id, site_history in history.sites.items()
            }
        )

    @classmethod
    def from_history_scan(cls, history: GlobalHistory) -> "GlobalSG":
        """Reference builder over the pairwise scan (see ``SG.from_history_scan``)."""
        return cls(
            locals={
                site_id: SG.from_history_scan(site_history)
                for site_id, site_history in history.sites.items()
            }
        )

    def site(self, site_id: str) -> SG:
        """Get or create the local SG of ``site_id`` (for direct building)."""
        if site_id not in self.locals:
            self.locals[site_id] = SG(site_id=site_id)
        return self.locals[site_id]

    @property
    def nodes(self) -> set[str]:
        """Union of all local node sets."""
        result: set[str] = set()
        for sg in self.locals.values():
            result |= sg.nodes
        return result

    def union_edges(self) -> set[tuple[str, str]]:
        """Union of all local edge sets."""
        result: set[tuple[str, str]] = set()
        for sg in self.locals.values():
            result.update(sg.edges())
        return result

    def sites_with(self, *nodes: str) -> list[str]:
        """Sites whose SG contains all of ``nodes``, sorted."""
        return sorted(
            site_id
            for site_id, sg in self.locals.items()
            if all(sg.has_node(n) for n in nodes)
        )

    def nodes_of_kind(self, kind: TxnKind) -> set[str]:
        """All nodes of one population."""
        return {n for n in self.nodes if classify(n) is kind}

    def __repr__(self) -> str:
        return f"<GlobalSG sites={sorted(self.locals)}>"


def verify_conflict_index(history: GlobalHistory) -> None:
    """Cross-check the incremental index against the pairwise scan.

    Raises :class:`~repro.errors.HistoryError` when the index-backed SG of
    any site differs from the O(n²) rebuild.  This is the ``repro check
    --paranoid`` oracle: it converts a hypothetical index-maintenance bug
    into a loud, replayable counterexample instead of a silently wrong
    serialization graph.
    """
    for site_id, site_history in sorted(history.sites.items()):
        fast = SG.from_history(site_history)
        slow = SG.from_history_scan(site_history)
        if fast.nodes != slow.nodes or fast.edges() != slow.edges():
            raise HistoryError(
                f"conflict index diverged from pairwise scan at {site_id}: "
                f"index nodes={sorted(fast.nodes)} edges={fast.edges()} vs "
                f"scan nodes={sorted(slow.nodes)} edges={slow.edges()}"
            )
