"""Serialization-order witnesses.

For a *correct* history, the paper's criterion allows cycles only among
compensations (and local transactions); everything else embeds into a total
order.  :func:`serialization_order` produces such a witness: a topological
order of the global SG's condensation in which every non-trivial strongly
connected component consists of allowed nodes only — constructive evidence
that the history is equivalent to a serial execution up to the
compensation-independence allowance.

This is the library-level answer to "so *was* my execution serializable?":
``serialization_order(gsg)`` either returns the order or raises
:class:`~repro.errors.CorrectnessViolation` with the offending cycle.
"""

from __future__ import annotations

from repro.errors import CorrectnessViolation
from repro.sg.cycles import find_local_cycle, find_regular_cycle
from repro.sg.graph import GlobalSG, TxnKind, classify
from repro.sg.paths import SegmentGraph, strongly_connected_components


def serialization_order(
    gsg: GlobalSG, regular_nodes: set[str] | None = None
) -> list[list[str]]:
    """A serialization witness for a correct history.

    Returns the condensation of the union graph in topological order: a
    list of groups, each group being one strongly connected component
    (singletons for ordinary transactions; larger groups may contain only
    compensating transactions and local transactions — the cycles the
    criterion explicitly allows).  Raises
    :class:`~repro.errors.CorrectnessViolation` if the history is not
    correct (local cycle, or regular cycle through ``regular_nodes``).
    """
    local = find_local_cycle(gsg)
    if local is not None:
        site_id, cycle = local
        raise CorrectnessViolation(
            f"local cycle at {site_id}: {' -> '.join(cycle)}", cycle=cycle
        )
    cycle = find_regular_cycle(gsg, regular_nodes)
    if cycle is not None:
        raise CorrectnessViolation(
            f"regular cycle: {' -> '.join(cycle)}", cycle=cycle
        )

    graph = SegmentGraph(gsg)
    # Tarjan emits components in reverse topological order.
    components = strongly_connected_components(
        sorted(graph.nodes), graph.successors
    )
    ordered = [sorted(component) for component in reversed(components)]

    # Sanity: a non-trivial component must contain no *effective* regular
    # transaction (it may contain literal ones when the caller passed a
    # narrowed regular set).
    for group in ordered:
        if len(group) > 1:
            offenders = [
                node for node in group
                if classify(node) is TxnKind.GLOBAL
                and (regular_nodes is None or node in regular_nodes)
            ]
            if offenders:  # pragma: no cover - guarded by cycle checks
                raise CorrectnessViolation(
                    f"regular transactions {offenders} inside an SCC",
                    cycle=group,
                )
    return ordered


def is_serializable(gsg: GlobalSG) -> bool:
    """Plain serializability: the union graph is fully acyclic.

    The paper's criterion reduces to this when no global transaction
    aborts (no compensations exist).
    """
    graph = SegmentGraph(gsg)
    components = strongly_connected_components(
        sorted(graph.nodes), graph.successors
    )
    return all(len(component) == 1 for component in components)
