"""Atomicity of compensation (Theorem 2).

A transaction must never observe *both* uncompensated-for updates of ``T_i``
and updates of ``CT_i`` (Section 4).  Theorem 2: if the history is correct
(no regular cycles) and ``CT_i`` writes at least all data items written by
``T_i``, no transaction reads from both ``T_i`` and ``CT_i``.

The checker works on the reads-from relation of a
:class:`~repro.sg.history.GlobalHistory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ids import compensation_id, is_compensation_id
from repro.sg.history import GlobalHistory


@dataclass
class AtomicityReport:
    """Result of an atomicity-of-compensation check."""

    #: (reader, forward txn) pairs where the reader read from both T_i and CT_i
    violations: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations


def check_atomicity_of_compensation(history: GlobalHistory) -> AtomicityReport:
    """Find transactions that read from both a ``T_i`` and its ``CT_i``.

    Marking-set accesses are bookkeeping, not data: a validation read of
    ``sitemarks.k`` "reading from" a compensation's marking write is the
    intended serialization mechanism, not an exposure of compensated data,
    so the reserved marking-set item is excluded.
    """
    from repro.core.marks import MARKS_KEY

    read_from: dict[str, set[str]] = {}
    for reader, writer, key, _site in history.reads_from():
        if key == MARKS_KEY:
            continue
        read_from.setdefault(reader, set()).add(writer)

    report = AtomicityReport()
    for reader, writers in sorted(read_from.items()):
        for writer in sorted(writers):
            if is_compensation_id(writer):
                continue
            if compensation_id(writer) in writers:
                report.violations.append((reader, writer))
    return report


def compensation_writes_cover(
    history: GlobalHistory, txn_id: str
) -> bool:
    """Theorem 2's precondition: ``CT_i`` writes ⊇ ``T_i``'s writes.

    Checked per site where ``T_i`` wrote anything.
    """
    from repro.sg.conflicts import OpKind

    cti = compensation_id(txn_id)
    for site_history in history.sites.values():
        t_writes = {
            op.key for op in site_history.ops
            if op.txn_id == txn_id and op.kind is OpKind.WRITE
        }
        if not t_writes:
            continue
        ct_writes = {
            op.key for op in site_history.ops
            if op.txn_id == cti and op.kind is OpKind.WRITE
        }
        if not t_writes <= ct_writes:
            return False
    return True
