"""Stratification machinery: ``active wrt``, A1–A4, S1/S2, C1/C2.

These are the paper's Section 5 predicates, implemented literally over a
:class:`~repro.sg.graph.GlobalSG`:

* :func:`active_wrt` — ``T_i`` is *active with respect to* ``T_j`` iff some
  local SG contains both, ``T_j → T_i`` is not in it, but a local path (in
  either direction) connects ``CT_i`` and ``T_j`` there.
* Predicates A1–A4 quantify over local SGs containing ``T_j`` (A1, A2) or
  containing both ``T_j`` and ``T_i`` (A3, A4).
* Stratification properties ``S1 = ∀ active pairs: A1 ∨ A4`` and
  ``S2 = ∀ active pairs: A2 ∨ A3`` (Theorem 1: either one implies no regular
  cycles).
* Cycle conditions C1/C2 (Lemma 2: a regular cycle implies both; Lemma 3:
  C1 ⇒ ¬S1 and C2 ⇒ ¬S2).

"Without having ``T_i`` on that path" is interpreted as the existence of a
local path avoiding the node ``T_i`` (endpoints excluded from avoidance).
"""

from __future__ import annotations

from itertools import permutations

from repro.ids import compensation_id
from repro.sg.graph import GlobalSG, SG, TxnKind


def _pairs(gsg: GlobalSG) -> list[tuple[str, str]]:
    """All ordered pairs of distinct regular global transactions."""
    regulars = sorted(gsg.nodes_of_kind(TxnKind.GLOBAL))
    return list(permutations(regulars, 2))


def active_wrt(gsg: GlobalSG, ti: str, tj: str) -> bool:
    """True when ``ti`` is active with respect to ``tj``.

    Definition (Section 5): there exists an ``SG_a`` where both transactions
    appear, ``T_j → T_i`` is *not* in ``SG_a``, but there is a path (in
    either direction) in ``SG_a`` between ``CT_i`` and ``T_j``.
    """
    cti = compensation_id(ti)
    for site_id in gsg.sites_with(ti, tj):
        sg = gsg.locals[site_id]
        if sg.reachable(tj, ti):
            continue
        if sg.has_node(cti) and sg.connected_either_direction(cti, tj):
            return True
    return False


# ---------------------------------------------------------------------------
# Predicates A1-A4
# ---------------------------------------------------------------------------


def _sites_with_tj(gsg: GlobalSG, tj: str) -> list[SG]:
    return [gsg.locals[s] for s in gsg.sites_with(tj)]


def _sites_with_both(gsg: GlobalSG, ti: str, tj: str) -> list[SG]:
    return [gsg.locals[s] for s in gsg.sites_with(ti, tj)]


def predicate_a1(gsg: GlobalSG, ti: str, tj: str) -> bool:
    """A1: at any ``SG_a`` where ``T_j`` appears, ``T_i → CT_i → T_j``."""
    cti = compensation_id(ti)
    for sg in _sites_with_tj(gsg, tj):
        if not (sg.reachable(ti, cti) and sg.reachable(cti, tj)):
            return False
    return True


def predicate_a2(gsg: GlobalSG, ti: str, tj: str) -> bool:
    """A2: at any ``SG_a`` where ``T_j`` appears, ``T_j → CT_i`` without
    having ``T_i`` on that path."""
    cti = compensation_id(ti)
    for sg in _sites_with_tj(gsg, tj):
        if not sg.reachable(tj, cti, avoid=ti):
            return False
    return True


def predicate_a3(gsg: GlobalSG, ti: str, tj: str) -> bool:
    """A3: at any ``SG_a`` with both ``T_j`` and ``T_i``: a path between
    ``T_j`` and either ``T_i`` or ``CT_i`` implies ``T_i → CT_i → T_j``
    is in ``SG_a``."""
    cti = compensation_id(ti)
    for sg in _sites_with_both(gsg, ti, tj):
        connected = sg.connected_either_direction(tj, ti) or (
            sg.has_node(cti) and sg.connected_either_direction(tj, cti)
        )
        if connected and not (
            sg.reachable(ti, cti) and sg.reachable(cti, tj)
        ):
            return False
    return True


def predicate_a4(gsg: GlobalSG, ti: str, tj: str) -> bool:
    """A4: at any ``SG_a`` with both ``T_j`` and ``T_i``: a path between
    ``T_j`` and ``CT_i`` must be the path ``T_j → CT_i`` without ``T_i``
    on it."""
    cti = compensation_id(ti)
    for sg in _sites_with_both(gsg, ti, tj):
        if not sg.has_node(cti):
            continue
        if sg.connected_either_direction(tj, cti):
            if sg.reachable(cti, tj):
                return False
            if not sg.reachable(tj, cti, avoid=ti):
                return False
    return True


# ---------------------------------------------------------------------------
# Stratification properties S1 / S2
# ---------------------------------------------------------------------------


def stratification_s1(gsg: GlobalSG) -> bool:
    """S1: for every active pair ``(T_i, T_j)``: A1 ∨ A4."""
    return all(
        predicate_a1(gsg, ti, tj) or predicate_a4(gsg, ti, tj)
        for ti, tj in _pairs(gsg)
        if active_wrt(gsg, ti, tj)
    )


def stratification_s2(gsg: GlobalSG) -> bool:
    """S2: for every active pair ``(T_i, T_j)``: A2 ∨ A3."""
    return all(
        predicate_a2(gsg, ti, tj) or predicate_a3(gsg, ti, tj)
        for ti, tj in _pairs(gsg)
        if active_wrt(gsg, ti, tj)
    )


# ---------------------------------------------------------------------------
# Cycle conditions C1 / C2 (Lemma 2)
# ---------------------------------------------------------------------------


def cycle_condition_c1(gsg: GlobalSG) -> bool:
    """C1: ∃ distinct ``T_i``, ``T_j`` with ``CT_i → T_j`` at some ``SG_a``
    and, at some other ``SG_b`` where ``T_j`` appears, either
    ``T_j → CT_i`` or no local path between ``T_i`` and ``T_j``."""
    for ti, tj in _pairs(gsg):
        cti = compensation_id(ti)
        sites_a = [
            s for s in gsg.sites_with(tj)
            if gsg.locals[s].has_node(cti)
            and gsg.locals[s].reachable(cti, tj)
        ]
        if not sites_a:
            continue
        for site_b in gsg.sites_with(tj):
            if site_b in sites_a:
                continue
            sg_b = gsg.locals[site_b]
            if sg_b.has_node(cti) and sg_b.reachable(tj, cti):
                return True
            if not sg_b.has_node(ti) or not sg_b.connected_either_direction(
                ti, tj
            ):
                return True
    return False


def cycle_condition_c2(gsg: GlobalSG) -> bool:
    """C2: ∃ distinct ``T_i``, ``T_j`` with ``T_j → CT_i`` (avoiding
    ``T_i``) at some ``SG_a`` and, at some other ``SG_b`` where ``T_j``
    appears, either ``CT_i → T_j`` or no local path between ``T_i`` and
    ``T_j``."""
    for ti, tj in _pairs(gsg):
        cti = compensation_id(ti)
        sites_a = [
            s for s in gsg.sites_with(tj)
            if gsg.locals[s].has_node(cti)
            and gsg.locals[s].reachable(tj, cti, avoid=ti)
        ]
        if not sites_a:
            continue
        for site_b in gsg.sites_with(tj):
            if site_b in sites_a:
                continue
            sg_b = gsg.locals[site_b]
            if sg_b.has_node(cti) and sg_b.reachable(cti, tj):
                return True
            if not sg_b.has_node(ti) or not sg_b.connected_either_direction(
                ti, tj
            ):
                return True
    return False
