"""Serialization-graph theory toolkit (Section 5 of the paper).

This subpackage implements the paper's formal machinery independently of the
simulator, so the correctness criterion can be checked both on hand-built
histories (the paper's figures and example) and on histories recorded from
simulation runs:

* :mod:`repro.sg.conflicts` — operations and the conflict relation;
* :mod:`repro.sg.history` — per-site histories and the reads-from relation;
* :mod:`repro.sg.graph` — local and global serialization graphs;
* :mod:`repro.sg.paths` — global paths, representations, *minimal*
  representations, and the "includes" relation (Example 1);
* :mod:`repro.sg.cycles` — regular-cycle detection: the correctness criterion;
* :mod:`repro.sg.stratification` — ``active wrt``, predicates A1–A4,
  stratification properties S1/S2, and cycle conditions C1/C2 (Lemmas 2–3);
* :mod:`repro.sg.atomicity` — atomicity of compensation (Theorem 2).
"""

from repro.sg.atomicity import check_atomicity_of_compensation
from repro.sg.conflicts import OpKind, Operation, conflicts
from repro.sg.cycles import find_regular_cycle, is_correct
from repro.sg.explain import explain_cycle, render_explanation
from repro.sg.graph import (
    SG,
    GlobalSG,
    TxnKind,
    classify,
    verify_conflict_index,
)
from repro.sg.history import GlobalHistory, SiteHistory
from repro.sg.index import ConflictIndex
from repro.sg.order import is_serializable, serialization_order
from repro.sg.serialize import dump_history, load_history
from repro.sg.paths import (
    global_path_exists,
    minimal_representations,
    path_includes,
)
from repro.sg.stratification import (
    active_wrt,
    cycle_condition_c1,
    cycle_condition_c2,
    predicate_a1,
    predicate_a2,
    predicate_a3,
    predicate_a4,
    stratification_s1,
    stratification_s2,
)

__all__ = [
    "ConflictIndex",
    "GlobalHistory",
    "GlobalSG",
    "OpKind",
    "Operation",
    "SG",
    "SiteHistory",
    "TxnKind",
    "active_wrt",
    "check_atomicity_of_compensation",
    "classify",
    "conflicts",
    "dump_history",
    "explain_cycle",
    "cycle_condition_c1",
    "cycle_condition_c2",
    "find_regular_cycle",
    "global_path_exists",
    "is_serializable",
    "load_history",
    "render_explanation",
    "is_correct",
    "minimal_representations",
    "path_includes",
    "serialization_order",
    "predicate_a1",
    "predicate_a2",
    "predicate_a3",
    "predicate_a4",
    "stratification_s1",
    "stratification_s2",
    "verify_conflict_index",
]
