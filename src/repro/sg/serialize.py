"""Saving and loading histories as JSON.

A recorded :class:`~repro.sg.history.GlobalHistory` is the complete input
to the correctness machinery, so persisting one lets a violation found in a
long run be re-analyzed (or attached to a bug report) without re-running
the simulation.  The format is a plain JSON object:

.. code-block:: json

    {
      "sites": {
        "S1": {
          "ops": [["T1", "w", "k0"], ["T2", "r", "k0"]],
          "committed": ["T1", "T2"],
          "aborted": []
        }
      }
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import HistoryError
from repro.sg.conflicts import OpKind
from repro.sg.history import GlobalHistory, SiteHistory


def history_to_dict(history: GlobalHistory) -> dict[str, Any]:
    """Plain-dict form of a global history (JSON-serializable)."""
    return {
        "sites": {
            site_id: {
                "ops": [
                    [op.txn_id, op.kind.value, op.key]
                    for op in site.ops
                ],
                "committed": sorted(site.committed),
                "aborted": sorted(site.aborted),
            }
            for site_id, site in sorted(history.sites.items())
        }
    }


def history_from_dict(data: dict[str, Any]) -> GlobalHistory:
    """Rebuild a global history from :func:`history_to_dict` output."""
    try:
        sites_data = data["sites"]
    except (KeyError, TypeError):
        raise HistoryError("missing 'sites' object") from None
    history = GlobalHistory()
    for site_id, site_data in sites_data.items():
        site = SiteHistory(site_id)
        for entry in site_data.get("ops", []):
            try:
                txn_id, kind, key = entry
            except (TypeError, ValueError):
                raise HistoryError(f"malformed op entry {entry!r}") from None
            if kind == OpKind.READ.value:
                site.read(txn_id, key)
            elif kind == OpKind.WRITE.value:
                site.write(txn_id, key)
            else:
                raise HistoryError(f"unknown op kind {kind!r}")
        for txn_id in site_data.get("committed", []):
            site.commit(txn_id)
        for txn_id in site_data.get("aborted", []):
            site.abort(txn_id)
        history.sites[site_id] = site
    return history


def dump_history(history: GlobalHistory, path: str) -> None:
    """Write a history to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history_to_dict(history), handle, indent=1)


def load_history(path: str) -> GlobalHistory:
    """Read a history written by :func:`dump_history`."""
    with open(path, encoding="utf-8") as handle:
        return history_from_dict(json.load(handle))
