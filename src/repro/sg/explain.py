"""Explaining cycles: from a verdict back to the operations that caused it.

``find_regular_cycle`` returns boundary nodes; :func:`explain_cycle` turns
each boundary segment into evidence a human can act on — the site whose
local SG realizes it, one concrete local path, and for each hop of that
path the earliest conflicting operation pair (reader/writer, key, history
positions).  The CLI's ``audit`` command and the correctness tests print
these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sg.conflicts import Operation, conflicts
from repro.sg.graph import GlobalSG
from repro.sg.history import GlobalHistory
from repro.sg.paths import SegmentGraph


@dataclass
class ConflictEvidence:
    """The operation pair realizing one SG edge."""

    src_op: Operation
    dst_op: Operation

    def __repr__(self) -> str:
        return f"{self.src_op!r} < {self.dst_op!r}"


@dataclass
class SegmentExplanation:
    """One segment of a cycle: a local path plus per-edge evidence."""

    src: str
    dst: str
    site: str
    node_path: list[str]
    evidence: list[ConflictEvidence] = field(default_factory=list)

    def render(self) -> str:
        """One-line human rendering."""
        path = " -> ".join(self.node_path)
        keys = ",".join(
            sorted({e.src_op.key for e in self.evidence})
        )
        return f"{path}  @ {self.site}  (keys: {keys})"


def _local_node_path(gsg: GlobalSG, site: str, src: str, dst: str) -> list[str]:
    """A shortest node path ``src -> dst`` inside one local SG (BFS)."""
    sg = gsg.locals[site]
    parents: dict[str, str] = {}
    frontier = [src]
    seen = {src}
    while frontier:
        nxt = []
        for node in frontier:
            for succ in sorted(sg.successors(node)):
                if succ == dst:
                    path = [dst, node]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                if succ not in seen:
                    seen.add(succ)
                    parents[succ] = node
                    nxt.append(succ)
        frontier = nxt
    raise ValueError(f"no local path {src} -> {dst} at {site}")


def _edge_evidence(
    history: GlobalHistory, site: str, src: str, dst: str
) -> ConflictEvidence | None:
    """The earliest conflicting operation pair behind one local edge."""
    ops = history.sites[site].ops
    for i, earlier in enumerate(ops):
        if earlier.txn_id != src:
            continue
        for later in ops[i + 1:]:
            if later.txn_id == dst and conflicts(earlier, later):
                return ConflictEvidence(earlier, later)
    return None


def explain_cycle(
    gsg: GlobalSG,
    cycle: list[str],
    history: GlobalHistory | None = None,
) -> list[SegmentExplanation]:
    """Explain a boundary-node cycle (as returned by ``find_regular_cycle``).

    Each consecutive boundary pair becomes a :class:`SegmentExplanation`;
    when the originating :class:`GlobalHistory` is supplied, each hop of
    the local path carries the concrete conflicting operation pair.
    """
    graph = SegmentGraph(gsg)
    explanations: list[SegmentExplanation] = []
    for src, dst in zip(cycle, cycle[1:]):
        sites = sorted(graph.sites_for(src, dst))
        if not sites:
            raise ValueError(f"{src} -> {dst} is not a segment of this SG")
        site = sites[0]
        node_path = _local_node_path(gsg, site, src, dst)
        explanation = SegmentExplanation(
            src=src, dst=dst, site=site, node_path=node_path,
        )
        if history is not None and site in history.sites:
            for a, b in zip(node_path, node_path[1:]):
                evidence = _edge_evidence(history, site, a, b)
                if evidence is not None:
                    explanation.evidence.append(evidence)
        explanations.append(explanation)
    return explanations


def render_explanation(explanations: list[SegmentExplanation]) -> str:
    """Multi-line rendering of a full cycle explanation."""
    lines = ["regular cycle, segment by segment:"]
    for explanation in explanations:
        lines.append(f"  {explanation.render()}")
        for evidence in explanation.evidence:
            lines.append(f"      {evidence!r}")
    return "\n".join(lines)
