"""Operations and the conflict relation.

Two operations conflict when they belong to different transactions, access
the same data item, and at least one of them is a write — the standard
definition the paper inherits from [BHG87].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Kind of a database operation."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True, slots=True)
class Operation:
    """One read or write in a site's history.

    ``seq`` is the operation's position in its site's total order; histories
    assign it, so operations are comparable by time-of-occurrence at a site.
    """

    txn_id: str
    kind: OpKind
    key: str
    site: str
    seq: int

    def __repr__(self) -> str:
        return f"{self.kind.value}_{self.txn_id}[{self.key}]@{self.site}#{self.seq}"


def conflicts(a: Operation, b: Operation) -> bool:
    """True when ``a`` and ``b`` conflict.

    Different transactions, same key, at least one write.  Site equality is
    *not* required by the definition (operations at different sites never
    share a key in a partitioned database, and when they do, the local SGs
    are built per site anyway).
    """
    return (
        a.txn_id != b.txn_id
        and a.key == b.key
        and (a.kind is OpKind.WRITE or b.kind is OpKind.WRITE)
    )
