"""Global paths, representations, and minimal representations (Section 5).

A *local path* is a non-empty directed path inside one local SG.  A *global
path* ``A → D`` exists when ``D`` is reachable from ``A`` in the union graph.
A *representation* of a global path lists local paths (segments) that
constitute it in order; each segment is summarized by its end points and the
site it lives in.  A *minimal representation* uses the fewest segments, and a
global path **includes** a node when that node appears (as a segment end
point) on at least one minimal representation — the notion Example 1
illustrates: the global path ``CT1 → CT3`` does *not* include ``T2`` because
the one-segment representation inside ``SG2`` is shorter than the two-segment
one through ``T2``.

The computational core is the *segment graph*: a directed graph on SG nodes
with an edge ``u → v`` (labeled with sites) whenever some local SG has a
local path ``u → v``.  Representations of a global path correspond exactly to
walks in the segment graph, and minimal representations to shortest walks, so
"includes" reduces to the classic "does this node lie on a shortest path"
test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sg.graph import SG, GlobalSG


@dataclass(frozen=True)
class Segment:
    """One local segment of a representation.

    ``sites`` lists every site whose local SG realizes this segment — the
    paper notes representations are not necessarily unique; this collapses
    the site choice.
    """

    src: str
    dst: str
    sites: frozenset[str]

    def __repr__(self) -> str:
        return f"{self.src}->{self.dst}@{{{','.join(sorted(self.sites))}}}"


class SegmentGraph:
    """Per-site transitive closure, unioned with site labels."""

    def __init__(self, gsg: GlobalSG) -> None:
        self._succ: dict[str, set[str]] = {}
        self._labels: dict[tuple[str, str], set[str]] = {}
        for site_id, sg in sorted(gsg.locals.items()):
            closure = _transitive_closure(sg)
            for src, dsts in closure.items():
                for dst in dsts:
                    if src == dst:
                        # A local cycle: excluded here (local histories are
                        # serializable); local-cycle detection is separate.
                        continue
                    self._succ.setdefault(src, set()).add(dst)
                    self._labels.setdefault((src, dst), set()).add(site_id)
        self.nodes: set[str] = set(gsg.nodes)

    def successors(self, node: str) -> set[str]:
        """Nodes reachable from ``node`` by a single segment."""
        return set(self._succ.get(node, ()))

    def has_segment(self, src: str, dst: str) -> bool:
        """True if some local SG has a local path ``src → dst``."""
        return dst in self._succ.get(src, ())

    def sites_for(self, src: str, dst: str) -> frozenset[str]:
        """Sites realizing the segment ``src → dst``."""
        return frozenset(self._labels.get((src, dst), ()))

    def distances_from(self, src: str) -> dict[str, int]:
        """BFS segment-count distances from ``src`` (``src`` itself: 0)."""
        dist = {src: 0}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for succ in self._succ.get(node, ()):
                if succ not in dist:
                    dist[succ] = dist[node] + 1
                    queue.append(succ)
        return dist

    def distances_to(self, dst: str) -> dict[str, int]:
        """BFS segment-count distances *to* ``dst`` (reverse BFS)."""
        reverse: dict[str, set[str]] = {}
        for node, succs in self._succ.items():
            for succ in succs:
                reverse.setdefault(succ, set()).add(node)
        dist = {dst: 0}
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            for pred in reverse.get(node, ()):
                if pred not in dist:
                    dist[pred] = dist[node] + 1
                    queue.append(pred)
        return dist

    def distance(self, src: str, dst: str) -> int | None:
        """Minimal number of segments on a *non-empty* walk ``src → dst``.

        For ``src == dst`` this is the length of the shortest cyclic walk
        through the node (never 0).
        """
        best: int | None = None
        for succ in self._succ.get(src, ()):
            if succ == dst:
                return 1
            rest = self.distances_from(succ).get(dst)
            if rest is not None and (best is None or rest + 1 < best):
                best = rest + 1
        return best


def strongly_connected_components(
    nodes: list[str], successors
) -> list[list[str]]:
    """Iterative Tarjan SCC over an adjacency function.

    Returns components in reverse topological order (Tarjan's property):
    every edge leaving a component points to an earlier-emitted one.
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        # Iterative DFS with explicit frames: (node, iterator over succs).
        work = [(root, iter(sorted(successors(root))))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _transitive_closure(sg: SG) -> dict[str, set[str]]:
    """Per-node reachability via SCC condensation and bitmask unions."""
    nodes = sorted(sg.nodes)
    components = strongly_connected_components(nodes, sg.successors)
    comp_of: dict[str, int] = {}
    for cid, members in enumerate(components):
        for member in members:
            comp_of[member] = cid
    # Bit i of a mask = "component i is reachable".  Components arrive in
    # reverse topological order, so successors' masks are complete first.
    comp_mask: list[int] = [0] * len(components)
    for cid, members in enumerate(components):
        mask = 1 << cid if len(members) > 1 else 0
        for member in members:
            for succ in sg.successors(member):
                scid = comp_of[succ]
                if scid != cid:
                    mask |= comp_mask[scid] | (1 << scid)
        comp_mask[cid] = mask

    closure: dict[str, set[str]] = {}
    comp_members = components
    for node in nodes:
        mask = comp_mask[comp_of[node]]
        reach: set[str] = set()
        cid = 0
        while mask:
            if mask & 1:
                reach.update(comp_members[cid])
            mask >>= 1
            cid += 1
        # Within a nontrivial SCC every member reaches every member,
        # including itself; the component bit above covers that.  For a
        # trivial SCC the node does not reach itself.
        if len(comp_members[comp_of[node]]) > 1:
            reach.update(comp_members[comp_of[node]])
        closure[node] = reach
    return closure


def global_path_exists(gsg: GlobalSG, src: str, dst: str) -> bool:
    """True when the (non-empty) global path ``src → dst`` exists."""
    return SegmentGraph(gsg).distance(src, dst) is not None


def minimal_representations(
    gsg: GlobalSG, src: str, dst: str
) -> list[list[Segment]]:
    """All minimal representations of the global path ``src → dst``.

    Each representation is a list of :class:`Segment`; representations that
    differ only in the site realizing a segment are collapsed (the segment
    carries every realizing site).  ``src == dst`` yields the minimal cyclic
    representations through the node.  Returns ``[]`` when no path exists.
    """
    graph = SegmentGraph(gsg)
    total = graph.distance(src, dst)
    if total is None:
        return []

    dist_to_dst = graph.distances_to(dst)
    results: list[list[Segment]] = []

    def extend(node: str, prefix: list[Segment]) -> None:
        if node == dst and len(prefix) == total:
            results.append(list(prefix))
            return
        for succ in sorted(graph.successors(node)):
            used = len(prefix) + 1
            remaining = dist_to_dst.get(succ)
            if succ == dst:
                if used == total:
                    results.append(
                        prefix + [Segment(node, succ, graph.sites_for(node, succ))]
                    )
                continue
            if remaining is None or used + remaining != total:
                continue
            prefix.append(Segment(node, succ, graph.sites_for(node, succ)))
            extend(succ, prefix)
            prefix.pop()

    extend(src, [])
    return results


def path_includes(gsg: GlobalSG, src: str, dst: str, node: str) -> bool:
    """True when the global path ``src → dst`` *includes* ``node``.

    ``node`` is included when it appears on at least one minimal
    representation, i.e. it is an end point of some segment of a shortest
    segment-graph walk ``src → dst``.  End points are always included (when
    the path exists at all).
    """
    graph = SegmentGraph(gsg)
    total = graph.distance(src, dst)
    if total is None:
        return False
    if node in (src, dst):
        return True
    d1 = graph.distance(src, node)
    d2 = graph.distance(node, dst)
    return d1 is not None and d2 is not None and d1 + d2 == total
