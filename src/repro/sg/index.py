"""Incremental per-key conflict index over one site's history.

The pairwise scan in :meth:`repro.sg.graph.SG.from_history_scan` costs
O(n²) conflict tests per build and is re-run for every oracle invocation —
once per explored schedule in the model checker.  The index maintains the
same information *as operations are recorded*: for every key it keeps the
set of transactions that accessed it (and the subset that wrote it), and
materializes a conflict edge the moment a later operation conflicts with an
earlier one.  Recording one operation costs O(#conflicting predecessors) —
amortized constant for the checker's workloads — and building an SG becomes
a filter over the already-known edge set instead of a quadratic rescan.

Semantics match the pairwise scan *exactly* (including transitive edges
``w1→w2→w3`` plus ``w1→w3``): the property test in
``tests/sg/test_index.py`` asserts index == rebuild on random histories,
and ``repro check --paranoid`` cross-checks every explored schedule.

Edges are stored with the set of keys that induced them so the SG view can
exclude bookkeeping keys (the marking directory's ``MARKS_KEY``) without
touching data-item edges between the same pair of transactions.
"""

from __future__ import annotations

from typing import ItemsView

from repro.sg.conflicts import OpKind, Operation


class ConflictIndex:
    """Conflict edges of one site history, maintained incrementally."""

    __slots__ = ("_accessors", "_writers", "_keys_of", "_edges", "_by_txn")

    def __init__(self) -> None:
        #: key -> transactions with any operation on it
        self._accessors: dict[str, set[str]] = {}
        #: key -> transactions that wrote it
        self._writers: dict[str, set[str]] = {}
        #: txn -> keys it touched (for expunge)
        self._keys_of: dict[str, set[str]] = {}
        #: (earlier txn, later txn) -> keys inducing the edge
        self._edges: dict[tuple[str, str], set[str]] = {}
        #: txn -> incident edge pairs (for expunge)
        self._by_txn: dict[str, set[tuple[str, str]]] = {}

    def record(self, op: Operation) -> None:
        """Index one newly appended operation."""
        key, txn = op.key, op.txn_id
        if op.kind is OpKind.WRITE:
            sources = self._accessors.get(key, ())
        else:
            sources = self._writers.get(key, ())
        for src in sources:
            if src != txn:
                self._add_edge(src, txn, key)
        self._accessors.setdefault(key, set()).add(txn)
        if op.kind is OpKind.WRITE:
            self._writers.setdefault(key, set()).add(txn)
        self._keys_of.setdefault(txn, set()).add(key)

    def _add_edge(self, src: str, dst: str, key: str) -> None:
        pair = (src, dst)
        keys = self._edges.get(pair)
        if keys is None:
            keys = self._edges[pair] = set()
            self._by_txn.setdefault(src, set()).add(pair)
            self._by_txn.setdefault(dst, set()).add(pair)
        keys.add(key)

    def forget(self, txn_id: str) -> None:
        """Drop one transaction, as if its operations were never recorded.

        Sound for :meth:`SiteHistory.expunge` because conflict edges are
        pairwise facts: removing every edge incident to ``txn_id`` cannot
        affect an edge between two *other* transactions.
        """
        for key in self._keys_of.pop(txn_id, ()):
            accessors = self._accessors.get(key)
            if accessors:
                accessors.discard(txn_id)
            writers = self._writers.get(key)
            if writers:
                writers.discard(txn_id)
        for pair in self._by_txn.pop(txn_id, ()):
            self._edges.pop(pair, None)
            other = pair[0] if pair[1] == txn_id else pair[1]
            peers = self._by_txn.get(other)
            if peers:
                peers.discard(pair)

    def edges(self) -> ItemsView[tuple[str, str], set[str]]:
        """All ``(earlier, later) -> inducing keys`` entries."""
        return self._edges.items()

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"<ConflictIndex edges={len(self._edges)}>"
