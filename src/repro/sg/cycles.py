"""Regular-cycle detection — the paper's correctness criterion.

A *regular cycle* is a global cyclic path that **includes** at least one
regular (non-compensating) global transaction, where "includes" is the
minimal-representation notion of :mod:`repro.sg.paths`.  The correctness
criterion: a history is correct iff its global SG contains no regular cycles
and no local cycles (Section 5).  Cycles whose minimal representations
consist only of compensating transactions (and, in the underlying node path,
local transactions) are explicitly *allowed* — compensating subtransactions
are mutually independent and need not observe a globally consistent state.

Operationalization.  Representations of cyclic paths are cyclic walks in the
segment graph; a representation is minimal when no run of consecutive
segments can be replaced by a single segment — equivalently, the cycle of
boundary nodes is **chordless** in the segment graph (a chord ``u → v``
between non-adjacent boundary nodes would shortcut the run from ``u`` to
``v``).  Hence:

    a regular cycle exists  ⇔  the segment graph contains a chordless
    cycle through a regular global transaction.

This reproduces the paper's judgements: in Example 1 the 3-segment cycle
``T2 → CT3 → CT1 → T2`` has the chord ``CT1 → CT3`` (inside ``SG2``), so the
only minimal cyclic representation is ``CT3 → CT1 → CT3`` — no regular
transaction, no regular cycle.  In Figure 1(a) the 2-segment cycle
``T2 → CT1 → T2`` has no chords (length-2 cycles never do), so it is a
regular cycle.

Local transactions never appear as boundary nodes of a chordless cycle: they
exist in a single local SG, so both incident segments lie in that SG and the
transitive closure provides the chord that merges them.  Local cycles proper
(cycles inside one local SG) are checked separately — they would mean the
local DBMS failed to produce a serializable local history.
"""

from __future__ import annotations

from repro.errors import CorrectnessViolation
from repro.sg.graph import GlobalSG, TxnKind, classify
from repro.sg.paths import SegmentGraph


def find_chordless_cycle_through(
    graph: SegmentGraph, start: str
) -> list[str] | None:
    """Find a chordless segment-graph cycle through ``start``.

    Returns the cycle's boundary nodes ``[start, ..., start]`` or None.  A
    cycle ``v0 → v1 → ... → vk = v0`` is chordless when the only segments
    among its boundary nodes are the k consecutive ones.
    """
    # DFS over simple paths from `start`, maintaining chordlessness as an
    # invariant.  Key observation: once the current node has a segment back
    # to `start`, the *only* chordless completion is to close immediately —
    # extending further would leave that segment as a chord of the larger
    # cycle.  Likewise a candidate next node is rejected when any segment
    # connects it to a non-adjacent path node (in either direction: forward
    # chords shortcut the run between their end points; wrap-around chords
    # shortcut through `start` and drop it).
    path = [start]
    on_path = {start}

    def extend(node: str) -> list[str] | None:
        if node != start and graph.has_segment(node, start):
            return list(path) + [start] if len(path) >= 2 else None
        for succ in sorted(graph.successors(node)):
            if succ in on_path:
                continue
            # chord into succ from a non-predecessor path node?
            if any(graph.has_segment(p, succ) for p in path if p != node):
                continue
            # chord from succ back into the path (start handled above)?
            if any(graph.has_segment(succ, p) for p in path[1:]):
                continue
            path.append(succ)
            on_path.add(succ)
            found = extend(succ)
            path.pop()
            on_path.discard(succ)
            if found is not None:
                return found
        return None

    return extend(start)


def find_regular_cycle(
    gsg: GlobalSG, regular_nodes: set[str] | None = None
) -> list[str] | None:
    """Return a regular cycle's boundary nodes, or None if the SG is correct.

    Searches for a chordless segment-graph cycle through each regular global
    transaction (sorted order, so results are deterministic).  Nodes outside
    a nontrivial strongly connected component of the segment graph cannot be
    on any cycle and are skipped — on the (serializable) common case this
    makes the check linear.

    ``regular_nodes`` selects which nodes count as regular global
    transactions; it defaults to every non-CT, non-local node (the paper's
    **literal** criterion).  Passing only the *committed* global
    transactions gives the **effective** criterion: a globally-aborted
    transaction, whose exposed updates were all revoked by its
    compensation, is — together with its ``CT_i`` — part of the
    compensation machinery (the paper models a failed transaction's undo as
    a blend of roll-backs and compensating subtransactions), so cycles
    confined to such pairs are treated like CT-only cycles.  The
    distinction matters: the practical protocol implementation (the paper's
    "acceptable compromise", which latches rather than locks the marking
    sets) can strand a *literal* regular cycle through a transaction it
    aborts after exposure, while it does prevent every cycle through a
    committed transaction — see EXPERIMENTS.md (CLAIM-CORRECT) for a
    concrete trace.
    """
    from repro.sg.paths import strongly_connected_components

    graph = SegmentGraph(gsg)
    components = strongly_connected_components(
        sorted(graph.nodes), graph.successors
    )
    cyclic_nodes = {
        node for component in components if len(component) > 1
        for node in component
    }
    for node in sorted(cyclic_nodes):
        if classify(node) is not TxnKind.GLOBAL:
            continue
        if regular_nodes is not None and node not in regular_nodes:
            continue
        cycle = find_chordless_cycle_through(graph, node)
        if cycle is not None:
            return cycle
    return None


def find_local_cycle(gsg: GlobalSG) -> tuple[str, list[str]] | None:
    """Return ``(site_id, cycle)`` for a cycle inside one local SG, or None.

    Local cycles mean the site's own concurrency control failed; the paper
    assumes local histories are serializable, so these are checked only to
    validate that assumption on simulated runs.
    """
    for site_id in sorted(gsg.locals):
        cycle = gsg.locals[site_id].find_local_cycle()
        if cycle is not None:
            return site_id, cycle
    return None


def is_correct(
    gsg: GlobalSG, regular_nodes: set[str] | None = None
) -> bool:
    """The paper's correctness criterion: no local cycles, no regular cycles."""
    return (
        find_local_cycle(gsg) is None
        and find_regular_cycle(gsg, regular_nodes) is None
    )


def assert_correct(
    gsg: GlobalSG, regular_nodes: set[str] | None = None
) -> None:
    """Raise :class:`CorrectnessViolation` when the criterion fails."""
    local = find_local_cycle(gsg)
    if local is not None:
        site_id, cycle = local
        raise CorrectnessViolation(
            f"local cycle at {site_id}: {' -> '.join(cycle)}", cycle=cycle
        )
    cycle = find_regular_cycle(gsg, regular_nodes)
    if cycle is not None:
        raise CorrectnessViolation(
            f"regular cycle: {' -> '.join(cycle)}", cycle=cycle
        )
