"""Histories: per-site operation sequences and their classification.

A :class:`SiteHistory` is the (complete) local history of one site: a total
order of read/write operations, plus the termination status of transactions
(local transactions only enter the serialization graph once committed).

A :class:`GlobalHistory` bundles the site histories of one run and knows how
to classify transaction ids into the paper's three populations: global
transactions :math:`\\mathcal{T}`, their compensating transactions
:math:`\\mathcal{CT}`, and local transactions :math:`\\mathcal{L}`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HistoryError
from repro.sg.conflicts import OpKind, Operation
from repro.sg.index import ConflictIndex


@dataclass
class SiteHistory:
    """The complete history of one site."""

    site_id: str
    ops: list[Operation] = field(default_factory=list)
    committed: set[str] = field(default_factory=set)
    aborted: set[str] = field(default_factory=set)
    #: conflict edges over ``ops``; read it through the :attr:`index`
    #: property, which indexes lazily (recording an operation is just a
    #: list append — conflict edges materialize on first index access,
    #: so runs that never build an SG never pay for one)
    _index: ConflictIndex = field(
        default_factory=ConflictIndex, repr=False, compare=False
    )
    _next_seq: int = field(default=0, repr=False, compare=False)
    #: number of leading ``ops`` already folded into ``_index``
    _indexed: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Constructed around a pre-recorded ops list: resume the seq counter
        # past it (the lazy index picks the ops up on first access).
        if self.ops:
            self._next_seq = max(op.seq for op in self.ops) + 1

    @property
    def index(self) -> ConflictIndex:
        """The conflict index, synced to ``ops`` on access."""
        ops = self.ops
        start = self._indexed
        if start < len(ops):
            record = self._index.record
            for op in ops[start:]:
                record(op)
            self._indexed = len(ops)
        return self._index

    def _append(self, txn_id: str, kind: OpKind, key: str) -> Operation:
        if txn_id in self.committed or txn_id in self.aborted:
            raise HistoryError(
                f"{txn_id} already terminated at {self.site_id}"
            )
        # Monotonic counter, NOT len(self.ops): expunge removes operations,
        # so a length-based seq would be re-issued and break the "seq orders
        # operations" invariant the explain/order layers rely on.
        op = Operation(
            txn_id=txn_id, kind=kind, key=key, site=self.site_id,
            seq=self._next_seq,
        )
        self._next_seq += 1
        self.ops.append(op)
        return op

    def read(self, txn_id: str, key: str) -> Operation:
        """Record a read of ``key`` by ``txn_id``."""
        return self._append(txn_id, OpKind.READ, key)

    def write(self, txn_id: str, key: str) -> Operation:
        """Record a write of ``key`` by ``txn_id``."""
        return self._append(txn_id, OpKind.WRITE, key)

    def commit(self, txn_id: str) -> None:
        """Mark ``txn_id`` committed at this site."""
        if txn_id in self.aborted:
            raise HistoryError(f"{txn_id} already aborted at {self.site_id}")
        self.committed.add(txn_id)

    def abort(self, txn_id: str) -> None:
        """Mark ``txn_id`` aborted at this site.

        Aborted transactions' operations are excluded from the SG (their
        effects were rolled back; the roll-back itself is modeled as a
        degenerate compensating transaction when the transaction is global).
        """
        if txn_id in self.committed:
            raise HistoryError(f"{txn_id} already committed at {self.site_id}")
        self.aborted.add(txn_id)

    def expunge(self, txn_id: str) -> None:
        """Erase a rolled-back transaction's operations from the history.

        Used for aborted *local* transactions and failed compensation
        attempts: their effects were fully undone under their own locks
        before exposure, and they are excluded from the SG in any case, so
        removing the operations keeps the recorded history equal to the
        committed-projection the SG layer consumes.  (Aborted *global*
        transactions are never expunged — the paper's theory keeps them.)
        """
        if txn_id in self.committed:
            raise HistoryError(f"{txn_id} committed at {self.site_id}")
        # Sync-then-forget: fold pending ops into the index first so the
        # forget sees every edge the expunged transaction induced, then
        # re-anchor the watermark to the filtered list.
        index = self.index
        self.ops = [op for op in self.ops if op.txn_id != txn_id]
        index.forget(txn_id)
        self._indexed = len(self.ops)
        self.aborted.discard(txn_id)

    # -- derived relations ----------------------------------------------------

    def transactions(self) -> set[str]:
        """All transaction ids with at least one operation here."""
        return {op.txn_id for op in self.ops}

    def ops_of(self, txn_id: str) -> list[Operation]:
        """Operations of one transaction, in history order."""
        return [op for op in self.ops if op.txn_id == txn_id]

    def reads_from(self) -> list[tuple[str, str, str]]:
        """The reads-from relation: (reader, writer, key) triples.

        Reader R reads key k from writer W when W's write is the latest
        write of k preceding R's read.  Operations of aborted transactions
        are ignored (their updates were undone before exposure under strict
        2PL).
        """
        result: list[tuple[str, str, str]] = []
        last_writer: dict[str, str] = {}
        for op in self.ops:
            if op.txn_id in self.aborted:
                continue
            if op.kind is OpKind.WRITE:
                last_writer[op.key] = op.txn_id
            else:
                writer = last_writer.get(op.key)
                if writer is not None and writer != op.txn_id:
                    result.append((op.txn_id, writer, op.key))
        return result


@dataclass
class GlobalHistory:
    """The multi-site history of one run."""

    sites: dict[str, SiteHistory] = field(default_factory=dict)

    def site(self, site_id: str) -> SiteHistory:
        """Get or create the history of ``site_id``."""
        if site_id not in self.sites:
            self.sites[site_id] = SiteHistory(site_id)
        return self.sites[site_id]

    def transactions(self) -> set[str]:
        """All transaction ids appearing anywhere."""
        result: set[str] = set()
        for history in self.sites.values():
            result |= history.transactions()
        return result

    def sites_of(self, txn_id: str) -> list[str]:
        """Sites where ``txn_id`` has at least one operation, sorted."""
        return sorted(
            site_id
            for site_id, history in self.sites.items()
            if txn_id in history.transactions()
        )

    def reads_from(self) -> list[tuple[str, str, str, str]]:
        """Global reads-from: (reader, writer, key, site) tuples."""
        result = []
        for site_id in sorted(self.sites):
            for reader, writer, key in self.sites[site_id].reads_from():
                result.append((reader, writer, key, site_id))
        return result
