"""Shared commit-protocol types and configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommitScheme(enum.Enum):
    """Which commit protocol participants run.

    Every member must have an engine registered in
    :mod:`repro.protocols` (``repro lint`` enforces this).
    """

    #: standard 2PC + strict distributed 2PL (locks held until decision)
    TWO_PL = "2PL"
    #: optimistic 2PC (locks released at YES vote; compensation on abort)
    O2PC = "O2PC"
    #: Paxos Commit (Gray & Lamport): one consensus instance per
    #: participant vote, 2F+1 acceptors, non-blocking under coordinator
    #: crash with up to F acceptor failures
    PAXOS = "PAXOS"
    #: Short-Commit: early lock release at vote time with a
    #: commit-dependency list instead of compensation
    SHORT = "SHORT"


@dataclass
class CommitConfig:
    """Timeouts and retry policy for coordinators.

    Times are in simulation units; with the default
    :class:`~repro.net.network.LatencyModel` one unit is one message hop.
    """

    #: how long to wait for each SUBTXN_ACK before giving up
    spawn_timeout: float = 200.0
    #: delay before retrying a retriable R1 rejection
    spawn_retry_delay: float = 5.0
    #: maximum R1 retries per subtransaction before aborting the global txn
    max_spawn_retries: int = 10
    #: how long to wait for votes; missing votes count as NO
    vote_timeout: float = 200.0
    #: how long to wait for decision ACKs per round; missing ACKs are
    #: tolerated after the last round
    ack_timeout: float = 200.0
    #: additional DECISION (re)transmission rounds for sites whose ACK is
    #: missing — the coordinator side of the 2PC termination protocol (a
    #: crashed participant learns the outcome after recovering)
    decision_retries: int = 2
    #: time to force-write the decision record before sending DECISION —
    #: the real window in which a coordinator crash leaves 2PC participants
    #: blocked in the prepared state
    decision_log_delay: float = 0.5
    #: spawn subtransactions one at a time (required for faithful R1
    #: transmark accumulation) or all at once
    sequential_spawn: bool = True
    #: Paxos Commit: number of acceptor processes (2F+1; 3 tolerates one
    #: acceptor failure without blocking)
    paxos_acceptors: int = 3
    #: Paxos Commit: how long a prepared participant waits for the
    #: coordinator's DECISION before running the termination protocol as
    #: recovery leader against the acceptors
    paxos_decision_timeout: float = 60.0
    #: Short-Commit: how long a participant's vote waits for its commit
    #: dependencies (exposed data it read/overwrote) to resolve before it
    #: gives up and votes NO
    short_dependency_timeout: float = 100.0
