"""Shared commit-protocol types and configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommitScheme(enum.Enum):
    """Which commit protocol participants run."""

    #: standard 2PC + strict distributed 2PL (locks held until decision)
    TWO_PL = "2PL"
    #: optimistic 2PC (locks released at YES vote; compensation on abort)
    O2PC = "O2PC"


@dataclass
class CommitConfig:
    """Timeouts and retry policy for coordinators.

    Times are in simulation units; with the default
    :class:`~repro.net.network.LatencyModel` one unit is one message hop.
    """

    #: how long to wait for each SUBTXN_ACK before giving up
    spawn_timeout: float = 200.0
    #: delay before retrying a retriable R1 rejection
    spawn_retry_delay: float = 5.0
    #: maximum R1 retries per subtransaction before aborting the global txn
    max_spawn_retries: int = 10
    #: how long to wait for votes; missing votes count as NO
    vote_timeout: float = 200.0
    #: how long to wait for decision ACKs per round; missing ACKs are
    #: tolerated after the last round
    ack_timeout: float = 200.0
    #: additional DECISION (re)transmission rounds for sites whose ACK is
    #: missing — the coordinator side of the 2PC termination protocol (a
    #: crashed participant learns the outcome after recovering)
    decision_retries: int = 2
    #: time to force-write the decision record before sending DECISION —
    #: the real window in which a coordinator crash leaves 2PC participants
    #: blocked in the prepared state
    decision_log_delay: float = 0.5
    #: spawn subtransactions one at a time (required for faithful R1
    #: transmark accumulation) or all at once
    sequential_spawn: bool = True
