"""The coordinator: drives one global transaction end to end.

Flow (Section 2): submit every subtransaction and wait for operation
acknowledgements (distributed 2PL initiates the commit protocol only once
the transaction holds all its locks); then the standard 2PC rounds —
VOTE_REQ to all, collect votes, force-log the decision, send DECISION,
collect ACKs.

R1 integration: with a marking protocol active, subtransactions are spawned
sequentially and ``transmarks.j`` accumulates from each SUBTXN_ACK; a
retriable R1 rejection is retried after a delay (bounded), a fatal one
aborts the global transaction.

Failure model: the coordinator checks its own liveness (via an optional
:class:`~repro.net.failures.FailureInjector`) at every protocol step.  While
crashed it makes no progress — messages it would have sent are simply not
sent, and messages sent to it are dropped by the network — and on recovery
it resumes from its durable decision log: if it had decided, it re-sends the
decision; if it crashed before deciding, it decides ABORT (presumed abort).
This reproduces the paper's motivating scenario: 2PL participants blocked in
the prepared state for the whole coordinator outage, O2PC participants
unaffected.
"""

from __future__ import annotations

from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.core.protocols import MarkingProtocol, NoProtocol
from repro.net.failures import FailureInjector
from repro.net.message import Message, MsgType
from repro.net.network import Network
from repro.obs.events import (
    DecisionReached,
    PhaseEntered,
    TxnSubmitted,
    TxnTerminated,
    VoteRecorded,
)
from repro.sim.engine import Environment
from repro.txn.transaction import GlobalTxnSpec, TxnOutcome


class Coordinator:
    """Coordinator for one global transaction."""

    #: the coordinator's receive surface: every message type it collects
    #: from its inbox.  A class-level literal so ``repro lint`` can verify
    #: handler exhaustiveness statically (every :class:`MsgType` must be
    #: collected here or handled by the participant); ``_collect`` asserts
    #: against it so the declaration cannot drift from the code.
    _COLLECTS: tuple[MsgType, ...] = (
        MsgType.SUBTXN_ACK,
        MsgType.VOTE,
        MsgType.ACK,
    )

    def __init__(
        self,
        env: Environment,
        network: Network,
        spec: GlobalTxnSpec,
        scheme: CommitScheme = CommitScheme.O2PC,
        marking: MarkingProtocol | None = None,
        config: CommitConfig | None = None,
        failures: FailureInjector | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.spec = spec
        self.scheme = scheme
        self.marking = marking or NoProtocol()
        self.config = config or CommitConfig()
        self.failures = failures
        self.endpoint = f"coord.{spec.txn_id}"
        self.inbox = network.register(self.endpoint)
        #: durable decision log (survives coordinator crashes)
        self.decision_log: list[str] = []
        #: the sites the last decision round targeted, and the acks it got
        #: back — read by the networked client to re-send the decision to
        #: sites that never acknowledged (a restarted in-doubt daemon)
        self.decision_sites: list[str] = []
        self.decision_acks: dict[str, dict[str, Any]] = {}
        self.outcome = TxnOutcome(txn_id=spec.txn_id, committed=False)

    # -- public entry -------------------------------------------------------------

    def run(self):
        """Run the transaction to termination (generator; returns outcome)."""
        outcome = self.outcome
        outcome.start_time = self.env.now
        txn_id = self.spec.txn_id
        bus = self.env.bus
        if bus.enabled:
            bus.publish(TxnSubmitted(
                txn_id=txn_id, sites=tuple(self.spec.site_ids),
            ))
            bus.publish(PhaseEntered(txn_id=txn_id, phase="spawn"))
        self.marking.register_execution(txn_id, self.spec.site_ids)

        executed_sites, ok = yield from self._spawn_phase()
        if not ok:
            if bus.enabled:
                bus.publish(DecisionReached(txn_id=txn_id, decision="ABORT"))
            yield from self._abort_executed(executed_sites)
            outcome.decision_time = self.env.now
            outcome.end_time = self.env.now
            self.marking.on_transaction_terminated(txn_id)
            if bus.enabled:
                bus.publish(TxnTerminated(
                    txn_id=txn_id, committed=False,
                    latency=outcome.end_time - outcome.start_time,
                    compensated_sites=tuple(outcome.compensated_sites),
                ))
            return outcome

        if bus.enabled:
            bus.publish(PhaseEntered(txn_id=txn_id, phase="vote"))
        votes = yield from self._vote_phase()
        if bus.enabled:
            for site, vote in sorted(votes.items()):
                bus.publish(VoteRecorded(
                    txn_id=txn_id, site_id=site, vote=vote,
                ))
        decision = (
            "COMMIT"
            if all(v == "YES" for v in votes.values())
            and len(votes) == len(self.spec.subtxns)
            else "ABORT"
        )
        outcome.no_votes = sorted(
            site for site, v in votes.items() if v == "NO"
        )
        # Force-write the decision record; a crash inside this window is
        # the paper's blocking scenario (participants prepared, no decision).
        if self.config.decision_log_delay > 0:
            yield self.env.timeout(self.config.decision_log_delay)
        yield from self._await_alive()
        self.decision_log.append(decision)
        outcome.decision_time = self.env.now
        outcome.committed = decision == "COMMIT"
        if bus.enabled:
            bus.publish(DecisionReached(txn_id=txn_id, decision=decision))
            bus.publish(PhaseEntered(txn_id=txn_id, phase="decision"))

        acks = yield from self._decision_phase(decision, executed_sites)
        outcome.compensated_sites = sorted(
            site for site, payload in acks.items()
            if payload.get("compensated")
        )
        outcome.end_time = self.env.now
        self.marking.on_transaction_terminated(txn_id)
        if bus.enabled:
            bus.publish(TxnTerminated(
                txn_id=txn_id, committed=outcome.committed,
                latency=outcome.end_time - outcome.start_time,
                compensated_sites=tuple(outcome.compensated_sites),
            ))
        return outcome

    # -- phase 0: subtransaction execution --------------------------------------------

    def _spawn_phase(self):
        """Submit subtransactions; returns (executed_sites, all_ok)."""
        transmarks: set[str] = set()
        executed: list[str] = []
        if self.config.sequential_spawn:
            for sub in self.spec.subtxns:
                ok = yield from self._spawn_one(sub, transmarks, executed)
                if not ok:
                    return executed, False
        else:
            yield from self._await_alive()
            for sub in self.spec.subtxns:
                self._send_subtxn_req(sub, transmarks)
            for _ in self.spec.subtxns:
                msg = yield from self._collect(
                    MsgType.SUBTXN_ACK, self.config.spawn_timeout
                )
                if msg is None or not msg.payload.get("executed"):
                    if msg is not None and msg.payload.get("rejected"):
                        self.outcome.rejections += 1
                    return executed, False
                executed.append(msg.sender)
        return executed, True

    def _spawn_one(self, sub, transmarks: set[str], executed: list[str]):
        attempts = 0
        while True:
            attempts += 1
            yield from self._await_alive()
            self._send_subtxn_req(sub, transmarks)
            msg = yield from self._collect(
                MsgType.SUBTXN_ACK, self.config.spawn_timeout
            )
            if msg is None:
                return False
            if msg.payload.get("executed"):
                executed.append(sub.site_id)
                transmarks.update(msg.payload.get("marks", ()))
                return True
            if msg.payload.get("rejected"):
                self.outcome.rejections += 1
                if (
                    msg.payload.get("retriable")
                    and attempts <= self.config.max_spawn_retries
                ):
                    yield self.env.timeout(self.config.spawn_retry_delay)
                    continue
            return False

    def _send_subtxn_req(self, sub, transmarks: set[str]) -> None:
        self.network.send(Message(
            msg_type=MsgType.SUBTXN_REQ,
            sender=self.endpoint,
            recipient=sub.site_id,
            txn_id=self.spec.txn_id,
            payload={
                "ops": list(sub.ops),
                "vote": sub.vote,
                "real_action": sub.real_action,
                "transmarks": sorted(transmarks),
            },
        ))

    # -- phase 1: voting ------------------------------------------------------------------

    def _vote_phase(self):
        """Send VOTE_REQ everywhere; returns {site: vote} (missing = absent)."""
        yield from self._await_alive()
        transmarks = sorted(self._final_transmarks())
        for sub in self.spec.subtxns:
            self.network.send(Message(
                msg_type=MsgType.VOTE_REQ,
                sender=self.endpoint,
                recipient=sub.site_id,
                txn_id=self.spec.txn_id,
                payload={"transmarks": transmarks},
            ))
        votes: dict[str, str] = {}
        deadline = self.env.now + self.config.vote_timeout
        while len(votes) < len(self.spec.subtxns):
            remaining = deadline - self.env.now
            if remaining <= 0:
                break
            msg = yield from self._collect(MsgType.VOTE, remaining)
            if msg is None:
                break
            votes[msg.sender] = msg.payload["vote"]
        return votes

    def _final_transmarks(self) -> set[str]:
        """The complete ``transmarks.j`` after every site joined.

        Re-derived from the marking protocol's current site marks so the
        vote-time validation sees up-to-date information.
        """
        marks: set[str] = set()
        for sub in self.spec.subtxns:
            marks |= self.marking.merge_marks(
                self.spec.txn_id, sub.site_id, marks
            )
        return marks

    # -- phase 2: decision ---------------------------------------------------------------------

    def _decision_phase(self, decision: str, sites: list[str]):
        """Send DECISION, re-sending to unacknowledged sites; returns
        {site: ack payload}.

        The retransmission rounds are the coordinator half of the 2PC
        termination protocol: a participant that crashed after voting
        learns the outcome from a later round once it has recovered.
        """
        self.decision_sites = list(sites)
        acks = self.decision_acks
        for _round in range(1 + max(0, self.config.decision_retries)):
            pending = [s for s in sites if s not in acks]
            if not pending:
                break
            yield from self._await_alive()
            for site_id in pending:
                self.network.send(Message(
                    msg_type=MsgType.DECISION,
                    sender=self.endpoint,
                    recipient=site_id,
                    txn_id=self.spec.txn_id,
                    payload={"decision": decision},
                ))
            deadline = self.env.now + self.config.ack_timeout
            while len(acks) < len(sites):
                remaining = deadline - self.env.now
                if remaining <= 0:
                    break
                msg = yield from self._collect(MsgType.ACK, remaining)
                if msg is None:
                    break
                acks[msg.sender] = msg.payload
        return acks

    def _abort_executed(self, sites: list[str]):
        """Short-circuit abort: no votes were requested.

        The DECISION(ABORT) goes to *every* site of the transaction
        unconditionally — not just the acknowledged ones.  A site whose
        subtransaction is still blocked on a lock (e.g. the loser of a
        cross-site deadlock resolved by this very timeout, or a spawn that
        never acknowledged) must be unwound, or it would hold its locks
        forever; sites that never saw the transaction simply acknowledge
        the unknown decision.
        """
        yield from self._decision_phase("ABORT", self.spec.site_ids)

    # -- infrastructure -----------------------------------------------------------------------

    def _collect(self, msg_type: MsgType, timeout: float):
        """Receive the next message of ``msg_type`` within ``timeout``.

        Messages of other types for this coordinator (stale ACKs, late
        votes) are discarded.  Returns None on timeout.
        """
        assert msg_type in self._COLLECTS, (
            f"{msg_type} missing from Coordinator._COLLECTS"
        )
        deadline = None
        while True:
            get = self.inbox.get()
            if get.triggered:
                # Fast path: a message was already queued, so take it
                # directly and skip the timeout/any_of machinery.  No
                # simulation time passes here, so deferring the deadline
                # clock until we actually have to wait leaves the expiry
                # instant unchanged.
                msg = yield get
            else:
                if deadline is None:
                    deadline = self.env.timeout(timeout)
                yield self.env.any_of([get, deadline])
                if not get.triggered:
                    self.inbox.cancel_get(get)
                    return None
                msg = get.value
            if msg.msg_type is msg_type:
                return msg

    def _await_alive(self):
        """Block while the coordinator endpoint is crashed.

        Polls the failure injector; granularity of one time unit is enough
        since outages are scheduled in whole units in the experiments.
        """
        if self.failures is None:
            return
        while not self.failures.is_up(self.endpoint):
            yield self.env.timeout(1.0)
        # After an outage, resume from the durable decision log if we had
        # already decided (retransmission is handled by the caller's flow:
        # _decision_phase is only entered once, after _await_alive).
        return
        yield  # pragma: no cover - ensure generator when failures is None
