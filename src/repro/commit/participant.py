"""The participant: one site's side of 2PC / O2PC.

A participant runs a dispatch loop over its site's network inbox and spawns
a handler process per message, so a subtransaction blocked on a lock never
delays the processing of later messages (vote requests for other
transactions, decisions, ...).

Handler behavior per message type:

``SUBTXN_REQ``
    Rule R1 (when a marking protocol is active): check
    ``compatible(transmarks.j, sitemarks.k)``; reject with the retriable
    flag on failure.  Otherwise execute the operations under strict 2PL.
    Deadlock victimization rolls the subtransaction back and reports
    execution failure.  Success reports the site's marks for the
    coordinator to merge (R1's ``transmarks.j ∪ sitemarks.k``).

``VOTE_REQ``
    Re-validate the final ``transmarks.j`` (the paper's "check validated
    again as the last action" — piggybacked here so it costs no message).
    Vote NO (and roll back, which is the degenerate ``CT_ik``) if the spec
    forces it or validation fails.  Vote YES otherwise: under O2PC the site
    *locally commits* — force-logs and releases every lock at once; under
    2PL (or for a ``real_action`` subtransaction under O2PC, Section 2's
    non-compensatable case) it merely prepares and keeps its locks.

``DECISION``
    COMMIT: finalize (2PL participants release locks now).
    ABORT: roll back if still holding locks; run the compensating
    subtransaction if locally committed (rule R2 applies the undone mark
    after ``CT_ik`` completes).  Always ACK.

Unilateral abort (the autonomy property, Section 1): :meth:`unilateral_abort`
lets the site kill a subtransaction any time before it votes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.commit.base import CommitScheme
from repro.compensation.executor import CompensationExecutor
from repro.core.protocols import MarkingProtocol, NoProtocol
from repro.errors import DeadlockDetected, LockTimeout, TransactionAborted
from repro.net.message import Message, MsgType
from repro.net.network import Network
from repro.obs.events import (
    DecisionApplied,
    LocallyCommitted,
    Prepared,
    SiteCrashed,
    SiteRecovered,
    SubtxnExecuted,
    SubtxnFailed,
    SubtxnRejected,
    SubtxnStarted,
)
from repro.sim.process import Process
from repro.txn.operations import Op
from repro.txn.site import Site
from repro.txn.transaction import TxnStatus, VotePolicy


@dataclass
class _SubtxnState:
    """Participant-side state of one subtransaction."""

    txn_id: str
    ops: list[Op]
    vote_policy: VotePolicy
    real_action: bool
    executed: bool = False
    voted: str | None = None
    decided: str | None = None
    #: simulation time the decision was applied (the non-blocking oracle
    #: compares it against coordinator outage windows)
    decided_at: float | None = None
    compensated: bool = False
    #: reconstructed from the log after a crash (in-doubt path)
    recovered: bool = False


class Participant:
    """One site's protocol engine."""

    #: the participant's receive surface: message type → handler method
    #: name.  A class-level literal so ``repro lint`` can verify handler
    #: exhaustiveness statically (every :class:`MsgType` must be handled
    #: here or collected by the coordinator); ``_dispatch`` binds it.
    _HANDLERS: dict[MsgType, str] = {
        MsgType.SUBTXN_REQ: "_handle_subtxn",
        MsgType.VOTE_REQ: "_handle_vote_req",
        MsgType.DECISION: "_handle_decision",
    }

    def __init__(
        self,
        site: Site,
        network: Network,
        scheme: CommitScheme = CommitScheme.O2PC,
        marking: MarkingProtocol | None = None,
        compensation_retry_delay: float = 1.0,
        lock_marks: bool = False,
    ) -> None:
        self.site = site
        self.env = site.env
        self.network = network
        self.scheme = scheme
        self.marking = marking or NoProtocol()
        #: store the marking set as a lockable database item (Section 6.2's
        #: first option): the R1 check read-locks it, and the compensating
        #: subtransaction writes it as its last action — the configuration
        #: that exhibits the marking-set deadlock the paper remarks on.
        #: False (default) models the "acceptable compromise": check first,
        #: unlock immediately, re-validate at vote time.
        self.lock_marks = lock_marks
        self.compensator = CompensationExecutor(
            site, retry_delay=compensation_retry_delay,
            lock_marks=lock_marks,
        )
        self.subtxns: dict[str, _SubtxnState] = {}
        #: live handler processes — killed on crash, since a handler
        #: suspended mid-protocol must not keep running against wiped state
        self._handlers: set[Any] = set()
        network.register(site.site_id)
        self._dispatcher = self.env.process(
            self._dispatch(), name=f"participant:{site.site_id}"
        )

    # -- dispatch loop ------------------------------------------------------------

    def _dispatch(self):
        # Built once, not per message: the dispatch loop runs for every
        # delivery and is on the checker's innermost hot path.
        handlers = {
            msg_type: getattr(self, method)
            for msg_type, method in self._HANDLERS.items()
        }
        while True:
            msg = yield self.network.receive(self.site.site_id)
            handler = handlers.get(msg.msg_type)
            if handler is None:
                continue
            # Eager spawn: the handler's first segment runs inline, and a
            # handler that completes without suspending (VOTE_REQ, duplicate
            # decisions) never allocates a Process at all.  Only suspended
            # handlers need crash tracking — a completed one has nothing
            # left to interrupt.
            proc = Process.eager(
                self.env,
                handler(msg),
                name=f"{self.site.site_id}:{msg.msg_type.value}:{msg.txn_id}",
            )
            if proc is not None and proc.is_alive:
                self._handlers.add(proc)
                proc.callbacks.append(
                    lambda _evt, p=proc: self._handlers.discard(p)
                )

    # -- SUBTXN_REQ ----------------------------------------------------------------

    def _handle_subtxn(self, msg: Message):
        txn_id = msg.txn_id
        payload = msg.payload
        transmarks: set[str] = set(payload.get("transmarks", ()))

        check = self.marking.check_spawn(txn_id, self.site.site_id, transmarks)
        if not check.ok:
            bus = self.env.bus
            if bus.enabled:
                bus.publish(SubtxnRejected(
                    txn_id=txn_id, site_id=self.site.site_id,
                    retriable=check.retriable, reason=check.reason,
                ))
            self._reply(msg, MsgType.SUBTXN_ACK, {
                "executed": False,
                "rejected": True,
                "retriable": check.retriable,
                "reason": check.reason,
            })
            return

        state = _SubtxnState(
            txn_id=txn_id,
            ops=list(payload["ops"]),
            vote_policy=payload.get("vote", VotePolicy.AUTO),
            real_action=payload.get("real_action", False),
        )
        self.subtxns[txn_id] = state

        bus = self.env.bus
        if bus.enabled:
            bus.publish(SubtxnStarted(txn_id=txn_id, site_id=self.site.site_id))
        self.site.ltm.begin(txn_id)
        try:
            if self.lock_marks and not isinstance(self.marking, NoProtocol):
                # The R1 check reads the marking set under a real S lock
                # held, like any data access, until the transaction's locks
                # are released (strict 2PL).
                from repro.core.marks import MARKS_KEY
                from repro.locking.modes import LockMode

                yield self.site.locks.acquire(txn_id, MARKS_KEY, LockMode.S)
                self.site.history.read(txn_id, MARKS_KEY)
            yield from self.site.ltm.run_ops(txn_id, state.ops)
        except (DeadlockDetected, LockTimeout) as exc:
            ct_id = self.site.ltm.rollback_subtxn(txn_id)
            self.marking.on_vote_abort(txn_id, self.site.site_id)
            if bus.enabled:
                bus.publish(SubtxnFailed(
                    txn_id=txn_id, site_id=self.site.site_id,
                    reason=type(exc).__name__,
                ))
            self._reply(msg, MsgType.SUBTXN_ACK, {
                "executed": False,
                "rejected": False,
                "retriable": False,
                "reason": type(exc).__name__,
                "ct_id": ct_id,
            })
            return
        except TransactionAborted:
            # An abort decision arrived while we were blocked on a lock:
            # the decision handler already rolled the subtransaction back;
            # just report execution failure (the coordinator has moved on).
            if bus.enabled:
                bus.publish(SubtxnFailed(
                    txn_id=txn_id, site_id=self.site.site_id,
                    reason="aborted while blocked",
                ))
            self._reply(msg, MsgType.SUBTXN_ACK, {
                "executed": False,
                "rejected": False,
                "retriable": False,
                "reason": "aborted while blocked",
            })
            return

        state.executed = True
        if bus.enabled:
            bus.publish(SubtxnExecuted(
                txn_id=txn_id, site_id=self.site.site_id,
            ))
        # Witness recording for UDUM1 (rule R3 fires inside when enabled).
        self.marking.on_executed(txn_id, self.site.site_id)
        self._reply(msg, MsgType.SUBTXN_ACK, {
            "executed": True,
            "rejected": False,
            "marks": sorted(
                self.marking.merge_marks(txn_id, self.site.site_id, transmarks)
            ),
        })

    # -- VOTE_REQ ---------------------------------------------------------------------

    def _handle_vote_req(self, msg: Message):
        txn_id = msg.txn_id
        state = self.subtxns.get(txn_id)
        transmarks: set[str] = set(msg.payload.get("transmarks", ()))

        if (
            self.lock_marks
            and self.site.marks_key
            and state is not None
            and state.executed
            and self.site.ltm.is_active(txn_id)
        ):
            # With locked marking sets, the validation re-read is "the last
            # action of the subtransaction": a recorded history operation
            # whose conflict with compensations' marking writes orders this
            # transaction against them (Lemma 5's mechanism).  The S lock
            # taken at spawn is still held, so the order is 2PL-consistent.
            self.site.history.read(txn_id, self.site.marks_key)

        can_commit = (
            state is not None
            and state.executed
            and self.site.ltm.is_active(txn_id)
            and state.vote_policy is not VotePolicy.FORCE_NO
            and self.marking.validate_at_vote(
                txn_id, self.site.site_id, transmarks
            )
        )

        if not can_commit:
            if state is not None and self.site.ltm.is_active(txn_id):
                self.site.ltm.rollback_subtxn(txn_id)
                self.marking.on_vote_abort(txn_id, self.site.site_id)
            if state is not None:
                state.voted = "NO"
            self._reply(msg, MsgType.VOTE, {"vote": "NO"})
            return

        assert state is not None
        bus = self.env.bus
        if self.scheme is CommitScheme.O2PC and not state.real_action:
            # The O2PC move: locally commit, release every lock at once.
            self.site.ltm.local_commit(txn_id)
            if bus.enabled:
                bus.publish(LocallyCommitted(
                    txn_id=txn_id, site_id=self.site.site_id,
                ))
        else:
            # Distributed 2PL (or a real-action site): prepare, hold locks.
            self.site.ltm.prepare(txn_id)
            if bus.enabled:
                bus.publish(Prepared(
                    txn_id=txn_id, site_id=self.site.site_id,
                ))
        if self.scheme is CommitScheme.O2PC:
            self.marking.on_vote_commit(txn_id, self.site.site_id)
        state.voted = "YES"
        self._reply(msg, MsgType.VOTE, {"vote": "YES"})
        return
        yield  # pragma: no cover - make this handler a generator

    # -- DECISION --------------------------------------------------------------------

    def _handle_decision(self, msg: Message):
        txn_id = msg.txn_id
        decision = msg.payload["decision"]
        state = self.subtxns.get(txn_id)
        if state is None or state.decided is not None:
            # Duplicate decision (coordinator retransmission): just ACK.
            self._reply(msg, MsgType.ACK, {"compensated": False})
            return
        state.decided = decision
        state.decided_at = self.env.now
        status = self.site.ltm.status.get(txn_id)
        bus = self.env.bus

        if decision == "COMMIT":
            if state.recovered and status is TxnStatus.PREPARED:
                # The crash wiped the volatile updates: redo from the log.
                self.site.ltm.commit_recovered(txn_id)
            else:
                self.site.ltm.complete_commit(txn_id)
            if self.scheme is CommitScheme.O2PC:
                self.marking.on_decision_commit(txn_id, self.site.site_id)
            if bus.enabled:
                bus.publish(DecisionApplied(
                    txn_id=txn_id, site_id=self.site.site_id,
                    decision=decision, compensated=False,
                ))
            self._reply(msg, MsgType.ACK, {"compensated": False})
            return

        # ABORT decision.
        if state.recovered and status is TxnStatus.PREPARED:
            self.site.ltm.abort_recovered(txn_id)
            if bus.enabled:
                bus.publish(DecisionApplied(
                    txn_id=txn_id, site_id=self.site.site_id,
                    decision=decision, compensated=False,
                ))
            self._reply(msg, MsgType.ACK, {"compensated": False})
            return
        if status is TxnStatus.LOCALLY_COMMITTED:
            # Updates are exposed: semantic undo via the compensating
            # subtransaction, scheduled as a local transaction.
            yield from self.compensator.run(txn_id)
            state.compensated = True
            self.marking.on_decision_abort_compensated(
                txn_id, self.site.site_id
            )
        elif status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
            # Locks still held: standard roll-back (the degenerate CT_ik).
            self.site.ltm.rollback_subtxn(txn_id)
            if self.scheme is CommitScheme.O2PC:
                if state.voted == "YES":
                    # A prepared real-action site: it was marked
                    # locally-committed at vote time.
                    self.marking.on_decision_abort_compensated(
                        txn_id, self.site.site_id
                    )
                else:
                    self.marking.on_vote_abort(txn_id, self.site.site_id)
        if bus.enabled:
            bus.publish(DecisionApplied(
                txn_id=txn_id, site_id=self.site.site_id,
                decision=decision, compensated=state.compensated,
            ))
        self._reply(msg, MsgType.ACK, {"compensated": state.compensated})

    # -- crash / recovery -----------------------------------------------------------------

    def crash(self) -> None:
        """The site crashed: volatile state is gone.

        The network already drops this site's messages; protocol state
        (``subtxns``) is wiped along with the site's store and lock table.
        The write-ahead log survives and drives :meth:`recover`.
        """
        bus = self.env.bus
        if bus.enabled:
            bus.publish(SiteCrashed(site_id=self.site.site_id))
        # Kill handlers suspended mid-protocol: their lock waits and undo
        # programs died with the volatile state.  ``defused`` keeps the
        # resulting ProcessInterrupted from surfacing as an unhandled
        # failure in the kernel.
        for proc in list(self._handlers):
            if proc.is_alive and proc is not self.env.active_process:
                proc.defused = True
                proc.interrupt(cause=f"site {self.site.site_id} crashed")
        self._handlers.clear()
        self.site.crash()
        self.subtxns.clear()

    def recover(self):
        """Restart the site from its log (generator; run in a process).

        Rebuilds protocol state for every transaction the log says is
        unresolved:

        * *in-doubt* (prepared under 2PL, no decision): re-acquire its
          write locks and wait for the coordinator's (re)transmitted
          decision — the blocking the paper's introduction decries;
        * *locally committed* (O2PC): its updates were redone by restart
          recovery (local commitment exposed them); await the decision and
          compensate on ABORT exactly as if the crash never happened.
        """
        report = self.site.restart()
        bus = self.env.bus
        if bus.enabled:
            bus.publish(SiteRecovered(
                site_id=self.site.site_id,
                in_doubt=tuple(sorted(report.in_doubt)),
                locally_committed=tuple(sorted(report.locally_committed)),
            ))
        for txn_id in report.in_doubt:
            state = _SubtxnState(
                txn_id=txn_id, ops=[], vote_policy=VotePolicy.AUTO,
                real_action=False, executed=True, voted="YES",
                recovered=True,
            )
            self.subtxns[txn_id] = state
            yield from self.site.ltm.recover_in_doubt(txn_id)
            if self.scheme is CommitScheme.O2PC:
                # An in-doubt site under O2PC is a prepared real-action
                # site: its YES vote marked it locally committed.
                self.marking.restore_locally_committed(
                    txn_id, self.site.site_id
                )
        for txn_id in report.locally_committed:
            state = _SubtxnState(
                txn_id=txn_id, ops=[], vote_policy=VotePolicy.AUTO,
                real_action=False, executed=True, voted="YES",
            )
            self.subtxns[txn_id] = state
            self.site.ltm.recover_locally_committed(txn_id)
            # Re-derive the marking the crash wiped (no-op in the sim,
            # whose directory survives): the decision's transition must
            # fire from LOCALLY_COMMITTED.
            self.marking.restore_locally_committed(txn_id, self.site.site_id)
        return report

    # -- autonomy ------------------------------------------------------------------------

    def unilateral_abort(self, txn_id: str) -> bool:
        """Locally abort a subtransaction before it votes (site autonomy).

        Returns True if the abort took effect; False when the transaction
        already voted or terminated here (O2PC: after the YES vote the
        outcome is the coordinator's to decide — but the site regains
        control of its resources immediately, which is the point).
        """
        state = self.subtxns.get(txn_id)
        if state is None or state.voted is not None:
            return False
        if not self.site.ltm.is_active(txn_id):
            return False
        self.site.ltm.rollback_subtxn(txn_id)
        if self.scheme is CommitScheme.O2PC:
            self.marking.on_vote_abort(txn_id, self.site.site_id)
        state.executed = False
        return True

    # -- helpers -------------------------------------------------------------------------

    def _reply(
        self, msg: Message, msg_type: MsgType, payload: dict[str, Any]
    ) -> None:
        self.network.send(msg.reply(msg_type, payload))
