"""Commit protocols: standard 2PC over distributed 2PL, and O2PC.

The two schemes share the message flow (SUBTXN_REQ/ACK, VOTE_REQ, VOTE,
DECISION, ACK — O2PC adds **nothing**); they differ only in what a
participant does when it votes YES:

* :data:`~repro.commit.base.CommitScheme.TWO_PL` — the participant enters
  the prepared state and **holds all locks** until the decision arrives
  (strict distributed 2PL; blocking);
* :data:`~repro.commit.base.CommitScheme.O2PC` — the participant *locally
  commits*: it force-logs, releases every lock at once, and compensates
  later if the decision turns out to be ABORT (Section 2).

:class:`~repro.commit.coordinator.Coordinator` drives one global transaction
end to end; :class:`~repro.commit.participant.Participant` is the per-site
message loop.
"""

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.coordinator import Coordinator
from repro.commit.participant import Participant

__all__ = [
    "CommitConfig",
    "CommitScheme",
    "Coordinator",
    "Participant",
]
