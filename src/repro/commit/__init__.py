"""Commit protocols: the base 2PC machinery and its four schemes.

This package holds the shared coordinator/participant state machines; the
per-scheme engines live in :mod:`repro.protocols` (see docs/PROTOCOLS.md
for the full comparison).  The incumbent pair shares the message flow
(SUBTXN_REQ/ACK, VOTE_REQ, VOTE, DECISION, ACK — O2PC adds **nothing**)
and differs only in what a participant does when it votes YES:

* :data:`~repro.commit.base.CommitScheme.TWO_PL` — the participant enters
  the prepared state and **holds all locks** until the decision arrives
  (strict distributed 2PL; blocking);
* :data:`~repro.commit.base.CommitScheme.O2PC` — the participant *locally
  commits*: it force-logs, releases every lock at once, and compensates
  later if the decision turns out to be ABORT (Section 2).

The competitor schemes extend the same machinery:

* :data:`~repro.commit.base.CommitScheme.PAXOS` — Paxos Commit: votes are
  consensus instances over 2F+1 acceptors; non-blocking under coordinator
  crash (adds the PAXOS_* message types);
* :data:`~repro.commit.base.CommitScheme.SHORT` — Short-Commit: prepares
  like 2PC but releases locks at the vote, tracking commit dependencies
  and cascade-aborting instead of compensating.

:class:`~repro.commit.coordinator.Coordinator` drives one global transaction
end to end; :class:`~repro.commit.participant.Participant` is the per-site
message loop.
"""

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.coordinator import Coordinator
from repro.commit.participant import Participant

__all__ = [
    "CommitConfig",
    "CommitScheme",
    "Coordinator",
    "Participant",
]
