"""Paxos Commit (Gray & Lamport) on the shared substrate.

One Paxos consensus instance per participant vote: instead of sending its
YES/NO to the coordinator, a participant sends it as a ballot-0 phase-2a
message to all 2F+1 acceptors; the coordinator (acting as the initial
leader) learns each instance's outcome from the acceptors' phase-2b
replies.  The global decision is COMMIT iff every instance chose YES.

The non-blocking property the experiment harness measures: when the
coordinator crashes after participants prepared, a standard-2PC participant
holds its locks until the coordinator recovers, but a Paxos Commit
participant only waits ``paxos_decision_timeout`` and then runs the
termination protocol itself — phase 1 (prepare/promise) against the
acceptors at a fresh ballot, then phase 2 proposing the highest-ballot
accepted value per instance (NO for free instances) — deciding as long as
F+1 acceptors are up.  Quorum intersection makes every leader, concurrent
or successive, decide the same way.

Engine shape on the substrate:

* :class:`PaxosCommitCoordinator` — subclasses the base coordinator; spawn
  and decision phases are inherited unchanged, only the vote phase is
  replaced by acceptor collection + coordinator-side termination.
* :class:`PaxosParticipant` — subclasses the base participant; votes are
  ballot-0 accepts, a watchdog process per prepared transaction runs the
  termination protocol when the decision does not arrive in time, and
  crash recovery re-arms the watchdog for in-doubt transactions (the
  acceptor log then reconstructs the instance set).
* :class:`~repro.protocols.acceptor.Acceptor` — the 2F+1 acceptors.
"""

from __future__ import annotations

from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.coordinator import Coordinator
from repro.commit.participant import Participant
from repro.net.message import Message, MsgType
from repro.obs.events import Prepared
from repro.protocols import EngineSpec, acceptor_ids, register
from repro.protocols.acceptor import Ballot, ballot_of
from repro.sim.process import Process
from repro.txn.transaction import VotePolicy

#: polling granularity of the termination mailbox (simulation units; the
#: site inbox is owned by the dispatch loop, so termination replies are
#: queued by handlers and polled by the leader process)
_MAILBOX_POLL = 0.5


# -- termination protocol (shared by coordinator and recovery leaders) ----------


def run_termination(
    *,
    env: Any,
    network: Any,
    me: str,
    txn_id: str,
    acceptors: tuple[str, ...],
    ballot: Ballot,
    collect: Any,
    known_sites: Any,
    phase_timeout: float,
) -> Any:
    """One ballot of the Paxos Commit termination protocol (generator).

    Phase 1a/1b: prepare at ``ballot``, gather F+1 matching promises.
    Phase 2a/2b: per instance, propose the highest-ballot accepted value
    from the promises (NO for instances no quorum member accepted — the
    participant never voted, so abort is the only safe choice), gather an
    accept quorum per instance.

    Returns ``{instance: value}`` on success, or ``None`` when either
    quorum was not reached within ``phase_timeout`` (the caller retries at
    a higher ballot).  ``collect`` is a generator function
    ``(msg_type, timeout) -> Message | None`` draining the leader's reply
    stream.
    """
    quorum = len(acceptors) // 2 + 1
    for acc in acceptors:
        network.send(Message(
            msg_type=MsgType.PAXOS_PREPARE,
            sender=me,
            recipient=acc,
            txn_id=txn_id,
            payload={"ballot": list(ballot), "leader": me},
        ))
    promises: dict[str, dict[str, Any]] = {}
    deadline = env.now + phase_timeout
    while len(promises) < quorum:
        remaining = deadline - env.now
        if remaining <= 0:
            return None
        msg = yield from collect(MsgType.PAXOS_PROMISE, remaining)
        if msg is None:
            return None
        if msg.txn_id != txn_id:
            continue
        if ballot_of(msg.payload["ballot"]) != ballot:
            continue  # nack: the acceptor promised a higher ballot
        promises[msg.sender] = msg.payload

    instances: set[str] = {str(s) for s in known_sites}
    for payload in promises.values():
        instances.update(str(s) for s in payload.get("sites", ()))
        instances.update(str(i) for i in payload.get("accepted", {}))
    choices: dict[str, str] = {}
    for instance in sorted(instances):
        best: tuple[Ballot, str] | None = None
        for payload in promises.values():
            entry = payload.get("accepted", {}).get(instance)
            if entry is None:
                continue
            candidate = (ballot_of(entry[0]), str(entry[1]))
            if best is None or candidate[0] > best[0]:
                best = candidate
        choices[instance] = best[1] if best is not None else "NO"

    site_list = sorted(instances)
    for acc in acceptors:
        for instance in site_list:
            network.send(Message(
                msg_type=MsgType.PAXOS_ACCEPT,
                sender=me,
                recipient=acc,
                txn_id=txn_id,
                payload={
                    "instance": instance,
                    "ballot": list(ballot),
                    "value": choices[instance],
                    "leader": me,
                    "sites": site_list,
                },
            ))
    counts: dict[str, set[str]] = {instance: set() for instance in site_list}
    deadline = env.now + phase_timeout
    while any(len(accs) < quorum for accs in counts.values()):
        remaining = deadline - env.now
        if remaining <= 0:
            return None
        msg = yield from collect(MsgType.PAXOS_ACCEPTED, remaining)
        if msg is None:
            return None
        if msg.txn_id != txn_id:
            continue
        if ballot_of(msg.payload["ballot"]) != ballot:
            continue
        instance = str(msg.payload["instance"])
        if instance in counts:
            counts[instance].add(msg.sender)
    return choices


class _TermMailbox:
    """Reply queue for a termination leader running inside a participant.

    The site's network inbox is consumed exclusively by the participant's
    dispatch loop, so PAXOS_PROMISE/PAXOS_ACCEPTED handlers push into this
    queue and the leader process polls it (bounded, deterministic)."""

    __slots__ = ("env", "queue")

    def __init__(self, env: Any) -> None:
        self.env = env
        self.queue: list[Message] = []

    def push(self, msg: Message) -> None:
        self.queue.append(msg)

    def collect(self, msg_type: MsgType, timeout: float) -> Any:
        deadline = self.env.now + timeout
        while True:
            for i, queued in enumerate(self.queue):
                if queued.msg_type is msg_type:
                    return self.queue.pop(i)
            remaining = deadline - self.env.now
            if remaining <= 0:
                return None
            yield self.env.timeout(min(_MAILBOX_POLL, remaining))


# -- coordinator ----------------------------------------------------------------


class PaxosCommitCoordinator(Coordinator):
    """Coordinator/initial leader of Paxos Commit.

    Spawn and decision phases are the base coordinator's; the vote phase
    collects instance outcomes from the acceptors instead of VOTE messages,
    falling back to the termination protocol when the vote window expires
    (e.g. after its own crash outage: presumed abort is *wrong* here — the
    acceptors may have chosen COMMIT, so the recovered coordinator asks
    them instead of assuming).
    """

    #: receive surface (see ``Coordinator._COLLECTS``): votes arrive as
    #: acceptor PAXOS_ACCEPTED messages; PAXOS_PROMISE feeds termination.
    _COLLECTS: tuple[MsgType, ...] = (
        MsgType.SUBTXN_ACK,
        MsgType.PAXOS_PROMISE,
        MsgType.PAXOS_ACCEPTED,
        MsgType.ACK,
    )

    def __init__(
        self,
        env: Any,
        network: Any,
        spec: Any,
        scheme: CommitScheme = CommitScheme.PAXOS,
        marking: Any = None,
        config: CommitConfig | None = None,
        failures: Any = None,
        acceptors: tuple[str, ...] = (),
    ) -> None:
        super().__init__(
            env, network, spec, scheme=scheme, marking=marking,
            config=config, failures=failures,
        )
        self.acceptors: tuple[str, ...] = (
            tuple(acceptors) or acceptor_ids(self.config.paxos_acceptors)
        )

    def _vote_phase(self) -> Any:
        """Returns ``{site: "YES"|"NO"}`` learned through the acceptors."""
        yield from self._await_alive()
        transmarks = sorted(self._final_transmarks())
        sites = [sub.site_id for sub in self.spec.subtxns]
        for sub in self.spec.subtxns:
            self.network.send(Message(
                msg_type=MsgType.VOTE_REQ,
                sender=self.endpoint,
                recipient=sub.site_id,
                txn_id=self.spec.txn_id,
                payload={
                    "transmarks": transmarks,
                    "acceptors": list(self.acceptors),
                    "sites": sites,
                },
            ))
        quorum = len(self.acceptors) // 2 + 1
        tallies: dict[tuple[str, Ballot, str], set[str]] = {}
        decided: dict[str, str] = {}
        deadline = self.env.now + self.config.vote_timeout
        while len(decided) < len(sites):
            remaining = deadline - self.env.now
            if remaining <= 0:
                break
            msg = yield from self._collect(MsgType.PAXOS_ACCEPTED, remaining)
            if msg is None:
                break
            instance = str(msg.payload["instance"])
            key = (
                instance,
                ballot_of(msg.payload["ballot"]),
                str(msg.payload["value"]),
            )
            voters = tallies.setdefault(key, set())
            voters.add(msg.sender)
            if len(voters) >= quorum and instance not in decided:
                decided[instance] = key[2]
        if len(decided) < len(sites):
            decided = yield from self._terminate(sites, decided)
        return decided

    def _terminate(self, sites: list[str], decided: dict[str, str]) -> Any:
        """Leader-side termination: retry at rising ballots until every
        instance has an accept quorum.

        Non-terminating only while more than F acceptors stay down — the
        protocol's documented blocking bound (with finite outages each
        retry eventually finds its quorum).  Safety over speed: the
        coordinator never presumes abort here, because an instance may
        already have chosen YES at a quorum this leader simply has not
        heard from yet.
        """
        rnd = 1
        while True:
            yield from self._await_alive()
            result = yield from run_termination(
                env=self.env,
                network=self.network,
                me=self.endpoint,
                txn_id=self.spec.txn_id,
                acceptors=self.acceptors,
                ballot=(rnd, self.endpoint),
                collect=self._collect,
                known_sites=sites,
                phase_timeout=self.config.paxos_decision_timeout,
            )
            if result is not None:
                # Quorum intersection: ``result`` can never contradict an
                # instance already decided at ballot 0.
                return {**decided, **result}
            rnd += 1
            yield self.env.timeout(self.config.spawn_retry_delay)


# -- participant ----------------------------------------------------------------


class PaxosParticipant(Participant):
    """Participant of Paxos Commit.

    Votes are ballot-0 accepts sent to every acceptor (the coordinator
    learns them from the acceptors' 2b replies).  A YES voter prepares —
    force-log, keep write locks — and arms a watchdog: if no DECISION
    arrives within ``paxos_decision_timeout``, the participant becomes a
    recovery leader and runs the termination protocol, then applies and
    broadcasts the outcome.  This is the non-blocking path 2PC lacks.
    """

    #: receive surface (see ``Participant._HANDLERS``); the two Paxos
    #: reply types feed the termination mailbox of a recovery leader.
    _HANDLERS: dict[MsgType, str] = {
        MsgType.SUBTXN_REQ: "_handle_subtxn",
        MsgType.VOTE_REQ: "_handle_vote_req",
        MsgType.DECISION: "_handle_decision",
        MsgType.PAXOS_PROMISE: "_handle_promise",
        MsgType.PAXOS_ACCEPTED: "_handle_accepted",
    }

    def __init__(
        self,
        site: Any,
        network: Any,
        scheme: CommitScheme = CommitScheme.PAXOS,
        marking: Any = None,
        compensation_retry_delay: float = 1.0,
        lock_marks: bool = False,
        commit: CommitConfig | None = None,
        acceptors: tuple[str, ...] = (),
    ) -> None:
        super().__init__(
            site, network, scheme=scheme, marking=marking,
            compensation_retry_delay=compensation_retry_delay,
            lock_marks=lock_marks,
        )
        self.commit = commit or CommitConfig()
        self.acceptors: tuple[str, ...] = (
            tuple(acceptors) or acceptor_ids(self.commit.paxos_acceptors)
        )
        self._mailboxes: dict[str, _TermMailbox] = {}
        #: txn → participant list from the VOTE_REQ payload (volatile;
        #: recovery leaders fall back to the acceptors' stored site lists)
        self._txn_sites: dict[str, list[str]] = {}

    # -- VOTE_REQ -----------------------------------------------------------------

    def _handle_vote_req(self, msg: Message) -> Any:
        txn_id = msg.txn_id
        state = self.subtxns.get(txn_id)
        transmarks: set[str] = set(msg.payload.get("transmarks", ()))
        acceptors = (
            tuple(str(a) for a in msg.payload.get("acceptors", ()))
            or self.acceptors
        )
        sites = [str(s) for s in msg.payload.get("sites", ())]
        self._txn_sites[txn_id] = sites or [self.site.site_id]

        can_commit = (
            state is not None
            and state.executed
            and self.site.ltm.is_active(txn_id)
            and state.vote_policy is not VotePolicy.FORCE_NO
            and self.marking.validate_at_vote(
                txn_id, self.site.site_id, transmarks
            )
        )
        if not can_commit:
            if state is not None and self.site.ltm.is_active(txn_id):
                self.site.ltm.rollback_subtxn(txn_id)
                self.marking.on_vote_abort(txn_id, self.site.site_id)
            if state is not None:
                state.voted = "NO"
            self._send_ballot_zero(txn_id, "NO", acceptors, msg.sender)
            return

        assert state is not None
        # Prepare exactly like 2PC: force-log, keep write locks.  The
        # non-blocking win is in how the decision is *reached*, not in
        # early lock release (that is O2PC's and Short-Commit's trade).
        self.site.ltm.prepare(txn_id)
        bus = self.env.bus
        if bus.enabled:
            bus.publish(Prepared(txn_id=txn_id, site_id=self.site.site_id))
        state.voted = "YES"
        self._send_ballot_zero(txn_id, "YES", acceptors, msg.sender)
        self._arm_watchdog(
            txn_id, acceptors, self.commit.paxos_decision_timeout
        )
        return
        yield  # pragma: no cover - make this handler a generator

    def _send_ballot_zero(
        self,
        txn_id: str,
        vote: str,
        acceptors: tuple[str, ...],
        leader: str,
    ) -> None:
        """The participant's vote: a phase-2a message at the reserved
        ballot 0, carrying the site list so acceptors can reconstruct the
        instance set for any future recovery leader."""
        sites = self._txn_sites.get(txn_id) or [self.site.site_id]
        for acc in acceptors:
            self.network.send(Message(
                msg_type=MsgType.PAXOS_ACCEPT,
                sender=self.site.site_id,
                recipient=acc,
                txn_id=txn_id,
                payload={
                    "instance": self.site.site_id,
                    "ballot": [0, ""],
                    "value": vote,
                    "leader": leader,
                    "sites": sites,
                },
            ))

    # -- termination watchdog -----------------------------------------------------

    def _arm_watchdog(
        self, txn_id: str, acceptors: tuple[str, ...], delay: float
    ) -> None:
        proc = Process.eager(
            self.env,
            self._watchdog(txn_id, acceptors, delay),
            name=f"{self.site.site_id}:paxos-term:{txn_id}",
        )
        # Tracked like message handlers: a crash must kill a pending
        # watchdog (recovery re-arms it from the log).
        if proc is not None and proc.is_alive:
            self._handlers.add(proc)
            proc.callbacks.append(
                lambda _evt, p=proc: self._handlers.discard(p)
            )

    def _watchdog(
        self, txn_id: str, acceptors: tuple[str, ...], delay: float,
    ) -> Any:
        sites = self._txn_sites.get(txn_id) or [self.site.site_id]
        # Stagger leaders by rank so concurrent recovery attempts (dueling
        # ballots) stay rare; any interleaving is still safe.
        rank = (
            sites.index(self.site.site_id)
            if self.site.site_id in sites else 0
        )
        yield self.env.timeout(delay + 3.0 * rank)
        rnd = 1
        while True:
            state = self.subtxns.get(txn_id)
            if state is None or state.decided is not None:
                return
            mailbox = self._mailboxes.setdefault(
                txn_id, _TermMailbox(self.env)
            )
            result = yield from run_termination(
                env=self.env,
                network=self.network,
                me=self.site.site_id,
                txn_id=txn_id,
                acceptors=acceptors,
                ballot=(rnd, self.site.site_id),
                collect=mailbox.collect,
                known_sites=self._txn_sites.get(txn_id)
                or [self.site.site_id],
                phase_timeout=self.commit.paxos_decision_timeout,
            )
            state = self.subtxns.get(txn_id)
            if state is None or state.decided is not None:
                return
            if result is not None:
                decision = (
                    "COMMIT"
                    if result
                    and all(v == "YES" for v in result.values())
                    else "ABORT"
                )
                targets = sorted(set(result) | {self.site.site_id})
                for site_id in targets:
                    self.network.send(Message(
                        msg_type=MsgType.DECISION,
                        sender=self.site.site_id,
                        recipient=site_id,
                        txn_id=txn_id,
                        payload={"decision": decision},
                    ))
                return
            rnd += 1
            yield self.env.timeout(1.0 + rank)

    # -- termination replies (fed to the mailbox) ---------------------------------

    def _handle_promise(self, msg: Message) -> Any:
        self._mailboxes.setdefault(msg.txn_id, _TermMailbox(self.env)).push(
            msg
        )
        return
        yield  # pragma: no cover - make this handler a generator

    def _handle_accepted(self, msg: Message) -> Any:
        self._mailboxes.setdefault(msg.txn_id, _TermMailbox(self.env)).push(
            msg
        )
        return
        yield  # pragma: no cover - make this handler a generator

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        super().crash()
        self._mailboxes.clear()
        self._txn_sites.clear()

    def recover(self) -> Any:
        report = yield from super().recover()
        for txn_id in sorted(report.in_doubt):
            # A recovered prepared participant is exactly the blocked-2PC
            # case Paxos Commit exists to remove: ask the acceptors.  The
            # instance set comes back in their promises (stored from the
            # ballot-0 site lists); if they know nothing, aborting the own
            # instance is safe — no COMMIT quorum can exist that does not
            # intersect the promise quorum.
            self._arm_watchdog(txn_id, self.acceptors, 1.0)
        return report


# -- registration ----------------------------------------------------------------


def make_coordinator(
    *,
    env: Any,
    network: Any,
    spec: Any,
    scheme: CommitScheme,
    marking: Any = None,
    config: Any = None,
    failures: Any = None,
    acceptors: tuple[str, ...] = (),
) -> PaxosCommitCoordinator:
    return PaxosCommitCoordinator(
        env, network, spec, scheme=scheme, marking=marking, config=config,
        failures=failures, acceptors=acceptors,
    )


def make_participant(
    *,
    site: Any,
    network: Any,
    scheme: CommitScheme,
    marking: Any = None,
    lock_marks: bool = False,
    commit: Any = None,
    acceptors: tuple[str, ...] = (),
) -> PaxosParticipant:
    return PaxosParticipant(
        site, network, scheme=scheme, marking=marking,
        lock_marks=lock_marks, commit=commit, acceptors=acceptors,
    )


register(EngineSpec(
    scheme=CommitScheme.PAXOS,
    coordinator=make_coordinator,
    participant=make_participant,
    uses_acceptors=True,
))
