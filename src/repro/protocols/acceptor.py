"""The Paxos Commit acceptor role.

An acceptor is a tiny, passive state machine: per transaction it remembers
the highest ballot it promised and, per consensus *instance* (one instance
per participant site), the highest-ballot value it accepted.  2F+1
acceptors tolerate F failures: any two quorums of F+1 intersect, which is
the whole safety argument of Paxos Commit (Gray & Lamport, *Consensus on
Transaction Commit*).

Ballots are ``(round, proposer)`` pairs ordered lexicographically.  Ballot
``(0, "")`` is reserved for a participant's own vote — its phase-2a message
sent straight to the acceptors, saving the phase-1 round in the failure-free
case.  Recovery leaders (a timed-out participant, or the restarted
coordinator) use rounds ≥ 1 with their own endpoint id as tiebreaker, so no
two proposers ever share a ballot.

Acceptor state is durable by definition — that is what the protocol's
non-blocking guarantee rests on.  In the simulator the Python object simply
survives the crash (only messages are dropped while the endpoint is down,
exactly like the coordinator's ``decision_log``).  In the networked runtime
the state is persisted to a JSON file next to the site's WAL and reloaded
on restart (``path=...``).
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.net.message import Message, MsgType

#: a ballot: (round, proposer endpoint).  Compared lexicographically.
Ballot = tuple[int, str]

#: ballot 0, reserved for participants' own votes
BALLOT_ZERO: Ballot = (0, "")


def ballot_of(raw: Any) -> Ballot:
    """Normalize a wire-encoded ballot (a 2-list) to a comparable tuple."""
    rnd, proposer = raw
    return (int(rnd), str(proposer))


class Acceptor:
    """One of the 2F+1 Paxos Commit acceptors."""

    #: the acceptor's receive surface: message type → handler method name.
    #: A class-level literal so ``repro lint`` covers it like the
    #: participant's ``_HANDLERS``.
    _HANDLERS: dict[MsgType, str] = {
        MsgType.PAXOS_PREPARE: "_handle_prepare",
        MsgType.PAXOS_ACCEPT: "_handle_accept",
    }

    def __init__(
        self,
        env: Any,
        network: Any,
        acceptor_id: str,
        path: str | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.acceptor_id = acceptor_id
        #: JSON persistence path (networked runtime); None = in-memory
        self.path = path
        #: txn → highest promised ballot
        self.promised: dict[str, Ballot] = {}
        #: txn → instance (participant site) → (ballot, value)
        self.accepted: dict[str, dict[str, tuple[Ballot, str]]] = {}
        #: txn → the transaction's full participant list, learned from
        #: ballot-0 accepts; recovery leaders read it back from promises
        #: to learn the instance set
        self.sites: dict[str, list[str]] = {}
        if path is not None and os.path.exists(path):
            self._load()
        network.register(acceptor_id)
        self._dispatcher = env.process(
            self._dispatch(), name=f"acceptor:{acceptor_id}"
        )

    # -- dispatch -----------------------------------------------------------------

    def _dispatch(self) -> Any:
        handlers = {
            msg_type: getattr(self, method)
            for msg_type, method in self._HANDLERS.items()
        }
        while True:
            msg = yield self.network.receive(self.acceptor_id)
            handler = handlers.get(msg.msg_type)
            if handler is None:
                continue
            # Acceptor handlers never suspend: state update + one reply.
            handler(msg)

    # -- phase 1: prepare / promise --------------------------------------------------

    def _handle_prepare(self, msg: Message) -> None:
        txn_id = msg.txn_id
        ballot = ballot_of(msg.payload["ballot"])
        if ballot > self.promised.get(txn_id, BALLOT_ZERO):
            self.promised[txn_id] = ballot
            self._persist()
        # Always reply: a promise at a higher ballot than the leader's is
        # the nack that tells it to retry with a bigger round.
        accepted = {
            instance: [list(entry[0]), entry[1]]
            for instance, entry in sorted(
                self.accepted.get(txn_id, {}).items()
            )
        }
        self.network.send(Message(
            msg_type=MsgType.PAXOS_PROMISE,
            sender=self.acceptor_id,
            recipient=str(msg.payload.get("leader", msg.sender)),
            txn_id=txn_id,
            payload={
                "ballot": list(self.promised.get(txn_id, BALLOT_ZERO)),
                "accepted": accepted,
                "sites": list(self.sites.get(txn_id, [])),
            },
        ))

    # -- phase 2: accept / accepted ---------------------------------------------------

    def _handle_accept(self, msg: Message) -> None:
        txn_id = msg.txn_id
        ballot = ballot_of(msg.payload["ballot"])
        if ballot < self.promised.get(txn_id, BALLOT_ZERO):
            # Nacked by silence; the leader learns the higher ballot from
            # the promise round of its retry.
            return
        instance = str(msg.payload["instance"])
        value = str(msg.payload["value"])
        self.promised[txn_id] = ballot
        self.accepted.setdefault(txn_id, {})[instance] = (ballot, value)
        sites = msg.payload.get("sites")
        if sites:
            self.sites[txn_id] = [str(s) for s in sites]
        self._persist()
        self.network.send(Message(
            msg_type=MsgType.PAXOS_ACCEPTED,
            sender=self.acceptor_id,
            recipient=str(msg.payload["leader"]),
            txn_id=txn_id,
            payload={
                "instance": instance,
                "ballot": list(ballot),
                "value": value,
            },
        ))

    # -- persistence (networked runtime) ---------------------------------------------

    def _persist(self) -> None:
        if self.path is None:
            return
        state = {
            "promised": {
                txn: list(b) for txn, b in sorted(self.promised.items())
            },
            "accepted": {
                txn: {
                    instance: [list(entry[0]), entry[1]]
                    for instance, entry in sorted(entries.items())
                }
                for txn, entries in sorted(self.accepted.items())
            },
            "sites": {
                txn: list(s) for txn, s in sorted(self.sites.items())
            },
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, sort_keys=True)
        os.replace(tmp, self.path)

    def _load(self) -> None:
        assert self.path is not None
        with open(self.path, encoding="utf-8") as fh:
            state = json.load(fh)
        self.promised = {
            txn: ballot_of(b) for txn, b in state.get("promised", {}).items()
        }
        self.accepted = {
            txn: {
                instance: (ballot_of(entry[0]), str(entry[1]))
                for instance, entry in entries.items()
            }
            for txn, entries in state.get("accepted", {}).items()
        }
        self.sites = {
            txn: [str(s) for s in sites]
            for txn, sites in state.get("sites", {}).items()
        }
