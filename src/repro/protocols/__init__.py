"""Pluggable commit-scheme engines on the shared substrate.

The harness (sim backend) and the networked runtime (net backend) both
construct their protocol engines through this registry instead of naming
:class:`~repro.commit.coordinator.Coordinator` /
:class:`~repro.commit.participant.Participant` directly.  Each
:class:`~repro.commit.base.CommitScheme` member maps to an
:class:`EngineSpec` — a coordinator factory, a participant factory, and a
flag for schemes that need acceptor processes.

Registered engines:

* ``TWO_PL`` / ``O2PC`` — the incumbent pair (:mod:`repro.protocols.o2pc`):
  standard 2PC with strict distributed 2PL, and the paper's optimistic
  variant that locally commits at the YES vote.
* ``PAXOS`` — Paxos Commit (:mod:`repro.protocols.paxos`): one consensus
  instance per participant vote over 2F+1 acceptors
  (:mod:`repro.protocols.acceptor`); non-blocking under coordinator crash
  with up to F acceptor failures.
* ``SHORT`` — Short-Commit (:mod:`repro.protocols.short`): early lock
  release at the YES vote with a commit-dependency list instead of
  compensation.

``repro lint`` (``dispatch/missing-engine``) fails when an enum member has
no entry here, so adding a scheme to the enum without an engine is caught
statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.commit.base import CommitScheme
from repro.errors import UnknownScheme

__all__ = [
    "EngineSpec",
    "ENGINES",
    "register",
    "engine_for",
    "acceptor_ids",
]


@dataclass(frozen=True)
class EngineSpec:
    """One commit scheme's engine factories.

    ``coordinator`` is called with keyword arguments ``env``, ``network``,
    ``spec``, ``scheme``, ``marking``, ``config``, ``failures``, and
    ``acceptors`` (a tuple of acceptor endpoint ids; empty for schemes that
    do not use acceptors).  ``participant`` is called with ``site``,
    ``network``, ``scheme``, ``marking``, ``lock_marks``, ``commit`` (the
    :class:`~repro.commit.base.CommitConfig`), and ``acceptors``.
    Factories ignore the keywords their engine does not need, so the
    harness can construct any scheme uniformly.
    """

    scheme: CommitScheme
    coordinator: Callable[..., Any]
    participant: Callable[..., Any]
    #: the scheme needs 2F+1 acceptor processes per system
    uses_acceptors: bool = False


#: the engine registry, populated by the scheme modules imported below
ENGINES: dict[CommitScheme, EngineSpec] = {}


def register(spec: EngineSpec) -> None:
    """Register (or replace) the engine for ``spec.scheme``."""
    ENGINES[spec.scheme] = spec


def engine_for(scheme: CommitScheme) -> EngineSpec:
    """The registered engine for ``scheme``; raises :class:`UnknownScheme`."""
    try:
        return ENGINES[scheme]
    except KeyError:
        known = ", ".join(sorted(s.value for s in ENGINES))
        raise UnknownScheme(
            f"no engine registered for {scheme!r} (known: {known})"
        ) from None


def acceptor_ids(n: int) -> tuple[str, ...]:
    """The endpoint ids of ``n`` acceptor processes (``acc.1`` .. ``acc.n``)."""
    return tuple(f"acc.{i}" for i in range(1, n + 1))


# Populate the registry.  Imported at the bottom so the scheme modules can
# import ``register``/``EngineSpec`` from this module.
from repro.protocols import o2pc as _o2pc  # noqa: E402,F401
from repro.protocols import paxos as _paxos  # noqa: E402,F401
from repro.protocols import short as _short  # noqa: E402,F401
