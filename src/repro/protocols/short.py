"""Short-Commit: early lock release with commit dependencies.

O2PC's closest cousin attacks the same blocking window from the other
side: where O2PC *locally commits* at the YES vote and pays with a
compensating subtransaction on ABORT, Short-Commit merely *prepares*
(force-log, like 2PC) but releases every lock anyway — exposing its
uncommitted updates.  A later transaction that reads or overwrites exposed
data does not block and does not compensate; it records a **commit
dependency** on the exposer and defers its own YES vote until that
dependency resolves:

* dependency COMMITs → the dependent votes normally;
* dependency ABORTs → the dependent is **cascade-aborted** (rolled back
  *before* the dependency itself, so the undo chain restores before-images
  in the right order: the dependent's undo re-installs the dependency's
  after-image, the dependency's undo then restores the original);
* dependency still undecided after ``short_dependency_timeout`` → the
  dependent gives up and votes NO (breaks cross-site dependency cycles).

No new message types (the same claim the paper makes for O2PC) and no
compensation machinery — the cost moves from compensating actions to
cascades and vote latency, which is exactly what ``repro compare``
measures head-to-head.
"""

from __future__ import annotations

from typing import Any

from repro.commit.base import CommitConfig, CommitScheme
from repro.commit.participant import Participant
from repro.net.message import Message, MsgType
from repro.obs.events import Prepared, SubtxnFailed
from repro.protocols import EngineSpec, register
from repro.protocols.o2pc import make_coordinator
from repro.txn.operations import ReadOp
from repro.txn.transaction import VotePolicy

#: polling granularity of the dependency wait at vote time
_DEP_POLL = 0.5


class ShortParticipant(Participant):
    """One site's Short-Commit engine.

    The coordinator side is the unmodified 2PC coordinator — all the
    scheme's behavior is participant-local, which is why the engine
    registers the base coordinator factory.
    """

    #: receive surface — identical vocabulary to the base participant
    #: (Short-Commit's "no new message types" claim), declared here so the
    #: lint covers this engine explicitly.
    _HANDLERS: dict[MsgType, str] = {
        MsgType.SUBTXN_REQ: "_handle_subtxn",
        MsgType.VOTE_REQ: "_handle_vote_req",
        MsgType.DECISION: "_handle_decision",
    }

    def __init__(
        self,
        site: Any,
        network: Any,
        scheme: CommitScheme = CommitScheme.SHORT,
        marking: Any = None,
        compensation_retry_delay: float = 1.0,
        lock_marks: bool = False,
        commit: CommitConfig | None = None,
    ) -> None:
        super().__init__(
            site, network, scheme=scheme, marking=marking,
            compensation_retry_delay=compensation_retry_delay,
            lock_marks=lock_marks,
        )
        self.commit = commit or CommitConfig()
        #: txn → keys it exposed at its YES vote (prepared, undecided)
        self._exposed_keys: dict[str, set[str]] = {}
        #: key → the txn currently exposing it
        self._exposed_by: dict[str, str] = {}
        #: txn → the exposers it commit-depends on (vote gate)
        self._deps: dict[str, set[str]] = {}
        #: txns rolled back by a cascade (their vote handlers reply NO
        #: without rolling back again)
        self._cascade_aborted: set[str] = set()

    # -- SUBTXN_REQ ---------------------------------------------------------------

    def _handle_subtxn(self, msg: Message) -> Any:
        yield from super()._handle_subtxn(msg)
        state = self.subtxns.get(msg.txn_id)
        if state is None or not state.executed:
            return
        # Record commit dependencies after execution: strict 2PL ordering
        # means any key this subtransaction touched that is exposed *now*
        # was exposed before the access (an exposer's lock release is what
        # made the access possible), and every declared key has been
        # accessed (execution is complete).
        deps: set[str] = set()
        for op in state.ops:
            exposer = self._exposed_by.get(op.key)
            if exposer is not None and exposer != msg.txn_id:
                deps.add(exposer)
        deps = {d for d in sorted(deps) if self._dep_pending(d)}
        if deps:
            self._deps[msg.txn_id] = deps

    def _dep_pending(self, txn_id: str) -> bool:
        """True while an exposer's global outcome is still unknown."""
        state = self.subtxns.get(txn_id)
        return (
            state is not None
            and state.voted == "YES"
            and state.decided is None
            and txn_id in self._exposed_keys
        )

    # -- VOTE_REQ -----------------------------------------------------------------

    def _handle_vote_req(self, msg: Message) -> Any:
        txn_id = msg.txn_id
        state = self.subtxns.get(txn_id)
        transmarks: set[str] = set(msg.payload.get("transmarks", ()))

        # The vote gate: wait for every commit dependency to resolve.
        dep_ok = True
        if state is not None and state.executed:
            deadline = self.env.now + self.commit.short_dependency_timeout
            while True:
                if txn_id in self._cascade_aborted:
                    dep_ok = False
                    break
                pending = sorted(
                    d for d in self._deps.get(txn_id, set())
                    if self._dep_pending(d)
                )
                if not pending:
                    break
                if self.env.now >= deadline:
                    # A cross-site dependency cycle (two exposers each
                    # waiting on the other's outcome) resolves here: both
                    # time out and vote NO.
                    dep_ok = False
                    break
                yield self.env.timeout(_DEP_POLL)

        can_commit = (
            dep_ok
            and state is not None
            and state.executed
            and self.site.ltm.is_active(txn_id)
            and state.vote_policy is not VotePolicy.FORCE_NO
            and self.marking.validate_at_vote(
                txn_id, self.site.site_id, transmarks
            )
        )
        if not can_commit:
            if state is not None and self.site.ltm.is_active(txn_id):
                self.site.ltm.rollback_subtxn(txn_id)
                self.marking.on_vote_abort(txn_id, self.site.site_id)
            if state is not None:
                state.voted = "NO"
            self._deps.pop(txn_id, None)
            self._reply(msg, MsgType.VOTE, {"vote": "NO"})
            return

        assert state is not None
        # The Short-Commit move: force-log the prepare like 2PC, then
        # release *every* lock — successors see the uncommitted updates
        # and record a dependency instead of blocking.
        self.site.ltm.prepare(txn_id)
        self.site.locks.release_all(txn_id)
        exposed = {
            op.key for op in state.ops if not isinstance(op, ReadOp)
        }
        self._exposed_keys[txn_id] = exposed
        for key in sorted(exposed):
            self._exposed_by[key] = txn_id
        bus = self.env.bus
        if bus.enabled:
            bus.publish(Prepared(txn_id=txn_id, site_id=self.site.site_id))
        state.voted = "YES"
        self._reply(msg, MsgType.VOTE, {"vote": "YES"})

    # -- DECISION -----------------------------------------------------------------

    def _handle_decision(self, msg: Message) -> Any:
        txn_id = msg.txn_id
        state = self.subtxns.get(txn_id)
        if state is not None and state.decided is None:
            if msg.payload["decision"] == "ABORT":
                # Cascade FIRST: dependents' undo must restore their
                # before-images (this transaction's after-images) before
                # this transaction's own undo restores the originals.
                self._cascade_abort(txn_id)
            self._resolve(txn_id)
        yield from super()._handle_decision(msg)

    def _cascade_abort(self, txn_id: str) -> None:
        """Roll back every active transaction that touched data ``txn_id``
        exposed.

        Dependents are necessarily still ACTIVE (exposure requires a YES
        vote, and the vote gate blocks a dependent's vote until its
        dependencies resolve), so a plain roll-back suffices — no
        transitive cascade is possible.  A dependent blocked on a lock
        inside ``run_ops`` is unwound through the same
        ``TransactionAborted`` path an abort decision uses.
        """
        exposed = self._exposed_keys.get(txn_id, set())
        if not exposed:
            return
        bus = self.env.bus
        for other_id in sorted(self.subtxns):
            if other_id == txn_id or other_id in self._cascade_aborted:
                continue
            other = self.subtxns[other_id]
            if other.voted is not None or other.decided is not None:
                continue
            if not self.site.ltm.is_active(other_id):
                continue
            touched = {op.key for op in other.ops}
            if not (touched & exposed):
                continue
            self._cascade_aborted.add(other_id)
            self.site.ltm.rollback_subtxn(other_id)
            other.executed = False
            self._deps.pop(other_id, None)
            if bus.enabled:
                bus.publish(SubtxnFailed(
                    txn_id=other_id, site_id=self.site.site_id,
                    reason=f"cascade abort (dependency {txn_id} aborted)",
                ))

    def _resolve(self, txn_id: str) -> None:
        """Clear ``txn_id``'s exposure and release its dependents' gate."""
        for key in sorted(self._exposed_keys.pop(txn_id, set())):
            if self._exposed_by.get(key) == txn_id:
                del self._exposed_by[key]
        for deps in self._deps.values():
            deps.discard(txn_id)
        self._deps.pop(txn_id, None)

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        super().crash()
        self._exposed_keys.clear()
        self._exposed_by.clear()
        self._deps.clear()
        self._cascade_aborted.clear()

    # recover() is inherited unchanged: a prepared Short-Commit
    # transaction restarts *in doubt* and conservatively re-acquires its
    # write locks (its pre-crash dependents died with the site, so no
    # exposure tracking survives — blocking until the decision is the safe
    # post-crash behavior, and the recovery oracle's WAL replay holds).


# -- registration ----------------------------------------------------------------


def make_participant(
    *,
    site: Any,
    network: Any,
    scheme: CommitScheme,
    marking: Any = None,
    lock_marks: bool = False,
    commit: Any = None,
    acceptors: tuple[str, ...] = (),
) -> ShortParticipant:
    return ShortParticipant(
        site, network, scheme=scheme, marking=marking,
        lock_marks=lock_marks, commit=commit,
    )


register(EngineSpec(
    scheme=CommitScheme.SHORT,
    coordinator=make_coordinator,
    participant=make_participant,
))
