"""The incumbent engines: O2PC and distributed 2PL over standard 2PC.

Both schemes run the unmodified :class:`~repro.commit.coordinator.Coordinator`
and :class:`~repro.commit.participant.Participant`; the scheme enum member
selects the participant's vote-time behavior (local commit + full lock
release under ``O2PC``, prepare + lock retention under ``TWO_PL``).  The
factories here only adapt those constructors to the registry's uniform
keyword signature.
"""

from __future__ import annotations

from typing import Any

from repro.commit.base import CommitScheme
from repro.commit.coordinator import Coordinator
from repro.commit.participant import Participant
from repro.protocols import EngineSpec, register


def make_coordinator(
    *,
    env: Any,
    network: Any,
    spec: Any,
    scheme: CommitScheme,
    marking: Any = None,
    config: Any = None,
    failures: Any = None,
    acceptors: tuple[str, ...] = (),
) -> Coordinator:
    """Base coordinator; ``acceptors`` is ignored (2PC has no acceptors)."""
    return Coordinator(
        env, network, spec, scheme=scheme, marking=marking,
        config=config, failures=failures,
    )


def make_participant(
    *,
    site: Any,
    network: Any,
    scheme: CommitScheme,
    marking: Any = None,
    lock_marks: bool = False,
    commit: Any = None,
    acceptors: tuple[str, ...] = (),
) -> Participant:
    """Base participant; ``commit``/``acceptors`` are coordinator-side knobs."""
    return Participant(
        site, network, scheme=scheme, marking=marking, lock_marks=lock_marks,
    )


for _scheme in (CommitScheme.O2PC, CommitScheme.TWO_PL):
    register(EngineSpec(
        scheme=_scheme,
        coordinator=make_coordinator,
        participant=make_participant,
    ))
