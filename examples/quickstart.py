#!/usr/bin/env python3
"""Quickstart: one O2PC transaction end to end.

Builds a three-site multidatabase, runs a cross-site funds transfer under
the optimistic two-phase commit protocol, then runs a second transfer that
a site refuses — showing the compensation path restore the money — and
finally checks the paper's correctness criterion on the whole run.

Run:  python3 examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def main() -> None:
    # A three-site system running O2PC with the P1 complementary protocol.
    system = System(SystemConfig(
        n_sites=3,
        scheme=CommitScheme.O2PC,
        protocol="P1",
    ))
    print("sites:", ", ".join(sorted(system.sites)))
    print("initial balance of k0 everywhere:",
          system.sites["S1"].store.get("k0"))

    # --- a successful transfer -------------------------------------------
    transfer = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 30})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 30})]),
    ])
    outcome = system.run_transaction(transfer)
    print(f"\nT1 (transfer 30 from S1 to S2): "
          f"{'COMMITTED' if outcome.committed else 'ABORTED'} "
          f"in {outcome.latency:.1f} time units")
    print("  S1.k0 =", system.sites["S1"].store.get("k0"),
          " S2.k0 =", system.sites["S2"].store.get("k0"))

    # --- a refused transfer: semantic atomicity via compensation ----------
    refused = GlobalTxnSpec(txn_id="T2", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 50})]),
        # S3 votes NO (models a unilateral local refusal).
        SubtxnSpec("S3", [SemanticOp("deposit", "k0", {"amount": 50})],
                   vote=VotePolicy.FORCE_NO),
    ])
    outcome = system.run_transaction(refused)
    system.env.run()  # drain the compensation
    print(f"\nT2 (transfer 50 from S1 to S3, S3 refuses): "
          f"{'COMMITTED' if outcome.committed else 'ABORTED'}")
    print("  compensated at:", ", ".join(outcome.compensated_sites) or "-")
    print("  S1.k0 =", system.sites["S1"].store.get("k0"),
          "(the 50 came back)",
          " S3.k0 =", system.sites["S3"].store.get("k0"))

    # --- the correctness criterion on the full run -------------------------
    system.check_correctness()
    print("\ncorrectness criterion: OK (no regular cycles, no local cycles)")

    # Peek at the serialization-graph machinery.
    gsg = system.global_sg()
    for site_id in sorted(gsg.locals):
        edges = gsg.locals[site_id].edges()
        if edges:
            print(f"  SG_{site_id}:",
                  ", ".join(f"{a}->{b}" for a, b in edges))


if __name__ == "__main__":
    main()
