#!/usr/bin/env python3
"""Inter-bank funds transfers: semantic atomicity conserves money.

A classic restricted-model workload: transfers decompose into a
``withdraw`` at one bank and a ``deposit`` at another, each with its
predeclared counter-operation.  Even when transfers abort mid-flight —
after the withdrawing bank has already locally committed and released its
locks — the compensating ``deposit`` restores the balance, so the total
money in the system is invariant.

The example also contrasts O2PC with the 2PL baseline on the same workload:
identical final balances, very different lock-hold profiles.

Run:  python3 examples/banking_transfer.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.workload import banking_transfers


def total_money(system: System) -> int:
    return sum(
        value
        for site in system.sites.values()
        for value in site.store.snapshot().values()
        if isinstance(value, int)
    )


def run(scheme: CommitScheme) -> None:
    system = System(SystemConfig(n_sites=3, scheme=scheme, protocol="P1"))
    before = total_money(system)
    specs = banking_transfers(
        sorted(system.sites), n_transfers=30, abort_probability=0.25, seed=7,
    )
    system.submit_stream(specs, arrival_mean=3.0)
    system.env.run()
    after = total_money(system)

    report = system.metrics()
    print(f"\n=== {scheme.value} ===")
    print(f"transfers: {report.committed} committed, {report.aborted} aborted")
    print(f"compensations: {report.compensations}")
    print(f"total money before: {before}, after: {after} "
          f"({'conserved' if before == after else 'LOST!'})")
    print(f"mean lock-hold: {report.mean_lock_hold:.2f}  "
          f"mean latency: {report.mean_latency:.1f}")
    assert before == after, "semantic atomicity must conserve money"
    system.check_correctness()


def main() -> None:
    print("30 inter-bank transfers, 25% refused by the receiving bank")
    run(CommitScheme.O2PC)
    run(CommitScheme.TWO_PL)
    print("\nSame balances either way; O2PC holds locks for less time.")


if __name__ == "__main__":
    main()
