#!/usr/bin/env python3
"""Failure drill: crash the coordinator mid-commit and watch who blocks.

The paper's motivating problem (Section 1): 2PC is a blocking protocol —
a participant that voted YES holds its locks until the coordinator's
decision arrives, so a coordinator crash freezes the participant's data
for the whole outage.  O2PC participants release at vote time and sail
through the same outage.

The drill crashes the coordinator for 150 time units right between
collecting the votes and sending the decision, then measures how long a
bystander transaction at one of the participant sites is stalled.

Run:  python3 examples/failure_drill.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec

OUTAGE = 150.0


def drill(scheme: CommitScheme) -> None:
    system = System(SystemConfig(n_sites=2, scheme=scheme))
    proc = system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
    ]))
    # Votes reach the coordinator at t=6; the decision record is forced at
    # t=6.5.  Crash inside that window.
    system.failures.schedule(
        CrashPlan(site_id="coord.T1", at=6.2, duration=OUTAGE)
    )

    # A bystander arrives at t=10 wanting the same account at S1.
    stall = {}

    def bystander():
        yield system.env.timeout(10.0)
        requested = system.env.now
        yield system.run_local(
            "S1", "L1", [SemanticOp("deposit", "k0", {"amount": 1})],
        )
        stall["time"] = system.env.now - requested

    system.env.process(bystander())
    outcome = system.env.run(proc)
    system.env.run()

    max_hold = max(
        h.duration
        for site in system.sites.values()
        for h in site.locks.hold_log
        if h.txn_id == "T1"
    )
    print(f"\n=== {scheme.value} ===")
    print(f"T1 {'committed' if outcome.committed else 'aborted'} "
          f"at t={outcome.end_time:.1f} "
          f"(decision delayed by the {OUTAGE:.0f}-unit coordinator outage)")
    print(f"T1's longest lock hold: {max_hold:.1f} time units")
    print(f"bystander stalled for: {stall['time']:.1f} time units")


def main() -> None:
    print(f"Coordinator crashes for {OUTAGE:.0f} time units after the votes.")
    drill(CommitScheme.TWO_PL)
    drill(CommitScheme.O2PC)
    print(
        "\nUnder 2PL the participants sat in the prepared state holding"
        "\nlocks for the whole outage (the blocking problem); under O2PC"
        "\nthey had already released at vote time, so the bystander ran"
        "\nimmediately and only the transaction's own completion waited."
    )


if __name__ == "__main__":
    main()
