#!/usr/bin/env python3
"""Correctness audit: watch a regular cycle form — and P1 prevent it.

Reproduces the paper's central correctness hazard as an observable event:

* ``T1`` spans two sites and aborts after locally committing at S1;
* ``T2`` reads the *compensated* state at S2 but the *uncompensated* state
  at S1 — it is serialized after ``CT1`` at one site and before it at the
  other, a **regular cycle** in the global serialization graph and a
  violation of atomicity of compensation (it observed both worlds).

Running the same schedule under protocol P1 shows rule R1 rejecting T2's
subtransaction until the compensation has run, the retry succeeding, and
the criterion holding.

Run:  python3 examples/correctness_audit.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.sg import check_atomicity_of_compensation, find_regular_cycle
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp


def run(protocol: str):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol, n_sites=2,
    ))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "T1-dirty")]),
        SubtxnSpec("S2", [WriteOp("k0", "T1-dirty")],
                   vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(4.2)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S2", [ReadOp("k0")]),
            SubtxnSpec("S1", [ReadOp("k0")]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    return system


def report(protocol: str) -> None:
    system = run(protocol)
    print(f"\n=== O2PC + protocol {protocol} ===")
    t2 = next(o for o in system.outcomes if o.txn_id == "T2")
    print(f"T2: {'committed' if t2.committed else 'aborted'}, "
          f"R1 rejections: {t2.rejections}")
    reads = {
        site_id: system.sites[site_id].ltm.read_results.get("T2", {})
        for site_id in sorted(system.sites)
    }
    print(f"T2 read k0 at S1 as {reads['S1'].get('k0')!r}, "
          f"at S2 as {reads['S2'].get('k0')!r}")

    gsg = system.global_sg()
    cycle = find_regular_cycle(gsg, system.effective_regular_nodes())
    atomicity = check_atomicity_of_compensation(system.global_history())
    if cycle:
        print("regular cycle:", " -> ".join(cycle), " (INCORRECT history)")
    else:
        print("no regular cycle (criterion holds)")
    print("atomicity of compensation:",
          "violated by " + ", ".join(f"{r} read both {t} and CT"
                                     for r, t in atomicity.violations)
          if atomicity.violations else "preserved")


def main() -> None:
    print("Schedule: T1 aborts after exposing k0 at S1; "
          "T2 reads k0 at both sites in the danger window.")
    report("none")
    report("P1")


if __name__ == "__main__":
    main()
