#!/usr/bin/env python3
"""Extending the restricted model: your own semantic operations.

The paper's restricted model assumes each site exposes "a well-defined
repertoire of operations" with predeclared counter-tasks (Section 3.1-3.2).
This example builds such a repertoire for a ticketing domain:

* ``sell(count)``      — decrease remaining seats; compensation ``refund``;
* ``refund(count)``    — the inverse;
* ``hold(ref)``        — place a named hold on a seat block; compensation
                         releases exactly that hold;
* ``release(ref)``     — the inverse;
* ``print_ticket()``   — a *real action* (paper §2): ink on paper cannot be
                         compensated, so its site holds locks until the
                         decision.

It then runs a cross-site sale that fails at one site, and shows the custom
compensations restoring the domain state — including an intervening sale by
another customer that a state-based undo would have clobbered.

Run:  python3 examples/custom_actions.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.compensation import ActionRegistry, SemanticAction
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def ticketing_registry() -> ActionRegistry:
    """The ticketing repertoire; see the module docstring."""
    registry = ActionRegistry()
    registry.register(SemanticAction(
        name="sell",
        apply=lambda current, count: (current or 0) - count,
        inverse=lambda params, before: ("refund", {"count": params["count"]}),
    ))
    registry.register(SemanticAction(
        name="refund",
        apply=lambda current, count: (current or 0) + count,
        inverse=lambda params, before: ("sell", {"count": params["count"]}),
    ))
    registry.register(SemanticAction(
        name="hold",
        apply=lambda current, ref: sorted(set(current or []) | {ref}),
        inverse=lambda params, before: ("release", {"ref": params["ref"]}),
    ))
    registry.register(SemanticAction(
        name="release",
        apply=lambda current, ref: sorted(set(current or []) - {ref}),
        inverse=lambda params, before: ("hold", {"ref": params["ref"]}),
    ))
    registry.register(SemanticAction(
        name="print_ticket",
        apply=lambda current: (current or 0) + 1,
        inverse=None,   # real action: the printed ticket exists
    ))
    return registry


def main() -> None:
    system = System(SystemConfig(n_sites=2, protocol="P1"))
    # Swap in the domain repertoire at every site.
    registry = ticketing_registry()
    for site in system.sites.values():
        site.registry = registry
    system.sites["S1"].load({"seats": 50, "holds": []})
    system.sites["S2"].load({"seats": 80})

    print("venue A (S1): 50 seats; venue B (S2): 80 seats")

    # A combined booking: 4 seats at A (with a named hold) + 2 at B, but
    # venue B refuses (say, the block is blacked out).
    booking = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [
            SemanticOp("sell", "seats", {"count": 4}),
            SemanticOp("hold", "holds", {"ref": "grp-42"}),
        ]),
        SubtxnSpec("S2", [SemanticOp("sell", "seats", {"count": 2})],
                   vote=VotePolicy.FORCE_NO),
    ])
    proc = system.submit(booking)

    # Another customer buys a seat at venue A between T1's local commit
    # and its compensation: the semantic refund must not clobber it.
    def walk_in():
        yield system.env.timeout(6.0)
        yield system.run_local(
            "S1", "L1", [SemanticOp("sell", "seats", {"count": 1})],
        )

    system.env.process(walk_in())
    outcome = system.env.run(proc)
    system.env.run()

    print(f"\nbooking T1: {'CONFIRMED' if outcome.committed else 'REFUNDED'} "
          f"(refused by {outcome.no_votes}, compensated at "
          f"{outcome.compensated_sites})")
    seats_a = system.sites["S1"].store.get("seats")
    holds_a = system.sites["S1"].store.get("holds")
    seats_b = system.sites["S2"].store.get("seats")
    print(f"venue A: {seats_a} seats (50 - 1 walk-in; T1's 4 refunded), "
          f"holds={holds_a}")
    print(f"venue B: {seats_b} seats (untouched)")
    assert seats_a == 49 and holds_a == [] and seats_b == 80
    system.check_correctness()
    print("\ncorrectness criterion: OK — semantic compensation preserved "
          "the walk-in sale")


if __name__ == "__main__":
    main()
