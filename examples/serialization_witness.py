#!/usr/bin/env python3
"""Serialization witness: prove a run was (semantically) serializable.

Runs an O2PC/P1 workload with aborts, then uses the theory layer to produce
constructive evidence of correctness:

* the global serialization graph's condensation in topological order — the
  serial schedule the execution is equivalent to, with compensations' own
  (allowed) cycles shown as grouped components;
* the atomicity-of-compensation audit: nobody read both a transaction's
  exposed updates and its compensation's;
* a transaction timeline for the same run.

Run:  python3 examples/serialization_witness.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.sg import check_atomicity_of_compensation, serialization_order
from repro.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    system = System(SystemConfig(
        n_sites=3, scheme=CommitScheme.O2PC, protocol="P1",
        keys_per_site=8,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=12, abort_probability=0.25,
        read_fraction=0.5, arrival_mean=3.0, zipf_theta=0.5,
    ), seed=4)
    gen.run()

    committed = sum(1 for o in system.outcomes if o.committed)
    print(f"{committed} committed, {len(system.outcomes) - committed} "
          f"aborted (compensated)\n")
    print(system.timeline())

    print("\nserialization witness (topological order of the global SG):")
    order = serialization_order(
        system.global_sg(), system.effective_regular_nodes(),
    )
    rendered = []
    for group in order:
        rendered.append(
            group[0] if len(group) == 1 else "{" + " ".join(group) + "}"
        )
    print("  " + "  <  ".join(rendered))
    grouped = [g for g in order if len(g) > 1]
    if grouped:
        print("  (braced groups are compensation-only cycles — the kind "
              "the criterion allows)")

    audit = check_atomicity_of_compensation(system.global_history())
    print(f"\natomicity of compensation: "
          f"{'preserved' if audit.ok else audit.violations}")


if __name__ == "__main__":
    main()
