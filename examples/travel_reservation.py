#!/usr/bin/env python3
"""Travel reservations across competing, autonomous agencies.

The paper's motivating multidatabase scenario (Section 1): several
computerized reservation systems, possibly owned by competing businesses,
are integrated so a trip can book a flight, a hotel, and a car in one
global transaction.  Autonomy is paramount — a competitor's coordinator
must never be able to block a site's resources (which standard 2PC lets it
do), and any site may refuse a booking unilaterally.

This example books a batch of multi-leg trips under O2PC/P1, injects
refusals, and reports how reservations, cancellations (compensations), and
the correctness criterion come out.

Run:  python3 examples/travel_reservation.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.workload import travel_reservations


def main() -> None:
    # Four agencies: two airlines, a hotel chain, a car-rental company.
    agencies = {
        "S1": "SkyHigh Air",
        "S2": "TransGlobal Air",
        "S3": "RestWell Hotels",
        "S4": "RoadRunner Cars",
    }
    system = System(SystemConfig(
        n_sites=4,
        scheme=CommitScheme.O2PC,
        protocol="P1",
    ))
    for site_id, name in agencies.items():
        print(f"{site_id}: {name} "
              f"(resources k0..k19, initially {system.sites[site_id].store.get('k0')} booked units)")

    # Each trip reserves seats/rooms/cars at 2-3 agencies; about one trip
    # in five is refused by some agency (overbooked, local policy, ...).
    trips = travel_reservations(
        sorted(system.sites), n_trips=40, abort_probability=0.2, seed=11,
    )
    system.submit_stream(trips, arrival_mean=4.0)
    system.env.run()

    report = system.metrics()
    print(f"\n{report.committed} trips booked, {report.aborted} refused")
    print(f"compensating cancellations run: {report.compensations}")
    print(f"mean booking latency: {report.mean_latency:.1f} time units")
    print(f"messages per trip: {report.messages_per_txn:.1f} "
          f"(the standard 2PC pattern - O2PC adds none)")

    # Autonomy in numbers: no lock was ever held across a decision wait.
    longest_hold = max(
        h.duration
        for site in system.sites.values()
        for h in site.locks.hold_log
    )
    print(f"longest lock hold at any agency: {longest_hold:.1f} time units")

    # Semantic atomicity: every refused trip's reservations were cancelled.
    refused = [o for o in system.outcomes if not o.committed]
    for outcome in refused[:5]:
        print(f"  {outcome.txn_id}: refused by {outcome.no_votes or ['(protocol)']}"
              f", cancelled at {outcome.compensated_sites or ['-']}")

    system.check_correctness()
    print("\ncorrectness criterion: OK")


if __name__ == "__main__":
    main()
