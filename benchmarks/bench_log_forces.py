"""LOG-FORCE — forced log writes: a cost the paper does not discuss.

Every 2PC participant force-writes its PREPARE record and the final
COMMIT/ABORT; the coordinator forces its decision.  O2PC adds one more
forced record per YES vote — LOCAL_COMMIT — because local commitment makes
the updates durable obligations (a crashed participant must redo them and
compensate, not undo).  This experiment counts forced writes per committed
transaction for both schemes: the optimistic protocol trades a small,
constant durability overhead for its lock-window gains.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(scheme, abort_p=0.0, seed=6):
    system = System(SystemConfig(
        scheme=scheme, n_sites=3, keys_per_site=100,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=40, abort_probability=abort_p,
        arrival_mean=5.0, read_fraction=0.5,
        min_sites=2, max_sites=2,
    ), seed=seed)
    elapsed = gen.run()
    report = system.metrics(elapsed)
    return report


@pytest.fixture(scope="module")
def force_rows():
    rows = []
    for label, scheme in (("2PC/2PL", CommitScheme.TWO_PL),
                          ("O2PC", CommitScheme.O2PC)):
        for p in (0.0, 0.25):
            report = run_once(scheme, p)
            done = report.committed + report.aborted
            rows.append(ExperimentResult(
                params={"scheme": label, "abort_p": p},
                measures={
                    "txns": done,
                    "forced_writes": report.forced_log_writes,
                    "forces_per_txn": report.forced_log_writes / done,
                },
            ))
    return rows


def test_force_table(force_rows):
    print()
    print(format_table(
        force_rows, title="LOG-FORCE: forced log writes per transaction",
    ))


def test_o2pc_pays_one_extra_force_per_participant(force_rows):
    by = {(r.params["scheme"], r.params["abort_p"]): r.measures
          for r in force_rows}
    gap = (by[("O2PC", 0.0)]["forces_per_txn"]
           - by[("2PC/2PL", 0.0)]["forces_per_txn"])
    # Two participants per transaction -> two extra LOCAL_COMMIT forces.
    assert gap == pytest.approx(2.0, abs=0.01)


def test_abort_path_costs_more_forces_under_o2pc(force_rows):
    """Compensation transactions force their own COMMIT records."""
    by = {(r.params["scheme"], r.params["abort_p"]): r.measures
          for r in force_rows}
    assert (by[("O2PC", 0.25)]["forces_per_txn"]
            > by[("2PC/2PL", 0.25)]["forces_per_txn"])


def test_bench_forced_write_accounting(benchmark):
    report = benchmark(run_once, CommitScheme.O2PC)
    assert report.forced_log_writes > 0
