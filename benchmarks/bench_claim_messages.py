"""CLAIM-MSG — O2PC (and O2PC/P1) adds no messages over standard 2PC.

Section 7: "it makes no changes to the message transfer pattern or the
structure of the standard 2PC protocol."  The table counts every wire
message per scheme on identical workloads, commit and abort paths alike.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_counts(scheme, protocol, abort_probability, seed=3):
    system = System(SystemConfig(
        scheme=scheme, protocol=protocol, n_sites=4, keys_per_site=100,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=40, abort_probability=abort_probability,
            arrival_mean=6.0,
            # All-read workload: zero data conflicts, so the message trace
            # is a pure function of the protocol (no deadlock-victim noise).
            read_fraction=1.0,
        ),
        seed=seed,
    )
    gen.run()
    counts = system.network.counts_by_type()
    counts["TOTAL"] = system.network.total_sent()
    return counts


@pytest.fixture(scope="module")
def message_matrix():
    rows = []
    for label, scheme, protocol in (
        ("2PC/2PL", CommitScheme.TWO_PL, "none"),
        ("O2PC", CommitScheme.O2PC, "none"),
        ("O2PC/P1", CommitScheme.O2PC, "P1"),
        ("O2PC/P2", CommitScheme.O2PC, "P2"),
    ):
        for p in (0.0, 0.3):
            counts = run_counts(scheme, protocol, p)
            rows.append(ExperimentResult(
                params={"scheme": label, "abort_p": p},
                measures=dict(counts),
            ))
    return rows


def test_message_table(message_matrix):
    print()
    print(format_table(
        message_matrix, title="CLAIM-MSG: wire messages by scheme",
        precision=2,
    ))


def test_o2pc_identical_to_2pc(message_matrix):
    by_key = {
        (r.params["scheme"], r.params["abort_p"]): r.measures
        for r in message_matrix
    }
    for p in (0.0, 0.3):
        assert by_key[("O2PC", p)] == by_key[("2PC/2PL", p)]


def test_p1_adds_nothing_without_aborts(message_matrix):
    """Section 6: P1's marking sets cost nothing while the optimistic
    assumption holds — at 0% aborts the message trace is bit-identical.
    (P2 is different by nature: its locally-committed marks exist during
    *every* commit window, so it can reject transactions even without
    aborts — the dual's inherent cost.)"""
    by_key = {
        (r.params["scheme"], r.params["abort_p"]): r.measures
        for r in message_matrix
    }
    assert by_key[("O2PC/P1", 0.0)] == by_key[("O2PC", 0.0)]


def test_marking_protocols_add_no_message_types(message_matrix):
    """Under aborts, R1 rejections re-send *existing* execution-phase
    messages (SUBTXN_REQ retries); the protocol introduces no new message
    types and no extra commit-protocol rounds."""
    by_key = {
        (r.params["scheme"], r.params["abort_p"]): r.measures
        for r in message_matrix
    }
    base_types = set(by_key[("O2PC", 0.3)])
    for scheme in ("O2PC/P1", "O2PC/P2"):
        measures = by_key[(scheme, 0.3)]
        assert set(measures) <= base_types
        # Commit-protocol rounds never exceed one per transaction per site.
        assert measures["VOTE_REQ"] <= by_key[("O2PC", 0.3)]["VOTE_REQ"]


def test_bench_message_accounting(benchmark):
    counts = benchmark(run_counts, CommitScheme.O2PC, "P1", 0.2)
    assert counts["TOTAL"] > 0
