"""CLAIM-AUTON — autonomy, quantified.

Section 1: under 2PC a site that votes YES "becomes a subordinate of the
external coordinator" — its resources are pledged until the decision
arrives, and "a site belonging to a competing organization can harmfully or
mistakenly block the local resources".  The measurable quantity is the
**subordination window**: how long each site holds locks on behalf of a
transaction *after* voting.  Under O2PC it is identically zero.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.net import LatencyModel
from repro.workload import WorkloadConfig, WorkloadGenerator


def subordination_windows(scheme, latency=1.0, seed=4):
    """Per-site lock-hold time past the vote, across a workload."""
    system = System(SystemConfig(
        scheme=scheme, n_sites=3, keys_per_site=100,
        latency=LatencyModel(base=latency), seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=30, arrival_mean=5.0, read_fraction=0.3,
    ), seed=seed)
    gen.run()

    windows = []
    for outcome in system.outcomes:
        spec = system.coordinators[outcome.txn_id].spec
        # The vote happens one hop after the coordinator's VOTE_REQ; the
        # participant's own clock for it is the moment its locks shrink to
        # the post-vote set.  Measure: last lock release minus first
        # possible vote time — under O2PC both coincide.
        for sub in spec.subtxns:
            holds = [
                h for h in system.sites[sub.site_id].locks.hold_log
                if h.txn_id == outcome.txn_id
            ]
            if not holds:
                continue
            vote_time = min(
                h.released_at for h in holds
            )  # earliest release = vote moment (S locks or full release)
            last_release = max(h.released_at for h in holds)
            windows.append(last_release - vote_time)
    return windows


@pytest.fixture(scope="module")
def autonomy_rows():
    rows = []
    for latency in (1.0, 3.0):
        w2 = subordination_windows(CommitScheme.TWO_PL, latency)
        wo = subordination_windows(CommitScheme.O2PC, latency)
        rows.append(ExperimentResult(
            params={"latency": latency},
            measures={
                "subordination_2pl": sum(w2) / len(w2),
                "subordination_o2pc": sum(wo) / len(wo),
                "max_2pl": max(w2),
                "max_o2pc": max(wo),
            },
        ))
    return rows


def test_autonomy_table(autonomy_rows):
    print()
    print(format_table(
        autonomy_rows,
        title="CLAIM-AUTON: post-vote lock pledge (subordination window)",
    ))


def test_o2pc_subordination_is_zero(autonomy_rows):
    for row in autonomy_rows:
        assert row.measures["subordination_o2pc"] == 0.0
        assert row.measures["max_o2pc"] == 0.0


def test_2pl_subordination_is_a_decision_round(autonomy_rows):
    """The window proxy (last release minus earliest release) reads 0 for
    single-lock subtransactions, so the *max* carries the exact claim:
    one vote hop + the forced decision log + one decision hop."""
    for row in autonomy_rows:
        latency = row.params["latency"]
        assert row.measures["max_2pl"] == pytest.approx(
            2 * latency + 0.5, abs=0.01,
        )
        assert 0 < row.measures["subordination_2pl"] < row.measures["max_2pl"]


def test_bench_window_measurement(benchmark):
    windows = benchmark(subordination_windows, CommitScheme.O2PC)
    assert windows
