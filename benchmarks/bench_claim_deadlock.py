"""CLAIM-DEADLOCK — marking-set contention (Section 6.2 remark).

Storing the marking sets as lockable database items produces the deadlock
the paper describes (R1 reader of ``sitemarks.k`` vs. compensating
subtransaction holding data and requesting the marking set); the paper's
"acceptable compromise" (check first, unlock immediately, re-validate at
vote) avoids it.  Persistence of compensation holds in both modes.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp


def run_once(lock_marks: bool):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1", n_sites=3,
        lock_marks=lock_marks, op_duration=1.0,
    ))
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "T1")]),
        SubtxnSpec("S2", [WriteOp("k0", "T1")], vote=VotePolicy.FORCE_NO),
    ]))

    def submit_t2():
        yield system.env.timeout(7.5)
        yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S1", [ReadOp("k1"), ReadOp("k2"), ReadOp("k0")]),
            SubtxnSpec("S3", [ReadOp("k1")]),
        ]))

    system.env.process(submit_t2())
    system.env.run()
    return system


@pytest.fixture(scope="module")
def deadlock_rows():
    rows = []
    for lock_marks in (True, False):
        system = run_once(lock_marks)
        deadlocks = sum(
            len(site.locks.detector.detected)
            for site in system.sites.values()
        )
        completed = sum(
            p.compensator.stats.completed
            for p in system.participants.values()
        )
        retries = sum(
            p.compensator.stats.retries
            for p in system.participants.values()
        )
        system.check_correctness()
        rows.append(ExperimentResult(
            params={"mode": "locked marks" if lock_marks else "compromise"},
            measures={
                "deadlocks": deadlocks,
                "compensations": completed,
                "comp_retries": retries,
                "k0@S1": system.sites["S1"].store.get("k0"),
            },
        ))
    return rows


def test_deadlock_table(deadlock_rows):
    print()
    print(format_table(
        deadlock_rows,
        title="CLAIM-DEADLOCK: marking-set locking vs the compromise",
        precision=0,
    ))


def test_locked_marks_mode_deadlocks(deadlock_rows):
    assert deadlock_rows[0].measures["deadlocks"] >= 1


def test_compromise_mode_does_not(deadlock_rows):
    assert deadlock_rows[1].measures["deadlocks"] == 0


def test_compensation_persists_in_both_modes(deadlock_rows):
    for row in deadlock_rows:
        assert row.measures["compensations"] >= 1
        assert row.measures["k0@S1"] == 100


def test_bench_deadlock_scenario(benchmark):
    system = benchmark(run_once, True)
    assert system.participants["S1"].compensator.stats.completed == 1
