"""CLAIM-THRU — the optimistic assumption and its crossover.

Section 2: "If finally the transaction is to be aborted ... the overhead
incurred by the protocol is likely to outweigh its benefits" when the
optimistic assumption fails.  Sweeping the abort-vote probability from 0 to
0.5 under a contended workload: O2PC wins on waiting/latency at low abort
rates (early release), while its compensation overhead grows linearly with
aborts — the regime where 2PL's simple roll-back is the cheaper undo.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(scheme, abort_probability, seed):
    system = System(SystemConfig(scheme=scheme, n_sites=4, keys_per_site=8))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=80,
            abort_probability=abort_probability,
            read_fraction=0.4,
            arrival_mean=2.0,
            zipf_theta=0.6,
        ),
        seed=seed,
    )
    elapsed = gen.run()
    return system.metrics(elapsed)


@pytest.fixture(scope="module")
def abort_sweep():
    rows = []
    for p in (0.0, 0.1, 0.25, 0.5):
        m_2pl = [run_once(CommitScheme.TWO_PL, p, s) for s in (1, 2, 3, 4)]
        m_o2 = [run_once(CommitScheme.O2PC, p, s) for s in (1, 2, 3, 4)]

        def avg(ms, attr):
            return sum(getattr(m, attr) for m in ms) / len(ms)

        rows.append(ExperimentResult(
            params={"abort_p": p},
            measures={
                "thru_2pl": avg(m_2pl, "throughput"),
                "thru_o2pc": avg(m_o2, "throughput"),
                "wait_2pl": avg(m_2pl, "total_lock_wait"),
                "wait_o2pc": avg(m_o2, "total_lock_wait"),
                "compensations": avg(m_o2, "compensations"),
                "lat_2pl": avg(m_2pl, "mean_latency"),
                "lat_o2pc": avg(m_o2, "mean_latency"),
            },
        ))
    return rows


def test_crossover_table(abort_sweep):
    print()
    print(format_table(
        abort_sweep,
        title="CLAIM-THRU: throughput / waiting vs abort probability",
    ))


def test_o2pc_wins_when_aborts_rare(abort_sweep):
    row = abort_sweep[0]  # abort_p = 0
    assert row.measures["wait_o2pc"] < row.measures["wait_2pl"]
    assert row.measures["thru_o2pc"] > row.measures["thru_2pl"]
    assert row.measures["compensations"] == 0


def test_compensation_overhead_grows_with_aborts(abort_sweep):
    comps = [r.measures["compensations"] for r in abort_sweep]
    assert comps[0] == 0
    assert comps[-1] > comps[1] > 0


def test_o2pc_advantage_shrinks_as_aborts_grow(abort_sweep):
    """The crossover shape: O2PC's relative advantage at 0% aborts exceeds
    its advantage at 50% aborts (compensations re-lock data and redo work,
    eroding the early-release gain)."""

    def thru_ratio(row):
        return row.measures["thru_o2pc"] / max(row.measures["thru_2pl"], 1e-9)

    def wait_ratio(row):
        return row.measures["wait_2pl"] / max(row.measures["wait_o2pc"], 1e-9)

    assert thru_ratio(abort_sweep[0]) > thru_ratio(abort_sweep[-1])
    assert wait_ratio(abort_sweep[0]) > wait_ratio(abort_sweep[-1])


def test_bench_contended_o2pc(benchmark):
    result = benchmark(run_once, CommitScheme.O2PC, 0.2, 1)
    assert result.committed > 0
