"""CLAIM-CORRECT — the criterion on randomized executions.

Three facets:

* with **no global aborts** the criterion reduces to plain serializability,
  and O2PC histories satisfy it (acyclic SGs, zero compensations);
* with aborts, protected executions never contain an **effective** regular
  cycle — a cycle through a *committed* transaction — across protocols and
  seeds.  (The unprotected counterexample is deterministic — see
  tests/integration/test_correctness.py — rather than statistical: random
  workloads rarely hit the tight interleaving.)
* the **literal** criterion (cycles through aborted-then-compensated
  transactions count too) can be violated even under P1: the practical
  "acceptable compromise" implementation aborts the offender at vote time,
  *after* its updates were exposed by the local commit, leaving a cycle
  confined to revoked transactions.  The census column ``strict_cycles``
  reports how often that residue occurs — a reproduction finding about the
  protocol, not a bug in the checker.

The benchmark measures the full history → SG → verdict pipeline.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.sg import GlobalSG, find_regular_cycle
from repro.sg.cycles import find_local_cycle
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_workload(protocol, abort_probability, seed):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol,
        n_sites=4, keys_per_site=10,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=50, abort_probability=abort_probability,
            read_fraction=0.5, arrival_mean=2.0, zipf_theta=0.5,
            locals_per_global=0.5,
        ),
        seed=seed,
    )
    gen.run()
    return system


@pytest.fixture(scope="module")
def verdicts():
    rows = []
    for protocol in ("P1", "P2", "SIMPLE"):
        for p in (0.0, 0.3):
            effective = strict = local = 0
            runs = 0
            for seed in (1, 2, 3):
                system = run_workload(protocol, p, seed)
                gsg = system.global_sg()
                effective += find_regular_cycle(
                    gsg, system.effective_regular_nodes()
                ) is not None
                strict += find_regular_cycle(gsg) is not None
                local += find_local_cycle(gsg) is not None
                runs += 1
            rows.append(ExperimentResult(
                params={"protocol": protocol, "abort_p": p},
                measures={"runs": runs, "effective_cycles": effective,
                          "strict_cycles": strict, "local_cycles": local},
            ))
    return rows


def test_verdict_table(verdicts):
    print()
    print(format_table(
        verdicts,
        title="CLAIM-CORRECT: cycle census over randomized executions",
        precision=2,
    ))


def test_protected_runs_never_violate_effective_criterion(verdicts):
    for row in verdicts:
        assert row.measures["effective_cycles"] == 0
        assert row.measures["local_cycles"] == 0


def test_no_aborts_means_no_compensations_at_all():
    """Reduction to serializability: a run in which every global
    transaction commits has no compensations and a fully acyclic SG."""
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1",
        n_sites=4, keys_per_site=100,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=40, abort_probability=0.0,
            read_fraction=0.6, arrival_mean=4.0,
        ),
        seed=9,
    )
    gen.run()
    assert all(o.committed for o in system.outcomes)
    gsg = system.global_sg()
    from repro.sg.graph import TxnKind

    assert not gsg.nodes_of_kind(TxnKind.COMPENSATING)
    assert find_regular_cycle(gsg) is None


def test_bench_sg_pipeline(benchmark):
    system = run_workload("P1", 0.3, 1)
    history = system.global_history()
    effective = system.effective_regular_nodes()

    def pipeline():
        gsg = GlobalSG.from_history(history)
        return find_regular_cycle(gsg, effective), find_local_cycle(gsg)

    regular, local = benchmark(pipeline)
    assert regular is None and local is None
