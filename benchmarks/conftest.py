"""Shared benchmark helpers.

Every benchmark prints the experiment table it regenerates (run with
``pytest benchmarks/ --benchmark-only -s`` to see them); the numbers are
recorded in EXPERIMENTS.md.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
