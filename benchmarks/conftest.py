"""Shared benchmark helpers.

Every benchmark prints the experiment table it regenerates (run with
``pytest benchmarks/ --benchmark-only -s`` to see them); the numbers are
recorded in EXPERIMENTS.md.

The ``repro`` package resolves exactly as in ROADMAP's tier-1 invocation
(``PYTHONPATH=src python -m pytest``): the repo-root ``conftest.py`` covers
any pytest run started from the checkout, so no local ``sys.path`` surgery
happens here anymore.
"""
