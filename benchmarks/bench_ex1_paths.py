"""EX1 — Example 1: minimal representations and "includes".

Regenerates the paper's worked example verbatim, then benchmarks the
minimal-representation machinery on chains of sites.
"""

from repro.harness import ExperimentResult, format_table
from repro.sg import GlobalSG, minimal_representations, path_includes


def example1() -> GlobalSG:
    gsg = GlobalSG()
    gsg.site("S1").add_path("CT1", "T2")
    gsg.site("S2").add_path("CT1", "T2", "CT3")
    gsg.site("S3").add_path("CT3", "CT1")
    return gsg


def test_example1_table():
    gsg = example1()
    reps = minimal_representations(gsg, "CT1", "CT3")
    rows = [
        ExperimentResult(
            params={"representation": i + 1},
            measures={
                "segments": len(rep),
                "path": "; ".join(map(repr, rep)),
            },
        )
        for i, rep in enumerate(reps)
    ]
    print()
    print(format_table(rows, title="EX1: minimal representations of CT1 -> CT3"))
    print(f"includes T2: {path_includes(gsg, 'CT1', 'CT3', 'T2')}")
    assert len(reps) == 1
    assert len(reps[0]) == 1
    assert not path_includes(gsg, "CT1", "CT3", "T2")


def chain_gsg(n_sites: int) -> GlobalSG:
    """A chain of sites each advancing the path by one hop, plus shortcut
    sites covering two hops — exercises the shortest-walk search."""
    gsg = GlobalSG()
    for i in range(n_sites):
        gsg.site(f"S{i}").add_path(f"N{i}", f"N{i + 1}")
        if i + 2 <= n_sites:
            gsg.site(f"X{i}").add_path(f"N{i}", f"M{i}", f"N{i + 2}")
    return gsg


def test_bench_minimal_representations_chain(benchmark):
    gsg = chain_gsg(24)
    reps = benchmark(minimal_representations, gsg, "N0", "N24")
    assert reps
    # Shortcuts halve the hop count: 12 two-hop segments.
    assert len(reps[0]) == 12


def test_bench_path_includes(benchmark):
    gsg = chain_gsg(24)
    included = benchmark(path_includes, gsg, "N0", "N24", "N12")
    assert included  # N12 is on the even backbone of shortcuts


def test_includes_excludes_odd_nodes_on_shortcut_chain():
    gsg = chain_gsg(24)
    assert not path_includes(gsg, "N0", "N24", "N13")
