"""CLAIM-REAL — non-compensatable actions (Section 2).

Sites performing real actions retain locks and delay the action until the
decision (as in distributed 2PL); all other sites of the transaction still
release early.  The table splits lock-hold times by site class.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.sim import Rng
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def run_mixed(n_txns=30, seed=5):
    """Half the transactions dispense cash (a real action) at S1."""
    system = System(SystemConfig(scheme=CommitScheme.O2PC, n_sites=4))
    rng = Rng(seed)
    sites = sorted(system.sites)

    def submit_all():
        for i in range(1, n_txns + 1):
            yield system.env.timeout(rng.exponential(3.0))
            others = rng.sample(sites[1:], 2)
            subtxns = [SubtxnSpec(
                "S1",
                [SemanticOp("dispense", f"k{i % 20}", {"amount": 5})],
                real_action=True,
            )]
            subtxns += [
                SubtxnSpec(s, [SemanticOp(
                    "withdraw", f"k{i % 20}", {"amount": 5},
                )])
                for s in others
            ]
            system.submit(GlobalTxnSpec(txn_id=f"T{i}", subtxns=subtxns))

    system.env.process(submit_all())
    system.env.run()
    return system


@pytest.fixture(scope="module")
def hold_rows():
    system = run_mixed()
    assert all(o.committed for o in system.outcomes)

    def mean_hold(site_id):
        holds = [
            h.duration for h in system.sites[site_id].locks.hold_log
            if not h.txn_id.startswith("CT")
        ]
        return sum(holds) / len(holds)

    rows = [
        ExperimentResult(
            params={"site": sid,
                    "class": "real action" if sid == "S1" else "compensatable"},
            measures={"mean_hold": mean_hold(sid)},
        )
        for sid in sorted(system.sites)
        if system.sites[sid].locks.hold_log
    ]
    return rows


def test_real_action_table(hold_rows):
    print()
    print(format_table(
        hold_rows, title="CLAIM-REAL: lock-hold by site class",
    ))


def test_real_action_site_holds_longer(hold_rows):
    real = [r for r in hold_rows if r.params["class"] == "real action"]
    comp = [r for r in hold_rows if r.params["class"] == "compensatable"]
    assert real and comp
    slowest_comp = max(r.measures["mean_hold"] for r in comp)
    for row in real:
        assert row.measures["mean_hold"] > slowest_comp


def test_bench_mixed_workload(benchmark):
    system = benchmark(run_mixed, 20)
    assert system.outcomes
