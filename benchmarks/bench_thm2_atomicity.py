"""THM2 — Theorem 2: atomicity of compensation.

On correct histories where every ``CT_i`` writes a superset of ``T_i``'s
writes (our compensations do, by construction), no transaction reads from
both ``T_i`` and ``CT_i``.  Verified over P1-protected simulated runs with
heavy aborts; the unprotected showcase interleaving is the counterexample
showing the theorem's correctness hypothesis is necessary.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.ids import compensated_txn_id, is_compensation_id
from repro.sg import check_atomicity_of_compensation
from repro.sg.atomicity import compensation_writes_cover
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_protected(seed):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1",
        n_sites=4, keys_per_site=10,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=60, abort_probability=0.3,
            read_fraction=0.5, arrival_mean=2.0, zipf_theta=0.5,
        ),
        seed=seed,
    )
    gen.run()
    return system


@pytest.fixture(scope="module")
def atomicity_rows():
    rows = []
    for seed in (1, 2, 3):
        system = run_protected(seed)
        history = system.global_history()
        report = check_atomicity_of_compensation(history)
        compensated = {
            compensated_txn_id(n)
            for site in history.sites.values()
            for n in site.transactions() if is_compensation_id(n)
        }
        covered = sum(
            compensation_writes_cover(history, t) for t in compensated
        )
        rows.append(ExperimentResult(
            params={"seed": seed},
            measures={
                "compensated_txns": len(compensated),
                "ct_writes_cover_t": covered,
                "mixed_readers": len(report.violations),
            },
        ))
    return rows


def test_atomicity_table(atomicity_rows):
    print()
    print(format_table(
        atomicity_rows,
        title="THM2: atomicity of compensation under P1",
        precision=0,
    ))


def test_no_transaction_reads_from_both(atomicity_rows):
    for row in atomicity_rows:
        assert row.measures["mixed_readers"] == 0


def test_precondition_holds_by_construction(atomicity_rows):
    """Our compensations always write >= the forward writes."""
    for row in atomicity_rows:
        assert (
            row.measures["ct_writes_cover_t"]
            == row.measures["compensated_txns"]
        )


def test_runs_actually_compensated(atomicity_rows):
    assert any(r.measures["compensated_txns"] > 0 for r in atomicity_rows)


def test_bench_atomicity_checker(benchmark):
    system = run_protected(1)
    history = system.global_history()
    report = benchmark(check_atomicity_of_compensation, history)
    assert report.ok
