"""CLAIM-P1CONC — protocol overhead and the concurrency trade-off.

Section 6: "the marking sets induce extra conflicts ... only if one of the
transactions aborts" (so P1 costs nothing at 0% aborts), and "there is a
trade-off between the protocol's simplicity and the degree of concurrency
it allows" (SIMPLE rejects far more than P1/P2).
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(protocol, abort_probability, seed):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol=protocol,
        n_sites=4, keys_per_site=10,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=60, abort_probability=abort_probability,
            read_fraction=0.4, arrival_mean=2.5, zipf_theta=0.4,
            # One operation per subtransaction + ordered site visits makes
            # the workload deadlock-free, so the only aborts are the
            # injected ones — isolating the paper's claim that the marking
            # sets cost nothing unless a transaction aborts.
            min_ops=1, max_ops=1,
        ),
        seed=seed,
    )
    elapsed = gen.run()
    metrics = system.metrics(elapsed)
    from repro.sg import find_regular_cycle

    violated = find_regular_cycle(
        system.global_sg(), system.effective_regular_nodes()
    ) is not None
    return metrics, violated


@pytest.fixture(scope="module")
def protocol_sweep():
    rows = []
    for protocol in ("none", "P1", "P2", "SIMPLE"):
        for p in (0.0, 0.15, 0.3):
            results = [run_once(protocol, p, s) for s in (1, 2)]
            ms = [m for m, _ in results]
            rows.append(ExperimentResult(
                params={"protocol": protocol, "abort_p": p},
                measures={
                    "committed": sum(m.committed for m in ms) / len(ms),
                    "rejections": sum(m.rejections for m in ms) / len(ms),
                    "throughput": sum(m.throughput for m in ms) / len(ms),
                    "violations": sum(v for _, v in results),
                },
            ))
    return rows


def test_protocol_table(protocol_sweep):
    print()
    print(format_table(
        protocol_sweep,
        title="CLAIM-P1CONC: commits / R1 rejections by protocol",
    ))


def _rows(protocol_sweep, protocol):
    return [r for r in protocol_sweep if r.params["protocol"] == protocol]


def test_p1_free_without_aborts(protocol_sweep):
    """At 0% aborts there are no marks, hence no rejections and no lost
    commits relative to the unprotected baseline."""
    p1_zero = _rows(protocol_sweep, "P1")[0]
    none_zero = _rows(protocol_sweep, "none")[0]
    assert p1_zero.measures["rejections"] == 0
    assert p1_zero.measures["committed"] == none_zero.measures["committed"]


def test_p1_cost_grows_with_aborts(protocol_sweep):
    rejections = [r.measures["rejections"] for r in _rows(protocol_sweep, "P1")]
    assert rejections[0] == 0
    assert rejections[-1] >= rejections[0]


def test_simple_less_concurrent_than_p1(protocol_sweep):
    """The stricter protocol rejects more and commits no more."""
    p1 = _rows(protocol_sweep, "P1")
    simple = _rows(protocol_sweep, "SIMPLE")
    assert sum(r.measures["rejections"] for r in simple) > sum(
        r.measures["rejections"] for r in p1
    )
    assert sum(r.measures["committed"] for r in simple) <= sum(
        r.measures["committed"] for r in p1
    )


def test_protected_runs_never_violate(protocol_sweep):
    """No marking protocol admitted a regular cycle through a committed
    transaction anywhere in the sweep."""
    for row in protocol_sweep:
        if row.params["protocol"] != "none":
            assert row.measures["violations"] == 0


def test_unprotected_baseline_violates_where_p1_does_not():
    """The reason P1 exists, on the deterministic adversarial
    interleaving: T2 is serialized after CT1 at S2 and before CT1 at S1.
    The raw O2PC baseline commits T2 and yields a regular cycle; P1 defers
    T2 past the compensation and stays correct.  (Random workloads rarely
    hit this window — the targeted schedule pins it.)"""
    from repro.sg import find_regular_cycle
    from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp

    def run(protocol):
        system = System(SystemConfig(
            scheme=CommitScheme.O2PC, protocol=protocol, n_sites=2,
        ))
        system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
            SubtxnSpec("S1", [WriteOp("k0", "dirty")]),
            SubtxnSpec("S2", [WriteOp("k0", "dirty")],
                       vote=VotePolicy.FORCE_NO),
        ]))

        def submit_t2():
            yield system.env.timeout(4.2)
            yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
                SubtxnSpec("S2", [ReadOp("k0")]),
                SubtxnSpec("S1", [ReadOp("k0")]),
            ]))

        system.env.process(submit_t2())
        system.env.run()
        return find_regular_cycle(
            system.global_sg(), system.effective_regular_nodes()
        )

    assert run("none") is not None
    assert run("P1") is None


def test_bench_p1_run(benchmark):
    result, violated = benchmark(run_once, "P1", 0.15, 1)
    assert result.committed > 0
    assert not violated
