"""FIG1 — Figure 1: regular-cycle detection.

Regenerates the paper's Figure 1 configurations (reconstructed from the
text; the original is an image) and verifies the detector's verdict on each,
then benchmarks detection on those shapes and on large synthetic SGs.
"""

import pytest

from repro.harness import ExperimentResult, format_table
from repro.sg import GlobalSG, find_regular_cycle
from repro.sim import Rng


def fig1_configurations() -> dict[str, tuple[GlobalSG, bool]]:
    """name -> (global SG, expected regular-cycle verdict)."""
    configs: dict[str, tuple[GlobalSG, bool]] = {}

    a = GlobalSG()
    a.site("S1").add_edge("T2", "CT1")
    a.site("S2").add_edge("CT1", "T2")
    configs["fig1a: T2->CT1 | CT1->T2"] = (a, True)

    b = GlobalSG()
    b.site("S1").add_path("T1", "CT1", "T2")
    b.site("S2").add_edge("T2", "CT1")
    configs["fig1b: T1->CT1->T2 | T2->CT1"] = (b, True)

    c = GlobalSG()
    c.site("S1").add_edge("T2", "CT1")
    c.site("S2").add_edge("CT1", "T3")
    c.site("S3").add_edge("T3", "T2")
    configs["fig1c: 3 sites, 2 regulars"] = (c, True)

    d = GlobalSG()
    d.site("S1").add_path("T2", "L1", "CT1")
    d.site("S2").add_edge("CT1", "T2")
    configs["fig1d: through local txn"] = (d, True)

    e = GlobalSG()  # Example-1-style shortcut: benign
    e.site("S1").add_edge("CT1", "T2")
    e.site("S2").add_path("CT1", "T2", "CT3")
    e.site("S3").add_edge("CT3", "CT1")
    configs["example1: CT-only minimal cycle"] = (e, False)

    f = GlobalSG()  # acyclic
    f.site("S1").add_edge("T1", "T2")
    f.site("S2").add_edge("T2", "T3")
    configs["acyclic"] = (f, False)

    return configs


def random_gsg(n_txns: int, n_sites: int, seed: int = 1) -> GlobalSG:
    """Large synthetic SG respecting 2PL-consistent global order."""
    rng = Rng(seed)
    gsg = GlobalSG()
    for s in range(1, n_sites + 1):
        sg = gsg.site(f"S{s}")
        order = []
        for t in range(1, n_txns + 1):
            if rng.chance(0.5):
                order.append(f"T{t}")
                if rng.chance(0.2):
                    order.append(f"CT{t}")
        for i, src in enumerate(order):
            for dst in order[i + 1:]:
                if rng.chance(0.15):
                    if src.startswith("CT") and dst == src[1:]:
                        continue
                    sg.add_edge(src, dst)
    return gsg


def test_fig1_table():
    rows = []
    for name, (gsg, expected) in fig1_configurations().items():
        cycle = find_regular_cycle(gsg)
        assert (cycle is not None) == expected, name
        rows.append(ExperimentResult(
            params={"configuration": name},
            measures={
                "regular_cycle": cycle is not None,
                "cycle": " -> ".join(cycle) if cycle else "-",
            },
        ))
    print()
    print(format_table(rows, title="FIG1: regular-cycle verdicts"))


@pytest.mark.parametrize("name", list(fig1_configurations()))
def test_each_configuration_verdict(name):
    gsg, expected = fig1_configurations()[name]
    assert (find_regular_cycle(gsg) is not None) == expected


def test_bench_detection_on_figure_shapes(benchmark):
    configs = fig1_configurations()

    def detect_all():
        return [find_regular_cycle(g) for g, _ in configs.values()]

    results = benchmark(detect_all)
    assert sum(1 for r in results if r) == 4


def test_bench_detection_on_large_sg(benchmark):
    gsg = random_gsg(n_txns=120, n_sites=5)
    benchmark(find_regular_cycle, gsg)
