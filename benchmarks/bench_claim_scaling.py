"""CLAIM-SCALE — lock-hold windows versus transaction span.

Section 1: "since the protocol involves three rounds of messages ... the
delay can be intolerable."  Every extra participating site lengthens the
window in which an early-granted lock is held (sequential execution plus
the commit rounds) — under *both* schemes; O2PC subtracts the decision
round from every one of them, so it wins at every span, and with waiting
cascades on contended keys the absolute savings compound.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(scheme, span, seed=3):
    system = System(SystemConfig(
        scheme=scheme, n_sites=span, keys_per_site=12,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=50, min_sites=span, max_sites=span,
        read_fraction=0.4, arrival_mean=3.0, zipf_theta=0.4,
    ), seed=seed)
    elapsed = gen.run()
    return system.metrics(elapsed)


@pytest.fixture(scope="module")
def span_sweep():
    rows = []
    for span in (2, 3, 5, 7):
        r2 = run_once(CommitScheme.TWO_PL, span)
        ro = run_once(CommitScheme.O2PC, span)
        rows.append(ExperimentResult(
            params={"sites_per_txn": span},
            measures={
                "hold_2pl": r2.mean_lock_hold,
                "hold_o2pc": ro.mean_lock_hold,
                "gap": r2.mean_lock_hold - ro.mean_lock_hold,
                "thru_2pl": r2.throughput,
                "thru_o2pc": ro.throughput,
            },
        ))
    return rows


def test_scaling_table(span_sweep):
    print()
    print(format_table(
        span_sweep,
        title="CLAIM-SCALE: lock-hold vs transaction span (sites/txn)",
    ))


def test_o2pc_wins_at_every_span(span_sweep):
    for row in span_sweep:
        assert row.measures["hold_o2pc"] < row.measures["hold_2pl"]


def test_holds_grow_with_span_under_both_schemes(span_sweep):
    holds_2pl = [r.measures["hold_2pl"] for r in span_sweep]
    holds_o2pc = [r.measures["hold_o2pc"] for r in span_sweep]
    assert holds_2pl == sorted(holds_2pl)
    assert holds_o2pc == sorted(holds_o2pc)


def test_o2pc_throughput_at_least_matches_at_every_span(span_sweep):
    for row in span_sweep:
        assert row.measures["thru_o2pc"] >= row.measures["thru_2pl"]


def test_bench_wide_transaction_run(benchmark):
    report = benchmark(run_once, CommitScheme.O2PC, 5)
    assert report.committed > 0
