"""ABLATE-P1 — ablation of the two P1 implementation choices.

DESIGN.md §5 documents two additions to the paper's literal P1:

* the **quiescence clearing rule** (UDUM0-derived: clear a transaction's
  marks once every overlapping transaction has terminated and all its
  compensations ran), complementing UDUM1 whose witnesses starve under
  abort churn;
* the **eager full-rule check** at spawn (the coordinator knows the site
  list, so doomed transactions are rejected before wasting execution and
  exposing updates).

The ablation quantifies each: without quiescence clearing, marks persist
and commits collapse; correctness holds in every cell (the additions are
performance relief, not safety valves — the safety comes from the strict
checks themselves).
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.sg import find_regular_cycle
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(quiescence, eager, seed):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1",
        n_sites=4, keys_per_site=10,
        quiescence_clearing=quiescence, p1_eager_rule=eager,
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=60, abort_probability=0.1,
            read_fraction=0.4, arrival_mean=2.5, zipf_theta=0.4,
        ),
        seed=seed,
    )
    elapsed = gen.run()
    metrics = system.metrics(elapsed)
    violated = find_regular_cycle(
        system.global_sg(), system.effective_regular_nodes()
    ) is not None
    cleared = len(system.directory.quiescence_log)
    return metrics, violated, cleared


@pytest.fixture(scope="module")
def ablation():
    rows = []
    for quiescence in (True, False):
        for eager in (True, False):
            results = [run_once(quiescence, eager, s) for s in (1, 2, 3)]
            rows.append(ExperimentResult(
                params={"quiescence": quiescence, "eager_rule": eager},
                measures={
                    "committed": sum(m.committed for m, _, _ in results) / 3,
                    "rejections": sum(m.rejections for m, _, _ in results) / 3,
                    "quiescence_clears": sum(c for _, _, c in results) / 3,
                    "violations": sum(v for _, v, _ in results),
                },
            ))
    return rows


def test_ablation_table(ablation):
    print()
    print(format_table(
        ablation, title="ABLATE-P1: quiescence clearing / eager rule",
    ))


def test_all_variants_sound(ablation):
    """Neither addition is load-bearing for safety."""
    for row in ablation:
        assert row.measures["violations"] == 0


def test_quiescence_clearing_restores_throughput(ablation):
    with_q = sum(
        r.measures["committed"] for r in ablation if r.params["quiescence"]
    )
    without_q = sum(
        r.measures["committed"] for r in ablation
        if not r.params["quiescence"]
    )
    assert with_q > without_q


def test_bench_ablated_run(benchmark):
    metrics, violated, _ = benchmark(run_once, False, False, 1)
    assert not violated
