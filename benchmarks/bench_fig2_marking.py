"""FIG2 — Figure 2: the marking state machine.

Regenerates the transition table (five legal edges, ten illegal pairs) and
benchmarks transition firing at the rate a busy site would sustain.
"""

import pytest

from repro.core import Marking, MarkingEvent, MarkingStateMachine
from repro.core.marking import TRANSITIONS
from repro.errors import ProtocolViolation
from repro.harness import ExperimentResult, format_table


def test_fig2_transition_table():
    rows = []
    for state in Marking:
        for event in MarkingEvent:
            target = TRANSITIONS.get((state, event))
            rows.append(ExperimentResult(
                params={"from": state.value, "event": event.value},
                measures={"to": target.value if target else "(illegal)"},
            ))
    print()
    print(format_table(rows, title="FIG2: marking transitions"))
    legal = [r for r in rows if r.measures["to"] != "(illegal)"]
    assert len(legal) == 5


def test_fig2_machine_agrees_with_table():
    for state, event in [
        (s, e) for s in Marking for e in MarkingEvent
    ]:
        machine = MarkingStateMachine("S1")
        if state is Marking.LOCALLY_COMMITTED:
            machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        elif state is Marking.UNDONE:
            machine.fire("T1", MarkingEvent.VOTE_ABORT)
        expected = TRANSITIONS.get((state, event))
        if expected is None:
            with pytest.raises(ProtocolViolation):
                machine.fire("T1", event)
        else:
            assert machine.fire("T1", event) is expected


def test_bench_marking_transitions(benchmark):
    """One full commit cycle + one full abort/UDUM cycle per transaction."""

    def churn():
        machine = MarkingStateMachine("S1")
        for i in range(500):
            txn = f"T{i}"
            machine.fire(txn, MarkingEvent.VOTE_COMMIT)
            machine.fire(txn, MarkingEvent.DECISION_COMMIT)
            machine.fire(txn, MarkingEvent.VOTE_COMMIT)
            machine.fire(txn, MarkingEvent.DECISION_ABORT)
            machine.fire(txn, MarkingEvent.UDUM)
        return machine

    machine = benchmark(churn)
    assert machine.undone_set() == set()


def test_bench_undone_set_snapshot(benchmark):
    machine = MarkingStateMachine("S1")
    for i in range(1000):
        machine.fire(f"T{i}", MarkingEvent.VOTE_ABORT)
    result = benchmark(machine.undone_set)
    assert len(result) == 1000
