"""CLAIM-LOCK — early lock release shrinks the lock-hold window.

Section 2: under distributed 2PL locks are held until the DECISION message
arrives; under O2PC they are released when the site votes.  The hold window
therefore differs by the decision round (decision-log delay + one message
hop), and the gap grows linearly with message latency.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import (
    ExperimentResult,
    System,
    SystemConfig,
    format_table,
)
from repro.net.network import LatencyModel
from repro.workload import WorkloadConfig, WorkloadGenerator


def run_once(scheme, latency_base=1.0, n_sites=4, n_txns=60, seed=2):
    # Low contention (many keys, spaced arrivals) isolates the protocol's
    # own lock-hold window from queueing effects.
    system = System(SystemConfig(
        scheme=scheme, n_sites=n_sites, keys_per_site=100,
        latency=LatencyModel(base=latency_base),
    ))
    gen = WorkloadGenerator(
        system,
        WorkloadConfig(
            n_transactions=n_txns, read_fraction=0.3,
            arrival_mean=4.0 * latency_base,
        ),
        seed=seed,
    )
    elapsed = gen.run()
    return system.metrics(elapsed)


@pytest.fixture(scope="module")
def latency_sweep():
    rows = []
    for base in (0.5, 1.0, 2.0, 4.0):
        r_2pl = run_once(CommitScheme.TWO_PL, latency_base=base)
        r_o2pc = run_once(CommitScheme.O2PC, latency_base=base)
        rows.append(ExperimentResult(
            params={"latency": base},
            measures={
                "hold_2pl": r_2pl.mean_lock_hold,
                "hold_o2pc": r_o2pc.mean_lock_hold,
                "gap": r_2pl.mean_lock_hold - r_o2pc.mean_lock_hold,
                "wait_2pl": r_2pl.mean_lock_wait,
                "wait_o2pc": r_o2pc.mean_lock_wait,
            },
        ))
    return rows


def test_lockhold_table(latency_sweep):
    print()
    print(format_table(
        latency_sweep,
        title="CLAIM-LOCK: mean lock-hold time vs message latency",
    ))


def test_o2pc_always_holds_shorter(latency_sweep):
    for row in latency_sweep:
        assert row.measures["hold_o2pc"] < row.measures["hold_2pl"]


def test_gap_grows_with_latency(latency_sweep):
    gaps = [row.measures["gap"] for row in latency_sweep]
    assert gaps == sorted(gaps)
    # Roughly linear: the decision round costs about one message hop plus
    # the 0.5 decision-log delay per transaction.
    assert gaps[-1] > gaps[0] * 3


def test_o2pc_reduces_waiting(latency_sweep):
    """Shorter holds -> less data contention (the performance argument)."""
    total_2pl = sum(r.measures["wait_2pl"] for r in latency_sweep)
    total_o2pc = sum(r.measures["wait_o2pc"] for r in latency_sweep)
    assert total_o2pc <= total_2pl


def test_bench_o2pc_workload(benchmark):
    result = benchmark(run_once, CommitScheme.O2PC)
    assert result.committed > 0


def test_bench_2pl_workload(benchmark):
    result = benchmark(run_once, CommitScheme.TWO_PL)
    assert result.committed > 0
