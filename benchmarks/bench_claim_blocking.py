"""CLAIM-BLOCK — coordinator failure: 2PC blocks, O2PC does not.

Section 1: 2PC is a blocking protocol; a coordinator crash between the vote
and the decision leaves participants holding locks for the whole outage.
O2PC participants released their locks at vote time, so the outage does not
block the sites' data.  The sweep shows 2PL's max lock-hold tracking the
outage duration while O2PC's stays flat.
"""

import pytest

from repro.commit import CommitScheme
from repro.harness import ExperimentResult, System, SystemConfig, format_table
from repro.net.failures import CrashPlan
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec


def spec():
    return GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 10})]),
        SubtxnSpec("S2", [SemanticOp("deposit", "k0", {"amount": 10})]),
    ])


def run_with_outage(scheme, outage):
    system = System(SystemConfig(scheme=scheme))
    proc = system.submit(spec())
    # Votes reach the coordinator at t=6; decision forced at t=6.5.
    system.failures.schedule(
        CrashPlan(site_id="coord.T1", at=6.2, duration=outage)
    )
    outcome = system.env.run(proc)
    system.env.run()
    hold = max(
        h.duration
        for site in system.sites.values()
        for h in site.locks.hold_log
        if h.txn_id == "T1"
    )
    return hold, outcome


@pytest.fixture(scope="module")
def outage_sweep():
    rows = []
    for outage in (0.0, 25.0, 100.0, 400.0):
        if outage:
            hold_2pl, o_2pl = run_with_outage(CommitScheme.TWO_PL, outage)
            hold_o2pc, o_o2pc = run_with_outage(CommitScheme.O2PC, outage)
        else:
            system = System(SystemConfig(scheme=CommitScheme.TWO_PL))
            o_2pl = system.env.run(system.submit(spec()))
            hold_2pl = max(
                h.duration for s in system.sites.values()
                for h in s.locks.hold_log
            )
            system = System(SystemConfig(scheme=CommitScheme.O2PC))
            o_o2pc = system.env.run(system.submit(spec()))
            hold_o2pc = max(
                h.duration for s in system.sites.values()
                for h in s.locks.hold_log
            )
        assert o_2pl.committed and o_o2pc.committed
        rows.append(ExperimentResult(
            params={"outage": outage},
            measures={"max_hold_2pl": hold_2pl, "max_hold_o2pc": hold_o2pc},
        ))
    return rows


def test_blocking_table(outage_sweep):
    print()
    print(format_table(
        outage_sweep,
        title="CLAIM-BLOCK: max lock-hold vs coordinator outage",
    ))


def test_2pl_hold_tracks_outage(outage_sweep):
    """The blocking window is unbounded: hold ~ outage + protocol rounds."""
    for row in outage_sweep:
        if row.params["outage"] > 0:
            assert row.measures["max_hold_2pl"] >= row.params["outage"]


def test_o2pc_hold_flat(outage_sweep):
    holds = [r.measures["max_hold_o2pc"] for r in outage_sweep]
    assert max(holds) - min(holds) < 1e-9
    assert max(holds) < 10.0


def test_bench_outage_run(benchmark):
    hold, outcome = benchmark(run_with_outage, CommitScheme.O2PC, 100.0)
    assert outcome.committed
