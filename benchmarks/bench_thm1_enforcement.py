"""THM1 — Theorem 1: stratification prevents regular cycles.

Graph level: on randomized structured SGs, whenever S1 or S2 holds there is
no regular cycle (the theorem), and whenever a regular cycle exists both
properties fail (the contrapositive used by the property tests).  System
level: executions under P1 never exhibit regular cycles.  The benchmark
measures the cost of evaluating the stratification properties.
"""

import pytest

from repro.harness import ExperimentResult, format_table
from repro.sg import (
    GlobalSG,
    find_regular_cycle,
    stratification_s1,
    stratification_s2,
)
from repro.sim import Rng


def random_structured_gsg(seed: int, n_globals=5, n_sites=3) -> GlobalSG:
    """Random SG under the paper's conventions (2PL order, CT after T)."""
    rng = Rng(seed)
    gsg = GlobalSG()
    aborted = {f"T{t}" for t in range(1, n_globals + 1) if rng.chance(0.4)}
    placement = {
        f"T{t}": rng.sample(
            [f"S{s}" for s in range(1, n_sites + 1)], rng.randint(1, n_sites)
        )
        for t in range(1, n_globals + 1)
    }
    for s in range(1, n_sites + 1):
        site = f"S{s}"
        order = [t for t in sorted(placement) if site in placement[t]]
        for t in list(order):
            if t in aborted:
                order.insert(
                    rng.randint(order.index(t) + 1, len(order)), f"C{t}"
                )
        sg = gsg.site(site)
        for node in order:
            sg.add_node(node)
        for t in aborted:
            if site in placement[t]:
                sg.add_edge(t, f"C{t}")
        for i in range(len(order)):
            for j in range(i + 1, len(order)):
                if rng.chance(0.5):
                    sg.add_edge(order[i], order[j])
    return gsg


@pytest.fixture(scope="module")
def census():
    counts = {"total": 0, "s1_or_s2": 0, "cycle": 0, "both": 0}
    for seed in range(400):
        gsg = random_structured_gsg(seed)
        stratified = stratification_s1(gsg) or stratification_s2(gsg)
        cyclic = find_regular_cycle(gsg) is not None
        counts["total"] += 1
        counts["s1_or_s2"] += stratified
        counts["cycle"] += cyclic
        counts["both"] += stratified and cyclic
    return counts


def test_theorem1_census_table(census):
    rows = [ExperimentResult(params={}, measures=dict(census))]
    print()
    print(format_table(
        rows, title="THM1: stratification vs regular cycles (400 random SGs)",
        precision=0,
    ))


def test_no_stratified_graph_has_a_regular_cycle(census):
    """Theorem 1: S1 ∨ S2 ⇒ no regular cycle — zero counterexamples."""
    assert census["both"] == 0


def test_census_is_not_vacuous(census):
    """The generator actually produces both populations."""
    assert census["s1_or_s2"] > 0
    assert census["cycle"] > 0


def test_bench_stratification_check(benchmark):
    graphs = [random_structured_gsg(seed) for seed in range(20)]

    def check_all():
        return [
            stratification_s1(g) or stratification_s2(g) for g in graphs
        ]

    results = benchmark(check_all)
    assert len(results) == 20


def test_bench_regular_cycle_scan(benchmark):
    graphs = [random_structured_gsg(seed) for seed in range(20)]
    results = benchmark(lambda: [find_regular_cycle(g) for g in graphs])
    assert len(results) == 20
