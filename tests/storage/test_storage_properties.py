"""Property-based tests: storage-engine invariants.

* rollback is an exact inverse — after undoing a transaction, the store
  equals its pre-transaction snapshot, whatever the update sequence;
* crash-restart is equivalent to replaying only committed work;
* WAL chains are complete and ordered per transaction.
"""

from hypothesis import given, settings, strategies as st

from repro.storage import KVStore, RecordType, RecoveryManager, WriteAheadLog

keys = st.sampled_from(["a", "b", "c", "d"])
values = st.integers(min_value=-100, max_value=100)


def logged_put(store, wal, txn, key, value):
    before = store.snapshot_value(key)
    wal.append(RecordType.UPDATE, txn, key=key, before=before, after=value)
    store.put(key, value)


@settings(max_examples=200, deadline=None)
@given(
    st.dictionaries(keys, values, max_size=4),
    st.lists(st.tuples(keys, values), min_size=1, max_size=15),
)
def test_rollback_restores_exact_pretransaction_state(initial, updates):
    store, wal = KVStore(), WriteAheadLog()
    for k, v in initial.items():
        store.put(k, v)
    rec = RecoveryManager(store, wal)
    snapshot = store.snapshot()
    wal.append(RecordType.BEGIN, "T1")
    for key, value in updates:
        logged_put(store, wal, "T1", key, value)
    rec.rollback("T1")
    assert store.snapshot() == snapshot


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["T1", "T2", "T3"]),
            st.lists(st.tuples(keys, values), min_size=1, max_size=5),
            st.booleans(),  # committed?
        ),
        min_size=1,
        max_size=6,
    )
)
def test_restart_equals_committed_replay(txn_batches):
    """Crash-restart recovery reproduces exactly the state obtained by
    applying only the committed transactions, in order."""
    store, wal = KVStore(), WriteAheadLog()
    rec = RecoveryManager(store, wal)
    reference = KVStore()
    seen: set[str] = set()
    for txn, updates, committed in txn_batches:
        if txn in seen:
            continue  # one batch per transaction id
        seen.add(txn)
        wal.append(RecordType.BEGIN, txn)
        for key, value in updates:
            logged_put(store, wal, txn, key, value)
        if committed:
            wal.append(RecordType.COMMIT, txn)
            for key, value in updates:
                reference.put(key, value)
    store.wipe()
    rec.restart()
    assert store.snapshot() == reference.snapshot()


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["T1", "T2"]), keys, values),
        min_size=1,
        max_size=20,
    )
)
def test_wal_chains_are_ordered_and_complete(ops):
    store, wal = KVStore(), WriteAheadLog()
    per_txn: dict[str, int] = {}
    for txn, key, value in ops:
        if txn not in per_txn:
            wal.append(RecordType.BEGIN, txn)
        logged_put(store, wal, txn, key, value)
        per_txn[txn] = per_txn.get(txn, 0) + 1
    for txn, count in per_txn.items():
        chain = wal.records_for(txn)
        assert chain[0].record_type is RecordType.BEGIN
        updates = [r for r in chain if r.record_type is RecordType.UPDATE]
        assert len(updates) == count
        lsns = [r.lsn for r in chain]
        assert lsns == sorted(lsns)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(keys, values), min_size=1, max_size=10))
def test_before_images_chain_backwards_exactly(updates):
    """Each update's before-image equals the previous after-image of the
    same key (or the initial state)."""
    store, wal = KVStore(), WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    last: dict[str, int] = {}
    for key, value in updates:
        logged_put(store, wal, "T1", key, value)
        last[key] = value
    previous: dict[str, object] = {}
    for record in wal.updates_for("T1"):
        if record.key in previous:
            assert record.before == previous[record.key]
        record_after = record.after
        previous[record.key] = record_after
    for key, value in last.items():
        assert store.get(key) == value
