"""Unit tests for WAL checkpointing and log truncation."""

import pytest

from repro.errors import WALError
from repro.sim import Environment
from repro.storage import KVStore, RecordType, RecoveryManager, WriteAheadLog
from repro.txn import Site, WriteOp


def logged_put(store, wal, txn, key, value):
    before = store.snapshot_value(key)
    wal.append(RecordType.UPDATE, txn, key=key, before=before, after=value)
    store.put(key, value)


class TestWALCheckpoint:
    def test_checkpoint_record_carries_snapshot(self):
        store, wal = KVStore(), WriteAheadLog()
        store.put("a", 1)
        record = wal.checkpoint(store.snapshot(), active=[])
        assert record.record_type is RecordType.CHECKPOINT
        assert record.payload["snapshot"] == {"a": 1}
        assert wal.last_checkpoint() is record

    def test_truncate_drops_prefix_and_keeps_lsns(self):
        store, wal = KVStore(), WriteAheadLog()
        wal.append(RecordType.BEGIN, "T1")
        logged_put(store, wal, "T1", "a", 1)
        wal.append(RecordType.COMMIT, "T1")
        checkpoint = wal.checkpoint(store.snapshot(), active=[])
        wal.append(RecordType.BEGIN, "T2")
        dropped = wal.truncate_at_checkpoint()
        assert dropped == 3
        assert wal.record_at(checkpoint.lsn) is checkpoint
        with pytest.raises(WALError):
            wal.record_at(1)
        # Post-checkpoint chains intact.
        assert wal.records_for("T2")[0].record_type is RecordType.BEGIN
        # Pre-checkpoint chains are gone, not corrupted.
        assert wal.records_for("T1") == []

    def test_truncate_requires_checkpoint(self):
        wal = WriteAheadLog()
        with pytest.raises(WALError):
            wal.truncate_at_checkpoint()

    def test_truncate_refuses_non_quiescent_checkpoint(self):
        store, wal = KVStore(), WriteAheadLog()
        wal.append(RecordType.BEGIN, "T1")
        wal.checkpoint(store.snapshot(), active=["T1"])
        with pytest.raises(WALError, match="not quiescent"):
            wal.truncate_at_checkpoint()


class TestRecoveryFromCheckpoint:
    def test_restart_uses_snapshot_plus_suffix(self):
        store, wal = KVStore(), WriteAheadLog()
        rec = RecoveryManager(store, wal)
        wal.append(RecordType.BEGIN, "T1")
        logged_put(store, wal, "T1", "a", 1)
        wal.append(RecordType.COMMIT, "T1")
        wal.checkpoint(store.snapshot(), active=[])
        wal.truncate_at_checkpoint()
        wal.append(RecordType.BEGIN, "T2")
        logged_put(store, wal, "T2", "b", 2)
        wal.append(RecordType.COMMIT, "T2")
        wal.append(RecordType.BEGIN, "T3")
        logged_put(store, wal, "T3", "c", 3)   # in flight: must vanish
        store.wipe()
        report = rec.restart()
        assert store.get("a") == 1   # from the snapshot
        assert store.get("b") == 2   # redone from the suffix
        assert not store.exists("c")
        assert report.redone == ["T2"]
        assert report.undone == ["T3"]

    def test_restart_without_checkpoint_unchanged(self):
        store, wal = KVStore(), WriteAheadLog()
        rec = RecoveryManager(store, wal)
        wal.append(RecordType.BEGIN, "T1")
        logged_put(store, wal, "T1", "a", 1)
        wal.append(RecordType.COMMIT, "T1")
        store.wipe()
        rec.restart()
        assert store.get("a") == 1


class TestSiteCheckpoint:
    def test_site_checkpoint_roundtrip(self):
        env = Environment()
        site = Site(env, "S1")
        site.load({"a": 1})

        def txn():
            site.ltm.begin("L1")
            yield from site.ltm.execute("L1", WriteOp("a", 9))
            site.ltm.commit("L1")

        env.run(env.process(txn()))
        before = len(site.wal)
        site.checkpoint()
        assert len(site.wal) < before + 1  # log shrank to the checkpoint
        site.crash()
        site.restart()
        assert site.store.get("a") == 9

    def test_site_checkpoint_refuses_in_flight(self):
        env = Environment()
        site = Site(env, "S1")

        def txn():
            site.ltm.begin("L1")
            yield from site.ltm.execute("L1", WriteOp("a", 9))
            # no commit: still active

        env.run(env.process(txn()))
        with pytest.raises(WALError, match="in flight"):
            site.checkpoint()
