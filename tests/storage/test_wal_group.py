"""Group commit: deferred force points, one covering fsync, same durability.

With ``group_commit`` on, a forced append no longer fsyncs inline — it
marks the log *sync-needed* and an external flusher later calls
:meth:`WriteAheadLog.sync` once for the whole group.  The durability
contract shifts to the host: a forced record must not be acknowledged
(i.e. no frame revealing it may leave the daemon) before the covering
fsync.  These tests pin the mechanics the daemon relies on: deferral is
real (a kill before sync loses the record), sync is real (a kill after
sync does not), counters are exact, and torn-tail recovery is unchanged.
"""

from repro.storage.wal import RecordType, WriteAheadLog


def wal_at(tmp_path, group=True):
    wal = WriteAheadLog("S1", path=str(tmp_path / "site.wal"))
    wal.group_commit = group
    return wal


def reopen(tmp_path):
    # A fresh WriteAheadLog on the same path is exactly what daemon
    # restart does; opening without closing the writer models kill -9
    # (the dying process never flushes its buffers).
    return WriteAheadLog("S1", path=str(tmp_path / "site.wal"))


class TestDeferredForce:
    def test_forced_append_is_not_durable_before_sync(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.BEGIN, "T1")
        wal.append(RecordType.PREPARE, "T1", force=True)
        assert wal.needs_sync
        # kill -9 before the flusher ran: nothing reached the file
        assert len(reopen(tmp_path)) == 0

    def test_sync_makes_the_group_durable(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.BEGIN, "T1")
        wal.append(RecordType.PREPARE, "T1", force=True)
        wal.append(RecordType.BEGIN, "T2")
        wal.append(RecordType.PREPARE, "T2", force=True)
        covered = wal.sync()
        assert covered == 2
        assert not wal.needs_sync
        # kill -9 after the covering fsync: the whole group survives
        types = [r.record_type for r in reopen(tmp_path)]
        assert types == [
            RecordType.BEGIN, RecordType.PREPARE,
            RecordType.BEGIN, RecordType.PREPARE,
        ]

    def test_one_fsync_covers_many_forces(self, tmp_path):
        wal = wal_at(tmp_path)
        for i in range(5):
            wal.append(RecordType.PREPARE, f"T{i}", force=True)
        assert wal.fsyncs == 0
        assert wal.forced_writes == 5
        assert wal.sync() == 5
        assert wal.fsyncs == 1

    def test_sync_without_pending_forces_is_a_noop(self, tmp_path):
        wal = wal_at(tmp_path)
        assert wal.sync() == 0
        assert wal.fsyncs == 0

    def test_unforced_records_ride_the_group(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.BEGIN, "T1")
        wal.append(RecordType.UPDATE, "T1", key="k0", before=0, after=1)
        wal.append(RecordType.LOCAL_COMMIT, "T1", force=True)
        wal.sync()
        assert len(reopen(tmp_path)) == 3


class TestInlineModeUnchanged:
    def test_forced_append_fsyncs_inline_without_group_commit(self, tmp_path):
        wal = wal_at(tmp_path, group=False)
        wal.append(RecordType.PREPARE, "T1", force=True)
        wal.append(RecordType.PREPARE, "T2", force=True)
        assert wal.fsyncs == 2
        assert not wal.needs_sync
        assert len(reopen(tmp_path)) == 2


class TestRecoveryUnchanged:
    def test_torn_tail_is_still_truncated_in_group_mode(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.COMMIT, "T1", force=True)
        wal.sync()
        wal.close()
        # A frame half-written at kill time: header promising more bytes
        # than follow.
        with open(tmp_path / "site.wal", "ab") as handle:
            handle.write(b"\x00\x00\x00\xff\x00\x00\x00\x00torn")
        reopened = wal_at(tmp_path)
        assert reopened.torn_records_truncated == 1
        assert [r.record_type for r in reopened] == [RecordType.COMMIT]
        # and the tail is gone from disk, not just skipped in memory
        assert reopen(tmp_path).torn_records_truncated == 0

    def test_close_flushes_pending_group(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.COMMIT, "T1", force=True)
        wal.close()  # clean shutdown must not lose the deferred force
        assert len(reopen(tmp_path)) == 1
