"""File-backed WAL: durability, reload, and torn-tail recovery.

The networked runtime writes each record as ``length + crc32 + json``.
``kill -9`` can land mid-write, leaving a partial final frame — the
record was never acknowledged as durable, so reopening the log must
detect the torn tail (short frame or checksum mismatch), truncate it,
and recover everything before it.  Crashing recovery on a torn tail
would turn every unlucky kill into a permanently dead site.
"""

import os
import struct
import zlib

import pytest

from repro.errors import WALError
from repro.storage.recovery import RecoveryManager
from repro.storage.kvstore import KVStore
from repro.storage.wal import RecordType, WriteAheadLog


def wal_at(tmp_path, name="site.wal"):
    return WriteAheadLog("S1", path=str(tmp_path / name))


def append_committed_txn(wal, txn_id="T1", key="k0", after=7):
    wal.append(RecordType.BEGIN, txn_id)
    wal.append(RecordType.UPDATE, txn_id, key=key, before=0, after=after)
    wal.append(RecordType.COMMIT, txn_id, force=True)


class TestFileBacking:
    def test_records_survive_close_and_reopen(self, tmp_path):
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.close()

        reopened = wal_at(tmp_path)
        assert len(reopened) == 3
        types = [r.record_type for r in reopened]
        assert types == [
            RecordType.BEGIN, RecordType.UPDATE, RecordType.COMMIT,
        ]
        assert reopened.torn_records_truncated == 0

    def test_lsns_continue_after_reload(self, tmp_path):
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        last = wal.record_at(len(wal)).lsn
        wal.close()

        reopened = wal_at(tmp_path)
        record = reopened.append(RecordType.BEGIN, "T2")
        assert record.lsn == last + 1

    def test_update_payload_roundtrips(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append(RecordType.BEGIN, "T1")
        wal.append(
            RecordType.UPDATE, "T1", key="k3",
            before={"n": 1}, after={"n": 2}, force=True,
        )
        wal.close()

        record = wal_at(tmp_path).record_at(2)
        assert record.key == "k3"
        assert record.before == {"n": 1}
        assert record.after == {"n": 2}
        assert record.prev_lsn == 1

    def test_checkpoint_truncation_rewrites_the_file(self, tmp_path):
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.checkpoint({"k0": 7}, active=[])
        wal.truncate_at_checkpoint()
        wal.close()

        reopened = wal_at(tmp_path)
        assert [r.record_type for r in reopened] == [RecordType.CHECKPOINT]
        assert reopened.last_checkpoint().payload["snapshot"] == {"k0": 7}
        assert path.stat().st_size > 0


class TestTornTail:
    def assert_recovers_three_records(self, tmp_path):
        reopened = wal_at(tmp_path)
        assert len(reopened) == 3
        assert reopened.torn_records_truncated == 1
        # The log is writable again after truncation: the next record
        # lands where the torn frame was and survives a further reload.
        reopened.append(RecordType.ABORT, "T2", force=True)
        reopened.close()
        final = wal_at(tmp_path)
        assert len(final) == 4
        assert final.torn_records_truncated == 0
        return final

    def test_partial_final_frame_is_truncated(self, tmp_path):
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.append(RecordType.BEGIN, "T2", force=True)
        wal.close()

        # Tear the last frame: keep its header plus half the payload,
        # as if the process died mid-write().
        good = path.read_bytes()
        torn_at = len(good) - 10
        path.write_bytes(good[:torn_at])

        self.assert_recovers_three_records(tmp_path)
        # Truncation really removed the torn bytes from disk.
        assert b"T2" in path.read_bytes()  # the appended ABORT record

    def test_partial_header_is_truncated(self, tmp_path):
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.close()

        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")  # 2 of 8 header bytes

        self.assert_recovers_three_records(tmp_path)

    def test_corrupt_checksum_is_truncated(self, tmp_path):
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.append(RecordType.BEGIN, "T2", force=True)
        wal.close()

        # Flip one payload byte of the final frame; its CRC no longer
        # matches, so the frame must be treated as torn.
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        self.assert_recovers_three_records(tmp_path)

    def test_corrupt_interior_record_is_a_hard_error(self, tmp_path):
        # A bad CRC *before* intact frames is not a torn tail — it is
        # corruption of acknowledged-durable data.  Replay stops at the
        # bad frame, and the later intact frames make the LSN chain
        # non-contiguous... unless they happen to re-align.  The replay
        # loop treats the first bad frame as the end of the log: the
        # records after it are lost, which is the standard ARIES-style
        # contract (nothing after the first hole is trusted).
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        append_committed_txn(wal)
        wal.close()

        data = bytearray(path.read_bytes())
        # Corrupt the first frame's payload.
        data[struct.calcsize(">II") + 2] ^= 0xFF
        path.write_bytes(bytes(data))

        reopened = wal_at(tmp_path)
        assert len(reopened) == 0
        assert reopened.torn_records_truncated >= 1

    def test_kill_nine_torn_tail_recovers_store(self, tmp_path):
        # End-to-end: committed txn, then a torn in-flight record; the
        # recovery manager must redo the committed update and ignore the
        # torn frame entirely.
        wal = wal_at(tmp_path)
        append_committed_txn(wal, after=42)
        wal.append(RecordType.BEGIN, "T2", force=True)
        wal.close()

        path = tmp_path / "site.wal"
        good = path.read_bytes()
        path.write_bytes(good[:-5])

        reopened = wal_at(tmp_path)
        store = KVStore("S1")
        report = RecoveryManager(store, reopened).restart()
        assert store.get("k0") == 42
        assert "T1" in report.redone
        assert reopened.torn_records_truncated == 1

    def test_frame_checksum_uses_crc32(self, tmp_path):
        # Pin the on-disk format: 4-byte length, 4-byte crc32, JSON.
        path = tmp_path / "site.wal"
        wal = wal_at(tmp_path)
        wal.append(RecordType.BEGIN, "T1", force=True)
        wal.close()

        data = path.read_bytes()
        length, checksum = struct.unpack(">II", data[:8])
        payload = data[8:8 + length]
        assert zlib.crc32(payload) == checksum
        assert len(data) == 8 + length


class TestInMemoryUnchanged:
    def test_no_path_means_no_file(self, tmp_path):
        wal = WriteAheadLog("S1")
        append_committed_txn(wal)
        assert wal.path is None
        assert os.listdir(tmp_path) == []
        wal.close()  # no-op

    def test_undecodable_intact_frame_raises(self, tmp_path):
        # An intact frame (good CRC) whose JSON is not a record is real
        # corruption, not a torn tail: fail loudly.
        path = tmp_path / "site.wal"
        payload = b'{"not": "a record"}'
        path.write_bytes(
            struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        )
        with pytest.raises(WALError):
            wal_at(tmp_path)
