"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import WALError
from repro.storage import RecordType, WriteAheadLog


def test_lsns_dense_from_one():
    wal = WriteAheadLog()
    r1 = wal.append(RecordType.BEGIN, "T1")
    r2 = wal.append(RecordType.UPDATE, "T1", key="x", before=0, after=1)
    assert (r1.lsn, r2.lsn) == (1, 2)
    assert len(wal) == 2


def test_record_at_bounds():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    assert wal.record_at(1).record_type is RecordType.BEGIN
    with pytest.raises(WALError):
        wal.record_at(0)
    with pytest.raises(WALError):
        wal.record_at(2)


def test_prev_lsn_chains_per_transaction():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.BEGIN, "T2")
    r3 = wal.append(RecordType.UPDATE, "T1", key="x", before=0, after=1)
    assert r3.prev_lsn == 1


def test_records_for_returns_chain_oldest_first():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.UPDATE, "T2", key="y")
    wal.append(RecordType.UPDATE, "T1", key="x", before=0, after=1)
    wal.append(RecordType.COMMIT, "T1")
    types = [r.record_type for r in wal.records_for("T1")]
    assert types == [RecordType.BEGIN, RecordType.UPDATE, RecordType.COMMIT]


def test_updates_for_filters_update_records():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.UPDATE, "T1", key="a", before=1, after=2)
    wal.append(RecordType.UPDATE, "T1", key="b", before=3, after=4)
    wal.append(RecordType.COMMIT, "T1")
    updates = wal.updates_for("T1")
    assert [(r.key, r.before, r.after) for r in updates] == [
        ("a", 1, 2), ("b", 3, 4)
    ]


def test_status_of_progression():
    wal = WriteAheadLog()
    assert wal.status_of("T1") is None
    wal.append(RecordType.BEGIN, "T1")
    assert wal.status_of("T1") is RecordType.BEGIN
    wal.append(RecordType.PREPARE, "T1")
    assert wal.status_of("T1") is RecordType.PREPARE
    wal.append(RecordType.LOCAL_COMMIT, "T1")
    assert wal.status_of("T1") is RecordType.LOCAL_COMMIT
    wal.append(RecordType.COMMIT, "T1")
    assert wal.status_of("T1") is RecordType.COMMIT
    assert wal.is_terminated("T1")


def test_active_transactions():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.BEGIN, "T2")
    wal.append(RecordType.BEGIN, "T3")
    wal.append(RecordType.COMMIT, "T2")
    wal.append(RecordType.ABORT, "T3")
    assert wal.active_transactions() == ["T1"]


def test_forced_writes_counter():
    wal = WriteAheadLog()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.PREPARE, "T1", force=True)
    wal.append(RecordType.COMMIT, "T1", force=True)
    assert wal.forced_writes == 2


def test_payload_preserved():
    wal = WriteAheadLog()
    r = wal.append(RecordType.DECIDE, "T1", decision="ABORT", sites=["S1"])
    assert r.payload == {"decision": "ABORT", "sites": ["S1"]}
