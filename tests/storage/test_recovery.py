"""Unit tests for rollback and crash-restart recovery."""

import pytest

from repro.errors import RecoveryError
from repro.storage import KVStore, RecordType, RecoveryManager, WriteAheadLog
from repro.storage.kvstore import TOMBSTONE


def make_engine():
    store = KVStore("S1")
    wal = WriteAheadLog("S1")
    return store, wal, RecoveryManager(store, wal)


def logged_put(store, wal, txn, key, value):
    """Helper mirroring the transaction layer's WAL-then-store discipline."""
    before = store.snapshot_value(key)
    wal.append(RecordType.UPDATE, txn, key=key, before=before, after=value)
    store.put(key, value)


def test_rollback_restores_before_images():
    store, wal, rec = make_engine()
    store.put("x", 10)
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 99)
    logged_put(store, wal, "T1", "y", 1)
    undone = rec.rollback("T1")
    assert undone == 2
    assert store.get("x") == 10
    assert not store.exists("y")
    assert wal.status_of("T1") is RecordType.ABORT


def test_rollback_undoes_in_reverse_order():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 1)
    logged_put(store, wal, "T1", "x", 2)
    rec.rollback("T1")
    assert not store.exists("x")


def test_rollback_of_terminated_rejected():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.COMMIT, "T1")
    with pytest.raises(RecoveryError):
        rec.rollback("T1")


def test_rollback_of_locally_committed_rejected():
    """A locally-committed transaction exposed its updates: compensation,
    not state-based undo, is the only legal revocation (Section 2)."""
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 5)
    wal.append(RecordType.LOCAL_COMMIT, "T1")
    with pytest.raises(RecoveryError, match="compensation"):
        rec.rollback("T1")


def test_restart_redoes_committed():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 7)
    wal.append(RecordType.COMMIT, "T1")
    store.wipe()
    report = rec.restart()
    assert store.get("x") == 7
    assert report.redone == ["T1"]


def test_restart_redoes_locally_committed_and_reports_it():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 7)
    wal.append(RecordType.PREPARE, "T1", force=True)
    wal.append(RecordType.LOCAL_COMMIT, "T1", force=True)
    store.wipe()
    report = rec.restart()
    assert store.get("x") == 7
    assert report.locally_committed == ["T1"]


def test_restart_undoes_in_flight():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 7)
    store.wipe()
    report = rec.restart()
    assert not store.exists("x")
    assert report.undone == ["T1"]
    assert wal.is_terminated("T1")


def test_restart_reports_in_doubt():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 7)
    wal.append(RecordType.PREPARE, "T1", force=True)
    store.wipe()
    report = rec.restart()
    assert report.in_doubt == ["T1"]
    assert not wal.is_terminated("T1")


def test_restart_mixed_outcomes():
    store, wal, rec = make_engine()
    for txn, outcome in (("T1", "commit"), ("T2", None), ("T3", "local")):
        wal.append(RecordType.BEGIN, txn)
        logged_put(store, wal, txn, f"k{txn}", txn)
        if outcome == "commit":
            wal.append(RecordType.COMMIT, txn)
        elif outcome == "local":
            wal.append(RecordType.LOCAL_COMMIT, txn)
    store.wipe()
    report = rec.restart()
    assert store.get("kT1") == "T1"
    assert store.get("kT3") == "T3"
    assert not store.exists("kT2")
    assert sorted(report.redone) == ["T1", "T3"]
    assert report.undone == ["T2"]


def test_restart_redo_applies_in_lsn_order():
    store, wal, rec = make_engine()
    wal.append(RecordType.BEGIN, "T1")
    logged_put(store, wal, "T1", "x", 1)
    wal.append(RecordType.COMMIT, "T1")
    wal.append(RecordType.BEGIN, "T2")
    logged_put(store, wal, "T2", "x", 2)
    wal.append(RecordType.COMMIT, "T2")
    store.wipe()
    rec.restart()
    assert store.get("x") == 2


def test_restart_deletion_redo():
    store, wal, rec = make_engine()
    store.put("x", 1)
    wal.append(RecordType.BEGIN, "T0")
    wal.append(RecordType.UPDATE, "T0", key="x", before=TOMBSTONE, after=1)
    wal.append(RecordType.COMMIT, "T0")
    wal.append(RecordType.BEGIN, "T1")
    wal.append(RecordType.UPDATE, "T1", key="x", before=1, after=TOMBSTONE)
    store.delete("x")
    wal.append(RecordType.COMMIT, "T1")
    store.wipe()
    rec.restart()
    assert not store.exists("x")
