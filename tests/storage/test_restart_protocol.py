"""RecoveryManager.restart under the two schemes' crash windows.

The paper's Section 5 argument in executable form: a participant that
crashes between its YES vote and the decision is *in doubt* under standard
2PC (it must block), but under O2PC the YES vote locally committed — restart
reports it ``locally_committed``, never ``in_doubt``, and the site stays
available.  Covers the WAL unit level, the full-system crash, and a crash
arriving mid-compensation.
"""

import copy

from repro.check.explorer import CheckConfig, ModelChecker
from repro.check.scheduler import ChoicePolicy
from repro.commit.base import CommitScheme
from repro.harness.system import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.storage.kvstore import KVStore
from repro.storage.recovery import RecoveryManager
from repro.storage.wal import RecordType, WriteAheadLog
from repro.txn.operations import WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec


def _restart_clone(site):
    """Restart a clone of ``site``'s log on a fresh store (restart mutates
    the log, so the live site must not be touched)."""
    store = KVStore(site_id="replay")
    return RecoveryManager(store, copy.deepcopy(site.wal)).restart(), store


class TestWalLevel:
    def test_prepare_without_decision_is_in_doubt(self):
        """Standard 2PC: YES voted (PREPARE logged), no decision -> blocked."""
        wal = WriteAheadLog("S1")
        wal.append(RecordType.BEGIN, "T1")
        wal.append(RecordType.UPDATE, "T1", key="k0", before=100, after=1)
        wal.append(RecordType.PREPARE, "T1", force=True)
        report = RecoveryManager(KVStore(), wal).restart()
        assert report.in_doubt == ["T1"]
        assert report.locally_committed == []

    def test_local_commit_without_decision_is_not_in_doubt(self):
        """O2PC: the YES vote locally committed -> redone, never blocked."""
        wal = WriteAheadLog("S1")
        wal.append(RecordType.BEGIN, "T1")
        wal.append(RecordType.UPDATE, "T1", key="k0", before=100, after=1)
        wal.append(RecordType.PREPARE, "T1", force=True)
        wal.append(RecordType.LOCAL_COMMIT, "T1", force=True)
        store = KVStore()
        report = RecoveryManager(store, wal).restart()
        assert report.in_doubt == []
        assert report.locally_committed == ["T1"]
        assert store.get("k0") == 1  # the exposed update survived the crash


def _crash_between_vote_and_decision(scheme):
    """Run a two-site transfer and crash S1 after its YES vote but before
    the DECISION message arrives (votes land at t=6, decision at t=7.5)."""
    system = System(SystemConfig(n_sites=2, scheme=scheme, seed=0))
    process = system.submit(GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 1)]),
        SubtxnSpec("S2", [WriteOp("k0", 1)]),
    ]))
    system.failures.schedule(
        CrashPlan(site_id="S1", at=6.7, duration=None)
    )
    system.env.run(process)
    system.env.run()
    return system


class TestSystemLevel:
    def test_2pc_crash_between_vote_and_decision_blocks(self):
        system = _crash_between_vote_and_decision(CommitScheme.TWO_PL)
        report, _store = _restart_clone(system.sites["S1"])
        assert report.in_doubt == ["T1"]

    def test_o2pc_crash_between_vote_and_decision_does_not_block(self):
        system = _crash_between_vote_and_decision(CommitScheme.O2PC)
        report, store = _restart_clone(system.sites["S1"])
        assert report.in_doubt == []
        assert "T1" in report.locally_committed
        assert store.get("k0") == 1


class TestMidCompensationCrash:
    def test_crash_at_compensation_start_still_terminates_cleanly(self):
        """Crash S1 exactly when CT1 starts; after recovery the decision
        retransmission re-drives the compensation and restart stays clean."""
        config = CheckConfig(scenario="conflict", protocol="P1", crashes=1)
        base = ModelChecker(config).execute(ChoicePolicy())
        vector = None
        for index, choice in enumerate(base.log):
            if choice.kind != "crash":
                continue
            for candidate, label in enumerate(choice.labels):
                if candidate and "crash:S1@comp.start:T1" in label:
                    vector = tuple(
                        c.chosen for c in base.log[:index]
                    ) + (candidate,)
                    break
            if vector:
                break
        assert vector is not None, "no comp.start crash point found"
        outcome = ModelChecker(config).execute(ChoicePolicy(vector))
        assert outcome.ok, [str(v) for v in outcome.violations]
        site = outcome.system.sites["S1"]
        assert site.wal.status_of("T1") is RecordType.ABORT
        assert site.store.get("k0") == 100  # compensation restored the value
        report, _store = _restart_clone(site)
        assert report.in_doubt == []
