"""Unit tests for the key-value store."""

import pytest

from repro.errors import KeyNotFound
from repro.storage import KVStore
from repro.storage.kvstore import TOMBSTONE


def test_put_get_roundtrip():
    store = KVStore()
    store.put("a", 1)
    assert store.get("a") == 1


def test_get_missing_raises():
    store = KVStore()
    with pytest.raises(KeyNotFound):
        store.get("missing")


def test_get_or_default():
    store = KVStore()
    assert store.get_or("missing", 42) == 42
    store.put("k", "v")
    assert store.get_or("k", 42) == "v"


def test_delete_and_exists():
    store = KVStore()
    store.put("a", 1)
    assert store.exists("a")
    store.delete("a")
    assert not store.exists("a")
    store.delete("a")  # idempotent


def test_snapshot_value_tombstone_for_missing():
    store = KVStore()
    assert store.snapshot_value("nope") is TOMBSTONE
    store.put("yes", 5)
    assert store.snapshot_value("yes") == 5


def test_apply_image_restores_value_and_tombstone():
    store = KVStore()
    store.put("a", 1)
    image = store.snapshot_value("a")
    store.put("a", 2)
    store.apply_image("a", image)
    assert store.get("a") == 1
    store.apply_image("a", TOMBSTONE)
    assert not store.exists("a")


def test_keys_sorted():
    store = KVStore()
    for k in ("c", "a", "b"):
        store.put(k, 0)
    assert store.keys() == ["a", "b", "c"]
    assert [k for k, _ in store.items()] == ["a", "b", "c"]


def test_snapshot_restore_roundtrip():
    store = KVStore()
    store.put("a", 1)
    snap = store.snapshot()
    store.put("a", 2)
    store.put("b", 3)
    store.restore(snap)
    assert store.get("a") == 1
    assert not store.exists("b")


def test_snapshot_is_independent_copy():
    store = KVStore()
    store.put("a", 1)
    snap = store.snapshot()
    snap["a"] = 999
    assert store.get("a") == 1


def test_wipe_clears_everything():
    store = KVStore()
    store.put("a", 1)
    store.wipe()
    assert len(store) == 0


def test_read_write_counters():
    store = KVStore()
    store.put("a", 1)
    store.get("a")
    store.get_or("b")
    store.delete("a")
    assert store.write_count == 2
    assert store.read_count == 2
