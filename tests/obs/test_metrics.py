"""Unit tests for histograms, windowed series, and streaming metrics."""

import pytest

from repro.obs.metrics import (
    Histogram,
    WindowedSeries,
    mean,
    percentile,
    report_from_logs,
)
from repro.sim import Rng
from tests.obs.test_events import observed_workload


class TestSortReference:
    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile([], 50) == 0.0


class TestHistogram:
    def test_exact_statistics(self):
        h = Histogram()
        for v in (0.0, 1.0, 2.0, 7.0):
            h.add(v)
        assert h.count == len(h) == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.max == 7.0
        assert h.min == 0.0
        assert h.zero_count == 1

    def test_empty(self):
        h = Histogram()
        assert len(h) == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_single_value_clamps_to_exact(self):
        h = Histogram()
        h.add(5.0)
        assert h.percentile(1) == 5.0
        assert h.percentile(99) == 5.0

    def test_mostly_zero_values(self):
        h = Histogram()
        for _ in range(9):
            h.add(0.0)
        h.add(100.0)
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == pytest.approx(100.0, rel=0.12)

    def test_percentiles_track_sort_reference(self):
        rng = Rng(42)
        values = [rng.exponential(5.0) for _ in range(2000)]
        h = Histogram()
        for v in values:
            h.add(v)
        for p in (10, 50, 90, 99):
            exact = percentile(values, p)
            approx = h.percentile(p)
            # One geometric bucket of relative error (~7.5% at 16
            # buckets/decade) plus the rank-rounding difference.
            assert approx == pytest.approx(exact, rel=0.12)

    def test_out_of_span_values_clamp(self):
        h = Histogram(min_value=1.0, max_value=10.0)
        h.add(0.5)    # below span -> bottom bucket
        h.add(100.0)  # beyond span -> top bucket
        assert h.count == 2
        assert h.percentile(1) >= h.min
        assert h.percentile(99) <= h.max


class TestWindowedSeries:
    def test_accumulation_and_rows(self):
        s = WindowedSeries(window=10.0)
        s.add(1.0)
        s.add(9.9)
        s.add(35.0, amount=2.0)
        assert s.rows() == [(0.0, 2.0), (30.0, 2.0)]  # gap at 10/20 skipped
        assert s.total == 4.0

    def test_value_at(self):
        s = WindowedSeries(window=5.0)
        s.add(2.0)
        assert s.value_at(4.9) == 1.0
        assert s.value_at(5.0) == 0.0


class TestStreamingParity:
    """The streaming aggregator must agree with the post-hoc log scan."""

    @pytest.fixture(scope="class")
    def reports(self):
        system, elapsed = observed_workload(seed=7, n=15)
        return system.metrics(elapsed), report_from_logs(system, elapsed)

    def test_run_is_nontrivial(self, reports):
        streamed, exact = reports
        assert exact.committed > 0
        assert exact.aborted > 0
        assert exact.compensations > 0

    def test_counters_exact(self, reports):
        streamed, exact = reports
        for name in (
            "committed", "aborted", "messages_total", "messages_by_type",
            "compensations", "compensation_retries", "deadlocks",
            "rejections", "forced_log_writes",
        ):
            assert getattr(streamed, name) == getattr(exact, name), name

    def test_sums_and_means_exact(self, reports):
        streamed, exact = reports
        for name in (
            "mean_latency", "mean_lock_hold", "max_lock_hold",
            "mean_lock_wait", "total_lock_wait", "throughput",
            "messages_per_txn",
        ):
            assert getattr(streamed, name) == pytest.approx(
                getattr(exact, name), rel=1e-9
            ), name
        assert streamed.abort_rate == pytest.approx(exact.abort_rate)

    def test_percentiles_within_bucket_error(self, reports):
        streamed, exact = reports
        assert streamed.p50_latency == pytest.approx(
            exact.p50_latency, rel=0.12
        )
        assert streamed.p99_latency == pytest.approx(
            exact.p99_latency, rel=0.12
        )

    def test_streaming_is_the_enabled_path(self):
        system, elapsed = observed_workload(seed=3, n=5)
        # Disabling the bus must flip metrics() back to the exact scan.
        streamed = system.metrics(elapsed)
        system.obs.disable()
        exact = system.metrics(elapsed)
        assert streamed.committed == exact.committed
        latencies = [o.latency for o in system.outcomes]
        assert exact.p50_latency == percentile(latencies, 50)
