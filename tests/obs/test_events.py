"""Unit tests for the event bus, the taxonomy, and system-level recording."""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.obs.events import EventBus, EventLog, LockGranted, TxnSubmitted
from repro.sim import Environment
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec
from repro.workload import WorkloadConfig, WorkloadGenerator


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def spec(txn_id="T1", sites=("S1", "S2")):
    return GlobalTxnSpec(txn_id=txn_id, subtxns=[
        SubtxnSpec(s, [SemanticOp("deposit", "k0", {"amount": 1})])
        for s in sites
    ])


def observed_workload(seed=7, n=12):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1", observability=True,
        seed=seed,
    ))
    gen = WorkloadGenerator(system, WorkloadConfig(
        n_transactions=n, abort_probability=0.3, read_fraction=0.4,
        arrival_mean=2.0, zipf_theta=0.6,
    ), seed=seed)
    elapsed = gen.run()
    return system, elapsed


class TestEventBus:
    def test_disabled_by_default(self):
        assert not Environment().bus.enabled
        assert not EventBus().enabled

    def test_publish_stamps_ts_and_seq(self):
        clock = FakeClock(3.5)
        bus = EventBus(clock=clock)
        first = bus.publish(TxnSubmitted(txn_id="T1", sites=("S1",)))
        clock.now = 4.0
        second = bus.publish(LockGranted(
            site_id="S1", txn_id="T1", key="k0", mode="X", waited=0.5,
        ))
        assert (first.ts, first.seq) == (3.5, 0)
        assert (second.ts, second.seq) == (4.0, 1)

    def test_subscribers_called_in_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda e: calls.append("a"))
        bus.subscribe(lambda e: calls.append("b"))
        bus.publish(TxnSubmitted(txn_id="T1", sites=()))
        assert calls == ["a", "b"]

    def test_subscribe_is_idempotent(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.subscribe(log)
        bus.publish(TxnSubmitted(txn_id="T1", sites=()))
        assert len(log) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.unsubscribe(log)
        bus.unsubscribe(log)  # no-op when absent
        bus.publish(TxnSubmitted(txn_id="T1", sites=()))
        assert len(log) == 0


class TestEventLog:
    def make_log(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.publish(TxnSubmitted(txn_id="T1", sites=("S1",)))
        bus.publish(TxnSubmitted(txn_id="T2", sites=("S2",)))
        bus.publish(LockGranted(
            site_id="S1", txn_id="T1", key="k0", mode="S", waited=0.0,
        ))
        return log

    def test_of_kind(self):
        log = self.make_log()
        assert len(log.of_kind("txn.submit")) == 2
        assert len(log.of_kind("lock.grant")) == 1
        assert log.of_kind("nope") == []

    def test_for_txn(self):
        log = self.make_log()
        assert len(log.for_txn("T1")) == 2
        assert len(log.for_txn("T2")) == 1

    def test_len(self):
        assert len(self.make_log()) == 3


class TestSystemRecording:
    def test_disabled_by_default_records_nothing(self):
        system = System()
        system.run_transaction(spec())
        system.env.run()
        assert not system.obs.enabled
        assert system.events() == []
        assert system.spans() == {}

    def test_enabled_records_full_lifecycle(self):
        system = System(SystemConfig(
            scheme=CommitScheme.O2PC, observability=True,
        ))
        system.run_transaction(spec())
        system.env.run()
        events = system.events()
        kinds = {e.kind for e in events}
        assert {
            "txn.submit", "txn.phase", "txn.vote", "txn.decision",
            "txn.end", "subtxn.start", "subtxn.exec", "subtxn.local_commit",
            "subtxn.decision", "lock.request", "lock.grant", "lock.release",
            "net.send", "net.deliver",
        } <= kinds

    def test_seq_is_gap_free_and_ts_monotone(self):
        system = System(SystemConfig(observability=True))
        system.run_transaction(spec())
        system.env.run()
        events = system.events()
        assert [e.seq for e in events] == list(range(len(events)))
        assert all(a.ts <= b.ts for a, b in zip(events, events[1:]))

    def test_enable_observability_is_idempotent(self):
        system = System()
        system.enable_observability()
        system.enable_observability()
        system.run_transaction(spec())
        system.env.run()
        assert len([e for e in system.events() if e.kind == "txn.end"]) == 1

    def test_disable_keeps_recorded_events(self):
        system = System(SystemConfig(observability=True))
        system.run_transaction(spec("T1"))
        recorded = len(system.events())
        system.obs.disable()
        system.run_transaction(spec("T2"))
        system.env.run()
        assert len(system.events()) == recorded


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        first, _ = observed_workload(seed=7)
        second, _ = observed_workload(seed=7)
        text = first.obs.jsonl()
        assert text  # nonempty stream
        assert text == second.obs.jsonl()

    def test_different_seeds_differ(self):
        first, _ = observed_workload(seed=7)
        second, _ = observed_workload(seed=8)
        assert first.obs.jsonl() != second.obs.jsonl()
