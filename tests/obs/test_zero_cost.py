"""Disabled observability is truly zero-cost on the message hot path.

Two guards make a plain simulation pay nothing for instrumentation it is
not using: delivery annotations (consumed only by the model checker's
controlled scheduler) are built only when ``env.annotate_deliveries`` is
set, and bus events are not even *constructed* while the bus is disabled.
The construction tests prove the latter by replacing the event classes
with booby-traps: if the guard ever moved after the constructor call,
these fail.
"""

import pytest

from repro.check.scheduler import ChoicePolicy, ControlledEnvironment
from repro.net import Message, MsgType, Network
from repro.sim import Environment, Rng


def _send_one(env):
    net = Network(env, rng=Rng(0))
    net.register("S1")
    net.register("S2")
    net.send(Message(
        msg_type=MsgType.VOTE_REQ, sender="S1", recipient="S2",
        txn_id="T1", payload={},
    ))
    return net


def _queued_events(env):
    return list(env.queued_events())


class TestDeliveryAnnotations:
    def test_plain_environment_builds_no_annotation(self):
        env = Environment()
        _send_one(env)
        events = _queued_events(env)
        assert events  # the arrival timeout is scheduled ...
        assert all(event.annotation is None for event in events)

    def test_controlled_environment_annotates(self):
        env = ControlledEnvironment(ChoicePolicy(()))
        _send_one(env)
        annotations = [
            event.annotation
            for event in _queued_events(env)
            if event.annotation is not None
        ]
        assert annotations == [("net.deliver", "S2", "VOTE_REQ:S1->S2:T1")]


class _Boom:
    def __init__(self, *args, **kwargs):
        raise AssertionError("event constructed while the bus is disabled")


class TestDisabledBusConstruction:
    def test_disabled_bus_never_constructs_events(self, monkeypatch):
        monkeypatch.setattr("repro.net.network.MessageSent", _Boom)
        monkeypatch.setattr("repro.net.network.MessageDelivered", _Boom)
        env = Environment()  # bus disabled by default
        net = _send_one(env)

        def receiver(env):
            yield net.receive("S2")

        env.process(receiver(env))
        env.run()
        assert net.delivered[MsgType.VOTE_REQ] == 1

    def test_enabled_bus_reaches_the_constructor(self, monkeypatch):
        # Positive control: with the bus on, the same booby-trap fires,
        # proving the disabled-path test actually guards construction.
        monkeypatch.setattr("repro.net.network.MessageSent", _Boom)
        env = Environment()
        env.bus.enable()
        with pytest.raises(AssertionError, match="while the bus is disabled"):
            _send_one(env)
