"""Unit tests for span-tree construction from the event stream."""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.obs.spans import build_spans, render_span_tree
from repro.txn import GlobalTxnSpec, SemanticOp, SubtxnSpec, VotePolicy


def run_observed(force_no=False):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1", observability=True,
    ))
    spec = GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [SemanticOp("withdraw", "k0", {"amount": 1})]),
        SubtxnSpec(
            "S2", [SemanticOp("deposit", "k0", {"amount": 1})],
            vote=VotePolicy.FORCE_NO if force_no else VotePolicy.AUTO,
        ),
    ])
    system.run_transaction(spec)
    system.env.run()
    return system


class TestCommittedTree:
    def test_root_and_phases(self):
        root = run_observed().spans()["T1"]
        assert root.kind == "txn"
        assert root.name == "txn:T1"
        assert root.attrs["sites"] == ["S1", "S2"]
        assert root.attrs["decision"] == "COMMIT"
        assert root.attrs["committed"] is True
        phases = [c for c in root.children if c.kind == "phase"]
        assert [p.name for p in phases] == [
            "phase:spawn", "phase:vote", "phase:decision",
        ]
        assert phases[0].start <= phases[1].start <= phases[2].start

    def test_subtxn_spans_under_spawn_phase(self):
        root = run_observed().spans()["T1"]
        spawn = next(c for c in root.children if c.name == "phase:spawn")
        subtxns = [c for c in spawn.children if c.kind == "subtxn"]
        assert sorted(s.site_id for s in subtxns) == ["S1", "S2"]
        assert all(s.attrs["outcome"] == "executed" for s in subtxns)
        assert all(s.duration >= 0 for s in subtxns)

    def test_vote_spans(self):
        root = run_observed().spans()["T1"]
        votes = root.find("vote")
        assert sorted(v.site_id for v in votes) == ["S1", "S2"]
        assert all(v.attrs["vote"] == "YES" for v in votes)
        assert all(v.duration == 0.0 for v in votes)  # point spans

    def test_durations_and_critical_path(self):
        root = run_observed().spans()["T1"]
        assert root.duration > 0
        path = root.critical_path()
        assert path[0] is root
        assert len(path) >= 2
        assert path[-1].children == []
        assert all(a.end >= b.end for a, b in zip(path, path[1:]))

    def test_render(self):
        root = run_observed().spans()["T1"]
        text = render_span_tree(root)
        assert text == root.render()
        assert "txn:T1" in text
        assert "\n  phase:spawn" in text  # children indented
        assert "dur=" in text


class TestAbortedTree:
    def test_decision_and_votes(self):
        root = run_observed(force_no=True).spans()["T1"]
        assert root.attrs["decision"] == "ABORT"
        assert root.attrs["committed"] is False
        votes = {v.site_id: v.attrs["vote"] for v in root.find("vote")}
        assert votes["S2"] == "NO"

    def test_compensation_span(self):
        root = run_observed(force_no=True).spans()["T1"]
        comps = root.find("comp")
        assert [c.site_id for c in comps] == ["S1"]
        assert comps[0].attrs["outcome"] == "compensated"
        assert comps[0].attrs["retries"] == 0
        assert "ct_id" in comps[0].attrs


class TestPartialStreams:
    def test_truncated_stream_tolerated(self):
        events = [
            e for e in run_observed().events() if e.kind != "txn.end"
        ]
        root = build_spans(events)["T1"]
        assert "committed" not in root.attrs

    def test_open_subtxns_tagged_unfinished(self):
        events = [
            e for e in run_observed().events()
            if e.kind not in ("subtxn.exec", "subtxn.fail")
        ]
        root = build_spans(events)["T1"]
        spawn = next(c for c in root.children if c.name == "phase:spawn")
        subtxns = [c for c in spawn.children if c.kind == "subtxn"]
        assert subtxns
        assert all(s.attrs["outcome"] == "unfinished" for s in subtxns)

    def test_empty_stream(self):
        assert build_spans([]) == {}
