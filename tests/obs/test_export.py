"""Unit tests for the deterministic JSONL export."""

import io
import json

from repro.obs.events import EventBus, TxnSubmitted, TxnTerminated
from repro.obs.export import event_to_dict, to_jsonl, write_jsonl


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def stamped_events():
    clock = FakeClock(1.5)
    bus = EventBus(clock=clock)
    first = bus.publish(TxnSubmitted(txn_id="T1", sites=("S1", "S2")))
    clock.now = 9.25
    second = bus.publish(TxnTerminated(
        txn_id="T1", committed=True, latency=7.75, compensated_sites=(),
    ))
    return [first, second]


class TestEventToDict:
    def test_kind_first_and_tuples_to_lists(self):
        record = event_to_dict(stamped_events()[0])
        assert next(iter(record)) == "kind"
        assert record == {
            "kind": "txn.submit", "ts": 1.5, "seq": 0,
            "txn_id": "T1", "sites": ["S1", "S2"],
        }

    def test_empty_tuple(self):
        record = event_to_dict(stamped_events()[1])
        assert record["compensated_sites"] == []
        assert record["committed"] is True


class TestToJsonl:
    def test_empty(self):
        assert to_jsonl([]) == ""

    def test_lines_parse_and_keys_sorted(self):
        text = to_jsonl(stamped_events())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
            assert '", "' not in line  # compact separators

    def test_seq_order_preserved(self):
        records = [
            json.loads(line)
            for line in to_jsonl(stamped_events()).splitlines()
        ]
        assert [r["seq"] for r in records] == [0, 1]


class TestWriteJsonl:
    def test_matches_to_jsonl_and_counts(self):
        events = stamped_events()
        handle = io.StringIO()
        assert write_jsonl(events, handle) == 2
        assert handle.getvalue() == to_jsonl(events)

    def test_empty(self):
        handle = io.StringIO()
        assert write_jsonl([], handle) == 0
        assert handle.getvalue() == ""
