"""The blessed surface of ``import repro`` is exactly ``__all__``.

PR 1 introduced deprecation shims for the pre-observability free
functions; this PR removes them.  These tests pin the replacement
contract: the package exposes the documented objects (System,
SystemConfig, the transport/backend types, the observability layer) and
*only* those — a new name on the package is an API decision, not an
accident of an import.
"""

import repro

#: the documented import surface, in sync with the package docstring
BLESSED_OBJECTS = {
    "BACKENDS",
    "Event",
    "EventBus",
    "Histogram",
    "MetricsReport",
    "Observability",
    "Span",
    "StreamingMetrics",
    "System",
    "SystemConfig",
    "Transport",
    "build_spans",
    "to_jsonl",
}

BLESSED_SUBPACKAGES = {
    "analysis",
    "commit",
    "compensation",
    "core",
    "errors",
    "harness",
    "ids",
    "locking",
    "net",
    "obs",
    "rt",
    "sg",
    "sim",
    "storage",
    "txn",
    "workload",
}


class TestPublicSurface:
    def test_all_is_exactly_the_blessed_surface(self):
        assert set(repro.__all__) == BLESSED_OBJECTS | BLESSED_SUBPACKAGES

    def test_every_blessed_object_resolves(self):
        for name in sorted(BLESSED_OBJECTS):
            assert getattr(repro, name) is not None, name

    def test_every_blessed_subpackage_imports(self):
        import importlib

        for name in sorted(BLESSED_SUBPACKAGES):
            module = importlib.import_module(f"repro.{name}")
            assert module.__name__ == f"repro.{name}"

    def test_no_stray_public_names(self):
        # Anything public on the package object must be blessed or a
        # submodule that gets bound as a side effect of the re-exports.
        import types

        for name in dir(repro):
            if name.startswith("_") or name == "annotations":
                continue
            if isinstance(getattr(repro, name), types.ModuleType):
                continue
            assert name in BLESSED_OBJECTS, (
                f"unblessed public attribute repro.{name}"
            )

    def test_transport_types_are_blessed(self):
        from repro.net.network import Network
        from repro.net.transport import Transport

        assert repro.Transport is Transport
        assert repro.BACKENDS == ("sim", "net")
        # The simulated Network satisfies the Transport protocol
        # structurally (the runtime TcpTransport is covered by the
        # conformance suite, which needs sockets).
        assert issubclass(Network, Transport)


class TestShimsRemoved:
    def test_collect_metrics_shim_is_gone(self):
        import repro.harness as harness

        assert not hasattr(harness, "collect_metrics")
        try:
            import repro.harness.metrics  # noqa: F401
        except ModuleNotFoundError:
            pass
        else:
            raise AssertionError("repro.harness.metrics should be removed")

    def test_trace_shim_is_gone(self):
        import repro.harness as harness

        assert not hasattr(harness, "transaction_timeline")
        try:
            import repro.harness.trace  # noqa: F401
        except ModuleNotFoundError:
            pass
        else:
            raise AssertionError("repro.harness.trace should be removed")

    def test_metrics_report_still_importable_from_harness(self):
        from repro.harness import MetricsReport
        from repro.obs.metrics import MetricsReport as ObsReport

        assert MetricsReport is ObsReport
