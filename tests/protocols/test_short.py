"""Short-Commit on the simulated substrate.

The scheme's three defining behaviors, each pinned by holding the
coordinator down over the decision window so a successor can reach the
exposed data:

* early release — a successor writes an exposer's key *before* the
  exposer's decision, recording a commit dependency instead of blocking;
* cascade abort — the exposer's ABORT rolls the successor back too (undo
  chains unwind dependents first, restoring the original before-images);
* dependency timeout — a dependency still undecided at the deadline makes
  the dependent vote NO rather than wait forever.
"""

from repro.commit.base import CommitConfig, CommitScheme
from repro.harness.system import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.net.network import LatencyModel
from repro.txn.operations import WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy

COMMIT = CommitConfig(
    spawn_timeout=30.0,
    spawn_retry_delay=2.0,
    max_spawn_retries=10,
    vote_timeout=30.0,
    ack_timeout=15.0,
    decision_retries=5,
    decision_log_delay=0.5,
    sequential_spawn=True,
    paxos_acceptors=3,
    paxos_decision_timeout=10.0,
    short_dependency_timeout=25.0,
)

#: T1's votes land by ~6 (unit latency, sequential spawn); the decision
#: goes out at ~6.5 after the 0.5 force-log delay — 6.2 is inside the
#: window where S1 has exposed its update but the outcome is unknown
CRASH_AT = 6.2


def make_system():
    return System(SystemConfig(
        n_sites=2, scheme=CommitScheme.SHORT, protocol="none", seed=0,
        latency=LatencyModel(base=1.0, jitter=0.0), commit=COMMIT,
    ))


def submit_after(system, spec, delay):
    def runner():
        yield system.env.timeout(delay)
        outcome = yield system.submit(spec)
        return outcome

    return system.env.process(runner(), name=f"submit:{spec.txn_id}")


def t1(vote=VotePolicy.AUTO):
    return GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 11)]),
        SubtxnSpec("S2", [WriteOp("k1", 11)], vote=vote),
    ])


def t2():
    # Overlaps T1 on k0 at S1 only.
    return GlobalTxnSpec("T2", [
        SubtxnSpec("S1", [WriteOp("k0", 22)]),
        SubtxnSpec("S2", [WriteOp("k5", 22)]),
    ])


def outcome_of(system, txn_id):
    return next(o for o in system.outcomes if o.txn_id == txn_id)


class TestEarlyRelease:
    def test_successor_writes_exposed_key_and_records_dependency(self):
        system = make_system()
        # Hold T1 undecided for 10 units: S1 votes YES at ~5, releases its
        # locks, and exposes k0 while the outcome is open.
        system.failures.schedule(
            CrashPlan("coord.T1", at=CRASH_AT, duration=10.0)
        )
        system.submit(t1())
        submit_after(system, t2(), 8.0)

        system.env.run(until=12.0)
        participant = system.participants["S1"]
        t1_state = participant.subtxns["T1"]
        t2_state = participant.subtxns["T2"]
        # Mid-window: T1 voted but is undecided, yet T2 already executed
        # over its exposed key — under 2PC/Paxos T2 would still be queued
        # on the k0 lock here.
        assert t1_state.voted == "YES" and t1_state.decided is None
        assert t2_state.executed
        assert participant._deps["T2"] == {"T1"}
        assert participant._exposed_by["k0"] == "T1"

        system.env.run()
        assert outcome_of(system, "T1").committed
        assert outcome_of(system, "T2").committed
        # T2 overwrote last; all exposure bookkeeping drained.
        assert system.sites["S1"].store.get_or("k0", None) == 22
        assert participant._deps == {}
        assert participant._exposed_by == {}


class TestCascadeAbort:
    def test_exposer_abort_cascades_and_restores_before_images(self):
        system = make_system()
        system.failures.schedule(
            CrashPlan("coord.T1", at=CRASH_AT, duration=10.0)
        )
        system.submit(t1(vote=VotePolicy.FORCE_NO))
        submit_after(system, t2(), 8.0)
        system.env.run()

        assert not outcome_of(system, "T1").committed
        # No compensation anywhere: Short-Commit's whole trade.
        assert outcome_of(system, "T1").compensated_sites == []
        assert not outcome_of(system, "T2").committed
        participant = system.participants["S1"]
        assert "T2" in participant._cascade_aborted
        # Undo order mattered: T2's rollback re-installed T1's value,
        # T1's rollback then restored the original.
        assert system.sites["S1"].store.get_or("k0", None) == 100
        assert system.sites["S2"].store.get_or("k1", None) == 100


class TestDependencyTimeout:
    def test_unresolved_dependency_times_out_into_a_no_vote(self):
        system = make_system()
        # T1's coordinator stays down past T2's dependency deadline
        # (gate opens ~13, timeout 25 → NO at ~38, long before t≈406).
        system.failures.schedule(
            CrashPlan("coord.T1", at=CRASH_AT, duration=400.0)
        )
        system.submit(t1())
        submit_after(system, t2(), 8.0)
        system.env.run()

        assert outcome_of(system, "T1").committed
        assert not outcome_of(system, "T2").committed
        participant = system.participants["S1"]
        assert participant.subtxns["T2"].voted == "NO"
        # T2's rollback happened before T1 decided, so T1's late COMMIT
        # kept its own write.
        assert system.sites["S1"].store.get_or("k0", None) == 11
