"""The engine registry: every scheme resolves, unknown schemes fail loudly."""

import pytest

from repro.commit.base import CommitScheme
from repro.errors import UnknownScheme
from repro.protocols import ENGINES, acceptor_ids, engine_for


class TestRegistry:
    def test_every_scheme_has_an_engine(self):
        # The static lint (dispatch/missing-engine) enforces this at
        # source level; this is the runtime half of the same contract.
        assert set(ENGINES) == set(CommitScheme)

    @pytest.mark.parametrize("scheme", list(CommitScheme))
    def test_engine_for_returns_matching_spec(self, scheme):
        spec = engine_for(scheme)
        assert spec.scheme is scheme
        assert callable(spec.coordinator)
        assert callable(spec.participant)

    def test_only_paxos_uses_acceptors(self):
        with_acceptors = {s for s in ENGINES if ENGINES[s].uses_acceptors}
        assert with_acceptors == {CommitScheme.PAXOS}

    def test_unregistered_scheme_raises_unknown_scheme(self):
        spec = ENGINES.pop(CommitScheme.PAXOS)
        try:
            with pytest.raises(UnknownScheme) as excinfo:
                engine_for(CommitScheme.PAXOS)
            # The error lists what *is* registered, for a usable message.
            assert CommitScheme.O2PC.value in str(excinfo.value)
        finally:
            ENGINES[CommitScheme.PAXOS] = spec


class TestAcceptorIds:
    def test_acceptor_ids_are_one_based(self):
        assert acceptor_ids(3) == ("acc.1", "acc.2", "acc.3")

    def test_zero_acceptors_is_empty(self):
        assert acceptor_ids(0) == ()
