"""The Paxos Commit acceptor: promise/accept ordering and durable state.

Driven over the simulated network (register a fake leader endpoint, send
1a/2a messages, collect the 1b/2b replies) so the dispatch loop and the
wire payload shapes are exercised, not just the state machine.
"""

from repro.net.message import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.protocols.acceptor import BALLOT_ZERO, Acceptor, ballot_of
from repro.sim.engine import Environment
from repro.sim.rng import Rng

LEADER = "leader.1"


def make_net():
    env = Environment()
    network = Network(
        env, rng=Rng(0).fork("network"),
        latency=LatencyModel(base=1.0, jitter=0.0),
    )
    network.register(LEADER)
    return env, network


def exchange(env, network, messages, replies=None):
    """Send ``messages`` to the acceptor; collect ``replies`` responses."""
    expected = len(messages) if replies is None else replies

    def driver():
        collected = []
        for message in messages:
            network.send(message)
        for _ in range(expected):
            collected.append((yield network.receive(LEADER)))
        return collected

    return env.run(env.process(driver(), name="leader"))


def prepare(ballot, txn_id="T1"):
    return Message(
        msg_type=MsgType.PAXOS_PREPARE, sender=LEADER, recipient="acc.1",
        txn_id=txn_id, payload={"ballot": list(ballot), "leader": LEADER},
    )


def accept(ballot, instance="S1", value="YES", txn_id="T1", sites=None):
    return Message(
        msg_type=MsgType.PAXOS_ACCEPT, sender=LEADER, recipient="acc.1",
        txn_id=txn_id, payload={
            "ballot": list(ballot), "instance": instance, "value": value,
            "leader": LEADER, "sites": sites or ["S1", "S2"],
        },
    )


class TestBallots:
    def test_ballots_order_lexicographically(self):
        assert BALLOT_ZERO < (1, "") < (1, "S1") < (2, "")
        assert ballot_of([1, "S1"]) == (1, "S1")


class TestAcceptPhase:
    def test_ballot_zero_vote_is_accepted_and_echoed(self):
        env, network = make_net()
        acceptor = Acceptor(env, network, "acc.1")
        (reply,) = exchange(env, network, [accept(BALLOT_ZERO)])
        assert reply.msg_type is MsgType.PAXOS_ACCEPTED
        assert reply.payload["instance"] == "S1"
        assert reply.payload["value"] == "YES"
        assert acceptor.accepted["T1"]["S1"] == (BALLOT_ZERO, "YES")
        # The participant list rides along so recovery leaders can learn
        # the instance set from any acceptor.
        assert acceptor.sites["T1"] == ["S1", "S2"]

    def test_accept_below_promised_ballot_is_ignored(self):
        env, network = make_net()
        acceptor = Acceptor(env, network, "acc.1")
        exchange(env, network, [prepare((2, LEADER))])
        # Ballot-0 2a arriving after a round-2 promise: nacked by silence.
        exchange(env, network, [accept(BALLOT_ZERO)], replies=0)
        env.run()
        assert "T1" not in acceptor.accepted

    def test_higher_ballot_overwrites_accepted_value(self):
        env, network = make_net()
        acceptor = Acceptor(env, network, "acc.1")
        exchange(env, network, [accept(BALLOT_ZERO, value="YES")])
        exchange(env, network, [accept((1, LEADER), value="NO")])
        assert acceptor.accepted["T1"]["S1"] == ((1, LEADER), "NO")


class TestPreparePhase:
    def test_promise_carries_previously_accepted_values(self):
        env, network = make_net()
        Acceptor(env, network, "acc.1")
        exchange(env, network, [accept(BALLOT_ZERO, instance="S2")])
        (promise,) = exchange(env, network, [prepare((1, LEADER))])
        assert promise.msg_type is MsgType.PAXOS_PROMISE
        assert promise.payload["ballot"] == [1, LEADER]
        assert promise.payload["accepted"] == {"S2": [[0, ""], "YES"]}
        assert promise.payload["sites"] == ["S1", "S2"]

    def test_stale_prepare_gets_the_higher_ballot_back(self):
        env, network = make_net()
        acceptor = Acceptor(env, network, "acc.1")
        exchange(env, network, [prepare((3, "other"))])
        (nack,) = exchange(env, network, [prepare((1, LEADER))])
        # The reply *is* the nack: it names the ballot that outbid us.
        assert nack.payload["ballot"] == [3, "other"]
        assert acceptor.promised["T1"] == (3, "other")


class TestPersistence:
    def test_state_survives_a_new_acceptor_on_the_same_file(self, tmp_path):
        path = str(tmp_path / "acc.1.json")
        env, network = make_net()
        Acceptor(env, network, "acc.1", path=path)
        exchange(env, network, [accept(BALLOT_ZERO)])
        exchange(env, network, [prepare((2, LEADER))])

        env2, network2 = make_net()
        rebooted = Acceptor(env2, network2, "acc.1", path=path)
        assert rebooted.promised["T1"] == (2, LEADER)
        assert rebooted.accepted["T1"]["S1"] == (BALLOT_ZERO, "YES")
        assert rebooted.sites["T1"] == ["S1", "S2"]
