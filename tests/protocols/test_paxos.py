"""Paxos Commit on the simulated substrate.

The headline property under test is the one that distinguishes the scheme
from the whole 2PC family: participants reach a decision while the
coordinator is *down*, as long as an acceptor majority is up.  The
timeouts are compressed exactly like the checker's so a watchdog round
fits in a short run.
"""

from repro.commit.base import CommitConfig, CommitScheme
from repro.harness.system import System, SystemConfig
from repro.net.failures import CrashPlan
from repro.net.network import LatencyModel
from repro.txn.operations import WriteOp
from repro.txn.transaction import GlobalTxnSpec, SubtxnSpec, VotePolicy

COMMIT = CommitConfig(
    spawn_timeout=30.0,
    spawn_retry_delay=2.0,
    max_spawn_retries=10,
    vote_timeout=30.0,
    ack_timeout=15.0,
    decision_retries=5,
    decision_log_delay=0.5,
    sequential_spawn=True,
    paxos_acceptors=3,
    paxos_decision_timeout=10.0,
    short_dependency_timeout=25.0,
)

#: the crash window: after both votes (~6 with unit latency), before the
#: coordinator's force-logged decision goes out (votes + 0.5 log delay)
CRASH_AT = 6.2
OUTAGE = 400.0


def make_system(**overrides):
    config = SystemConfig(
        n_sites=2, scheme=CommitScheme.PAXOS, protocol="none", seed=0,
        latency=LatencyModel(base=1.0, jitter=0.0), commit=COMMIT,
        **overrides,
    )
    return System(config)


def transfer(vote=VotePolicy.AUTO):
    return GlobalTxnSpec("T1", [
        SubtxnSpec("S1", [WriteOp("k0", 1)]),
        SubtxnSpec("S2", [WriteOp("k1", 1)], vote=vote),
    ])


def decisions(system, txn_id="T1"):
    return {
        site_id: participant.subtxns[txn_id]
        for site_id, participant in system.participants.items()
        if txn_id in participant.subtxns
    }


class TestFailureFree:
    def test_ballot_zero_fast_path_commits(self):
        system = make_system()
        outcome = system.run_transaction(transfer())
        assert outcome.committed
        for state in decisions(system).values():
            assert state.decided == "COMMIT"
        # Every acceptor saw both instances' ballot-0 YES votes.
        for acceptor in system.acceptors.values():
            accepted = acceptor.accepted["T1"]
            assert {i: v for i, (_, v) in accepted.items()} == {
                "S1": "YES", "S2": "YES",
            }

    def test_no_vote_aborts_without_compensation(self):
        # Paxos Commit holds locks through the decision like 2PC: an
        # abort is a plain rollback, never a compensating action.
        system = make_system()
        outcome = system.run_transaction(transfer(vote=VotePolicy.FORCE_NO))
        assert not outcome.committed
        assert outcome.compensated_sites == []
        assert system.sites["S1"].store.get_or("k0", None) == 100

    def test_commits_with_one_acceptor_down(self):
        # 2F+1 = 3 acceptors tolerate F = 1: a bare 2-of-3 quorum carries
        # the fast path with no extra rounds.
        system = make_system()
        system.failures.schedule(CrashPlan("acc.3", at=0.5, duration=OUTAGE))
        outcome = system.run_transaction(transfer())
        assert outcome.committed


class TestNonBlocking:
    def run_crashed_coordinator(self, extra_plans=()):
        system = make_system()
        system.failures.schedule(CrashPlan("acc.3", at=0.5, duration=OUTAGE))
        for plan in extra_plans:
            system.failures.schedule(plan)
        system.failures.schedule(
            CrashPlan("coord.T1", at=CRASH_AT, duration=OUTAGE)
        )
        system.submit(transfer())
        system.env.run()
        return system

    def test_participants_decide_during_the_outage(self):
        system = self.run_crashed_coordinator()
        for site_id, state in decisions(system).items():
            assert state.decided == "COMMIT", site_id
            # The recovery leader's termination protocol needed one
            # watchdog timeout plus a couple of message rounds — nowhere
            # near the coordinator's return at t≈406.
            assert state.decided_at is not None
            assert state.decided_at < CRASH_AT + 60.0, site_id
        assert system.sites["S1"].store.get_or("k0", None) == 1
        assert system.sites["S2"].store.get_or("k1", None) == 1

    def test_quorum_loss_blocks_until_an_acceptor_returns(self):
        # The contrapositive: with 2 of 3 acceptors down no termination
        # quorum exists, and the decision must wait until the acceptor
        # outage ends at t=400.5 restores a majority (still before the
        # coordinator itself returns at t≈406.2).
        system = self.run_crashed_coordinator(
            extra_plans=(CrashPlan("acc.2", at=0.5, duration=OUTAGE),)
        )
        for site_id, state in decisions(system).items():
            assert state.decided == "COMMIT", site_id
            assert state.decided_at is not None
            assert state.decided_at > 0.5 + OUTAGE, site_id
