"""Integration: the marking-set deadlock of Section 6.2's remark.

"Deadlocks may arise due to contention to the local marking sets.  For
example, a transaction that read-locks ``sitemarks.k`` in order to perform
the compatibility check, may be blocked while attempting to access a
regular data item x that is locked by ``CT_ik``.  The compensating
transaction, on the other hand, may be blocked too, holding a lock on x and
attempting to access ``sitemarks.k``."

With ``lock_marks=True`` (marking sets stored as lockable database items)
the interleaving below produces exactly that deadlock; with the paper's
"acceptable compromise" (``lock_marks=False``: check, unlock immediately,
re-validate at vote) it cannot.
"""

from repro.commit import CommitScheme
from repro.harness import System, SystemConfig
from repro.txn import GlobalTxnSpec, ReadOp, SubtxnSpec, VotePolicy, WriteOp


def build_and_run(lock_marks: bool):
    system = System(SystemConfig(
        scheme=CommitScheme.O2PC, protocol="P1", n_sites=3,
        lock_marks=lock_marks, op_duration=1.0,
    ))
    # T1 writes k0 at S1 and S2; S2 votes NO, so CT1 must compensate k0 at
    # S1 once the ABORT decision arrives — and, in lock_marks mode, write
    # sitemarks at S1 as its last action.
    system.submit(GlobalTxnSpec(txn_id="T1", subtxns=[
        SubtxnSpec("S1", [WriteOp("k0", "T1")]),
        SubtxnSpec("S2", [WriteOp("k0", "T1")], vote=VotePolicy.FORCE_NO),
    ]))

    # T2's subtransaction at S1 read-locks the marking set (R1 check) right
    # away, then grinds through two unrelated reads before touching k0 —
    # by which time CT1 holds k0 and is about to request the marking set.
    def submit_t2():
        yield system.env.timeout(7.5)
        result = yield system.submit(GlobalTxnSpec(txn_id="T2", subtxns=[
            SubtxnSpec("S1", [ReadOp("k1"), ReadOp("k2"), ReadOp("k0")]),
            SubtxnSpec("S3", [ReadOp("k1")]),
        ]))
        return result

    t2 = system.env.process(submit_t2())
    system.env.run()
    return system, t2.value


def test_lock_marks_mode_deadlocks_between_check_and_compensation():
    system, _ = build_and_run(lock_marks=True)
    cycles = system.sites["S1"].locks.detector.detected
    assert cycles, "expected the marking-set deadlock at S1"
    assert any({"T2", "CT1"} <= set(c) for c in cycles)


def test_compensation_survives_the_deadlock():
    """Persistence of compensation: whatever the victim choice, CT1
    eventually commits and k0 is restored."""
    system, _ = build_and_run(lock_marks=True)
    assert system.participants["S1"].compensator.stats.completed == 1
    assert system.sites["S1"].store.get("k0") == 100
    assert system.sites["S2"].store.get("k0") == 100


def test_compromise_mode_avoids_the_deadlock():
    system, outcome = build_and_run(lock_marks=False)
    assert not system.sites["S1"].locks.detector.detected
    assert outcome is not None
    assert system.participants["S1"].compensator.stats.completed == 1


def test_both_modes_preserve_correctness():
    for lock_marks in (True, False):
        system, _ = build_and_run(lock_marks=lock_marks)
        system.check_correctness()
