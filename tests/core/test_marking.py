"""Unit tests for the Figure 2 marking state machine."""

import pytest

from repro.core import Marking, MarkingEvent, MarkingStateMachine
from repro.core.marking import TRANSITIONS
from repro.errors import ProtocolViolation


@pytest.fixture
def machine():
    return MarkingStateMachine("S1")


class TestLegalTransitions:
    def test_initially_unmarked(self, machine):
        assert machine.state("T1") is Marking.UNMARKED

    def test_vote_commit_marks_locally_committed(self, machine):
        assert machine.fire("T1", MarkingEvent.VOTE_COMMIT) is (
            Marking.LOCALLY_COMMITTED
        )
        assert machine.locally_committed_set() == {"T1"}

    def test_vote_abort_marks_undone(self, machine):
        machine.fire("T1", MarkingEvent.VOTE_ABORT)
        assert machine.state("T1") is Marking.UNDONE
        assert machine.undone_set() == {"T1"}

    def test_decision_commit_unmarks(self, machine):
        machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        machine.fire("T1", MarkingEvent.DECISION_COMMIT)
        assert machine.state("T1") is Marking.UNMARKED

    def test_decision_abort_marks_undone(self, machine):
        machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        machine.fire("T1", MarkingEvent.DECISION_ABORT)
        assert machine.state("T1") is Marking.UNDONE

    def test_udum_unmarks_undone(self, machine):
        machine.fire("T1", MarkingEvent.VOTE_ABORT)
        machine.fire("T1", MarkingEvent.UDUM)
        assert machine.state("T1") is Marking.UNMARKED

    def test_full_figure2_cycle(self, machine):
        """unmarked -> LC -> undone -> unmarked -> LC -> unmarked."""
        machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        machine.fire("T1", MarkingEvent.DECISION_ABORT)
        machine.fire("T1", MarkingEvent.UDUM)
        machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        machine.fire("T1", MarkingEvent.DECISION_COMMIT)
        assert machine.state("T1") is Marking.UNMARKED
        assert len(machine.transitions) == 5


class TestIllegalTransitions:
    @pytest.mark.parametrize("state,event", [
        (Marking.UNMARKED, MarkingEvent.DECISION_COMMIT),
        (Marking.UNMARKED, MarkingEvent.DECISION_ABORT),
        (Marking.UNMARKED, MarkingEvent.UDUM),
        (Marking.LOCALLY_COMMITTED, MarkingEvent.VOTE_COMMIT),
        (Marking.LOCALLY_COMMITTED, MarkingEvent.VOTE_ABORT),
        (Marking.LOCALLY_COMMITTED, MarkingEvent.UDUM),
        (Marking.UNDONE, MarkingEvent.VOTE_COMMIT),
        (Marking.UNDONE, MarkingEvent.VOTE_ABORT),
        (Marking.UNDONE, MarkingEvent.DECISION_COMMIT),
        (Marking.UNDONE, MarkingEvent.DECISION_ABORT),
    ])
    def test_illegal_pairs_raise(self, machine, state, event):
        # Drive the machine into `state` first.
        if state is Marking.LOCALLY_COMMITTED:
            machine.fire("T1", MarkingEvent.VOTE_COMMIT)
        elif state is Marking.UNDONE:
            machine.fire("T1", MarkingEvent.VOTE_ABORT)
        with pytest.raises(ProtocolViolation):
            machine.fire("T1", event)

    def test_transition_table_is_exactly_figure2(self):
        """Figure 2 has exactly five edges; every other (state, event)
        combination is illegal."""
        assert len(TRANSITIONS) == 5
        legal = set(TRANSITIONS)
        total = len(Marking) * len(MarkingEvent)
        assert total - len(legal) == 10


class TestIndependencePerTransaction:
    def test_markings_independent_across_transactions(self, machine):
        machine.fire("T1", MarkingEvent.VOTE_ABORT)
        machine.fire("T2", MarkingEvent.VOTE_COMMIT)
        assert machine.undone_set() == {"T1"}
        assert machine.locally_committed_set() == {"T2"}
        assert machine.state("T3") is Marking.UNMARKED
