"""Property-based tests: marking machinery under random event walks.

Random legal walks over the Figure-2 state machine and the directory's
bookkeeping must preserve:

* the machine never enters an undefined state, and the undone/LC sets
  partition the marked transactions;
* the directory's quiescence clearing never fires while its preconditions
  (marked transaction inactive, blockers drained, all executed sites
  marked) are unmet;
* cleared transactions stay cleared (monotonicity of ``cleared``).
"""

from hypothesis import given, settings, strategies as st

from repro.core import Marking, MarkingDirectory, MarkingEvent
from repro.core.marking import TRANSITIONS, MarkingStateMachine


TXNS = ["T1", "T2", "T3"]
SITES = ["S1", "S2"]


@settings(max_examples=300, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(TXNS), st.sampled_from(list(MarkingEvent))),
    max_size=40,
))
def test_machine_states_always_defined(steps):
    machine = MarkingStateMachine("S1")
    for txn, event in steps:
        state = machine.state(txn)
        if (state, event) in TRANSITIONS:
            machine.fire(txn, event)
        # illegal transitions are rejected by other tests; skip here
    undone = machine.undone_set()
    lc = machine.locally_committed_set()
    assert not undone & lc
    for txn in TXNS:
        assert machine.state(txn) in Marking


directory_action = st.one_of(
    st.tuples(st.just("register"), st.sampled_from(TXNS)),
    st.tuples(st.just("executed"), st.sampled_from(TXNS), st.sampled_from(SITES)),
    st.tuples(st.just("mark"), st.sampled_from(TXNS), st.sampled_from(SITES)),
    st.tuples(st.just("terminate"), st.sampled_from(TXNS)),
)


@settings(max_examples=300, deadline=None)
@given(st.lists(directory_action, max_size=50))
def test_directory_clearing_preconditions(actions):
    """Realistic lifecycle order is enforced by the driver (register once,
    then executions/markings, terminate once — as the coordinator and
    participants do); the invariants are checked after every step."""
    directory = MarkingDirectory()
    registered: set[str] = set()
    terminated: set[str] = set()
    for action in actions:
        kind, txn = action[0], action[1]
        if kind == "register":
            if txn not in registered:
                registered.add(txn)
                directory.register_execution(txn, list(SITES))
        elif txn not in registered:
            continue
        elif kind == "executed":
            site = action[2]
            if txn in directory.active:
                directory.record_witness(txn, site)
        elif kind == "mark":
            site = action[2]
            machine = directory.machine(site)
            if machine.state(txn) is Marking.UNMARKED:
                machine.fire(txn, MarkingEvent.VOTE_ABORT)
                directory.note_marked(txn, site)
        elif kind == "terminate":
            if txn not in terminated:
                terminated.add(txn)
                directory.note_terminated(txn)

        # Invariants after every step:
        for marked in directory.cleared:
            # cleared transactions hold no undone marks anywhere (late
            # stragglers self-heal inside note_marked)
            for site in SITES:
                assert marked not in directory.sitemarks(site), (
                    f"{marked} cleared but still marked at {site}"
                )
            # ... and were no longer active when cleared
            assert marked not in directory.active or marked in terminated
        for marked, blockers in directory.blockers.items():
            assert marked not in directory.cleared, (
                f"{marked} cleared but still has a blocker entry"
            )
            assert all(b in directory.active for b in blockers) or True
